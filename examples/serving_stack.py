"""The full Section III serving stack, composed as middleware.

An LLM proxy for data-management workloads, assembled from the paper's
challenge solutions through `repro.serving`: the semantic cache absorbs
repeats, the cascade routes cache misses through cheap models first, a
budget layer caps spending, and every layer writes its counters into one
ServiceStats snapshot. Query decomposition and the secure deployment
wrapper round out the tour.

Run with:  python examples/serving_stack.py
"""

from repro.core.cache import SemanticCache
from repro.core.cascade import ConfidenceDecisionModel
from repro.core.decompose import QueryOptimizer
from repro.core.privacy.secure import Deployment, SecureLLMClient
from repro.core.prompts.templates import qa_prompt
from repro.datasets import build_concert_db, generate_hotpot, generate_nl2sql
from repro.datasets.hotpot import paraphrase
from repro.datasets.spider import execution_match
from repro.llm import LLMClient
from repro.llm.client import default_world
from repro.serving import build_stack, last_question_key


def main() -> None:
    world = default_world()

    # --- 1. The Table I workload through cache -> cascade -> client -------
    print("== 1. Serving stack on repeated QA traffic (Table I workload) ==")
    examples = generate_hotpot(world, n=8, seed=91)
    client = LLMClient()
    stack = build_stack(
        client,
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
        cache_key_fn=last_question_key,
        chain=("babbage-002", "gpt-3.5-turbo", "gpt-4"),
        decision_models=[ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)],
        budget_usd=5.0,
    )
    print(f" pipeline: {stack.describe()}")
    # Two rounds; the second re-phrased, so only semantic matching saves us.
    stream = [ex.question for ex in examples] + [paraphrase(ex.question) for ex in examples]
    answered = sum(
        1
        for ex, question in zip(examples + examples, stream)
        if stack.complete(qa_prompt(question)).text == ex.answer
    )
    print(f" {len(stream)} queries -> {stack.stats.llm_calls} LLM calls, "
          f"{stack.stats.cache_reuse_hits} cache hits, "
          f"{stack.stats.escalations} escalations; accuracy {answered / len(stream):.2f}")
    # Per-layer lookup latency: the vectordb-backed cache probe is a single
    # matrix reduction, so the mean stays flat as the cache fills.
    print(f" cache layer time: {stack.stats.cache_lookup_ms:.3f} ms across "
          f"{stack.stats.cache_lookups} probes "
          f"(mean {stack.stats.cache_mean_lookup_ms:.4f} ms/probe, "
          f"puts {stack.stats.cache_put_ms:.3f} ms)")
    print(stack.report())

    # --- 2. NL2SQL batch through the min-cost planner ---------------------
    print("\n== 2. Min-cost decomposition on an NL2SQL batch ==")
    db = build_concert_db()
    workload = generate_nl2sql(n=12, seed=92, compound_fraction=0.7)
    questions = [e.question for e in workload]
    planner_stack = build_stack(LLMClient(model="gpt-4"))
    optimizer = QueryOptimizer(planner_stack, db.schema_text())
    sqls, stats = optimizer.translate_min_cost(questions)
    accuracy = sum(
        execution_match(db, sql, e.gold_sql) for sql, e in zip(sqls, workload)
    ) / len(workload)
    print(f" plan: {stats}; execution accuracy {accuracy:.2f}; "
          f"spend ${planner_stack.stats.cost_usd:.4f}")

    # --- 3. The same request under each security posture ------------------
    print("\n== 3. Security posture of one request ==")
    prompt = qa_prompt(examples[0].question)
    for deployment in Deployment:
        secure = SecureLLMClient(LLMClient(model="gpt-4"), deployment=deployment)
        result = secure.complete(prompt)
        print(
            f" {deployment.value:10s} latency {result.latency_ms:10.1f} ms  "
            f"wire {int(result.bytes_on_wire):>8d} B  "
            f"plaintext exposed: {result.provider_saw_plaintext}"
        )


if __name__ == "__main__":
    main()
