"""The full Section III serving stack, composed.

An LLM proxy for data-management workloads, assembled from the paper's
five challenge solutions: prompt selection feeds few-shot examples, the
semantic cache absorbs repeats, the cascade routes cache misses through
cheap models first, query decomposition shares sub-queries, and the secure
deployment wrapper accounts for the privacy posture of every call.

Run with:  python examples/serving_stack.py
"""

from repro.core.cache import SemanticCache
from repro.core.cascade import CascadeClient, ConfidenceDecisionModel
from repro.core.decompose import QueryOptimizer
from repro.core.privacy.secure import Deployment, SecureLLMClient
from repro.core.prompts.templates import qa_prompt
from repro.datasets import build_concert_db, generate_hotpot, generate_nl2sql
from repro.datasets.hotpot import paraphrase
from repro.datasets.spider import execution_match
from repro.llm import LLMClient
from repro.llm.client import default_world


def main() -> None:
    world = default_world()

    # --- 1. QA traffic through cache + cascade ---------------------------
    print("== 1. Cache + cascade on repeated QA traffic ==")
    examples = generate_hotpot(world, n=8, seed=91)
    client = LLMClient()
    cascade = CascadeClient(
        client, decision_models=[ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)]
    )
    cache = SemanticCache(reuse_threshold=0.9)
    hits = llm_calls = 0
    # Two rounds; the second re-phrased, so only semantic matching saves us.
    stream = [ex.question for ex in examples] + [paraphrase(ex.question) for ex in examples]
    for question in stream:
        lookup = cache.lookup(question)
        if lookup.tier == "reuse":
            hits += 1
            continue
        result = cascade.complete(qa_prompt(question))
        llm_calls += 1
        cache.put(question, result.text, cost=result.cost)
    print(f" {len(stream)} queries -> {llm_calls} LLM calls, {hits} cache hits")
    print(f" spend: ${client.meter.cost:.4f}")
    print(client.meter.report())

    # --- 2. NL2SQL batch through the min-cost planner ---------------------
    print("\n== 2. Min-cost decomposition on an NL2SQL batch ==")
    db = build_concert_db()
    workload = generate_nl2sql(n=12, seed=92, compound_fraction=0.7)
    questions = [e.question for e in workload]
    planner_client = LLMClient(model="gpt-4")
    optimizer = QueryOptimizer(planner_client, db.schema_text())
    sqls, stats = optimizer.translate_min_cost(questions)
    accuracy = sum(
        execution_match(db, sql, e.gold_sql) for sql, e in zip(sqls, workload)
    ) / len(workload)
    print(f" plan: {stats}; execution accuracy {accuracy:.2f}; "
          f"spend ${planner_client.meter.cost:.4f}")

    # --- 3. The same request under each security posture ------------------
    print("\n== 3. Security posture of one request ==")
    prompt = qa_prompt(examples[0].question)
    for deployment in Deployment:
        secure = SecureLLMClient(LLMClient(model="gpt-4"), deployment=deployment)
        result = secure.complete(prompt)
        print(
            f" {deployment.value:10s} latency {result.latency_ms:10.1f} ms  "
            f"wire {int(result.bytes_on_wire):>8d} B  "
            f"plaintext exposed: {result.provider_saw_plaintext}"
        )


if __name__ == "__main__":
    main()
