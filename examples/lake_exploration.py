"""Multi-modal data lake exploration + LLM-as-database (Section II-D).

Includes the paper's Section III-B2 disambiguation scenario verbatim: the
query "Could Prof. Michael Jordan play basketball" embeds close to a news
snippet about the basketball player, and only the attribute filter
(entity_type = professor) retrieves the right record.

Run with:  python examples/lake_exploration.py
"""

from repro.apps.explore import LLMDatabase, MultiModalLake
from repro.apps.explore.llmdb import film_virtual_table
from repro.datasets import generate_lake
from repro.llm import LLMClient
from repro.llm.client import default_world


def main() -> None:
    world = default_world()
    client = LLMClient(model="gpt-4")

    # --- 1. Build the lake -------------------------------------------------
    lake = MultiModalLake(client)
    lake.add_items(generate_lake(world, seed=1))
    print(f"lake holds {len(lake)} items across text / table / image modalities")

    # --- 2. The Michael Jordan ambiguity (Section III-B2) -------------------
    print("\n== Vector search alone vs hybrid search ==")
    query = "Could Prof. Michael Jordan play basketball"
    plain = lake.query(query, k=1)
    print(" vector-only top hit:   ", plain.items[0].content[:72])
    hybrid = lake.query(query, k=1, where={"entity_type": "professor"})
    print(" with attribute filter: ", hybrid.items[0].content[:72])
    print(" strategy chosen by planner:", hybrid.decision.strategy.value,
          f"(selectivity {hybrid.decision.estimated_selectivity:.2f})")

    # --- 3. Cross-modal query ----------------------------------------------
    print("\n== Cross-modal query ==")
    result = lake.query("a photograph of a city skyline", k=2)
    for item in result.items:
        print(f" [{item.modality}]", item.content[:70])

    # --- 4. LLM as a database (Section II-D2) -------------------------------
    print("\n== SQL over the LLM's knowledge ==")
    llmdb = LLMDatabase(client)
    llmdb.register(film_virtual_table(world.films[:8]))
    rows = llmdb.execute(
        "SELECT title, director, released FROM films WHERE released > 1990 "
        "ORDER BY released DESC LIMIT 3"
    ).rows
    for title, director, released in rows:
        print(f" {released}: {title} — directed by {director}")
    print(f" extraction cost: ${llmdb.extraction_cost():.4f}")


if __name__ == "__main__":
    main()
