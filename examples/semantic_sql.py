"""Semantic operators in the SQL engine: parse → plan → execute with an LLM.

SEMANTIC_FILTER, SEMANTIC_JOIN ... ON MATCHES(...), LLM_CLASSIFY and
LLM_EXTRACT run inside ordinary SQL. The planner prices each LLM call
orders of magnitude above a row scan, reorders WHERE conjuncts so cheap
relational predicates run first, pushes them below joins, and the
executor batches every surviving candidate row into one provider call —
while guaranteeing bit-identical rows to a naive per-row evaluation.

Run with:  python examples/semantic_sql.py
"""

from repro.sqldb import Database, SemanticRuntime

SCRIPT = """
CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT, descr TEXT);
INSERT INTO products VALUES
 (1, 'Ultra Laptop 100', 'name: Ultra Laptop 100; category: electronics; year: 2021'),
 (2, 'Pro Espresso Machine 101', 'name: Pro Espresso Machine 101; category: kitchen; year: 2019'),
 (3, 'Classic Headphones 102', 'name: Classic Headphones 102; category: electronics; year: 2020');
CREATE TABLE reviews (id INTEGER PRIMARY KEY, product_id INTEGER, title TEXT,
 body TEXT, stars INTEGER);
INSERT INTO reviews VALUES
 (1, 1, 'ultra laptop 100 review', 'asked for a refund because the laptop stopped working', 1),
 (2, 1, 'great value', 'battery life is great and shipping was fast', 5),
 (3, 2, 'pro espresso machine 101 review', 'refund requested, the machine arrived damaged', 2),
 (4, 2, 'daily driver', 'love this espresso machine, five stars from me', 5),
 (5, 3, 'classic headphones 102 review', 'crisp sound, very comfortable', 4);
"""


def main() -> None:
    db = Database.from_script(SCRIPT, semantic=SemanticRuntime())

    # 1. SEMANTIC_FILTER: an LLM predicate inside WHERE. The optimizer
    # runs `stars <= 2` first, so the LLM only sees the surviving rows.
    print("== 1. SEMANTIC_FILTER ==")
    sql = (
        "SELECT id, body FROM reviews "
        "WHERE SEMANTIC_FILTER(body, 'mentions a refund') AND stars <= 2 "
        "ORDER BY id"
    )
    for row in db.query(sql):
        print(" ", row)

    # 2. EXPLAIN shows the rewritten plan and its LLM cost estimate.
    print("\n== 2. EXPLAIN ==")
    print(db.explain(sql))

    # 3. SEMANTIC_JOIN ... ON MATCHES: entity matching as a join predicate.
    print("\n== 3. SEMANTIC_JOIN ==")
    join_sql = (
        "SELECT p.name, r.title FROM products AS p SEMANTIC_JOIN reviews AS r "
        "ON MATCHES(p.name, r.title) AND r.stars <= 2 ORDER BY p.name"
    )
    for row in db.query(join_sql):
        print(" ", row)

    # 4. Scalar LLM UDFs over a column.
    print("\n== 4. LLM_CLASSIFY / LLM_EXTRACT ==")
    udf_sql = (
        "SELECT name, LLM_CLASSIFY(descr, 'electronics', 'kitchen') AS kind, "
        "LLM_EXTRACT(descr, 'year') AS year FROM products ORDER BY id"
    )
    for row in db.query(udf_sql):
        print(" ", row)

    # 5. The optimized pipeline is bit-identical to a naive per-row
    # reference evaluator — but pays far fewer provider calls.
    print("\n== 5. Bit-equivalence vs the per-row reference ==")
    naive = Database.from_script(SCRIPT, semantic=SemanticRuntime.naive())
    for check_sql in (sql, join_sql, udf_sql):
        assert db.query(check_sql) == naive.query(check_sql)
    opt_stats = db.semantic.stats
    naive_stats = naive.semantic.stats
    print(f"  rows identical across {3} queries")
    print(
        f"  optimized: {opt_stats.provider_calls} provider calls, "
        f"{opt_stats.provider_items} prompts, "
        f"{opt_stats.simulated_ms:.0f} ms simulated"
    )
    print(
        f"  naive:     {naive_stats.provider_calls} provider calls, "
        f"{naive_stats.provider_items} prompts, "
        f"{naive_stats.simulated_ms:.0f} ms simulated"
    )


if __name__ == "__main__":
    main()
