"""Concurrent serving: many client threads, one micro-batching scheduler.

Eight threads fire QA traffic at a cache-fronted serving stack through
`repro.serving.ConcurrentStack`. The scheduler coalesces requests into
batches, dispatches them through the middleware stack, and resolves
futures in submission order — so the answers (and the cache/budget state
behind them) are bit-identical to a serial loop, while a simulated
service latency shows the throughput the batching buys.

Run with:  python examples/concurrent_serving.py
"""

import threading
import time

from repro.bench.perf import SimulatedServiceProvider
from repro.core.cache import SemanticCache
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.datasets.hotpot import paraphrase
from repro.llm import LLMClient
from repro.llm.client import default_world
from repro.serving import ConcurrentStack, build_stack, last_question_key

N_THREADS = 8


def build_serving_stack():
    """A cache-fronted stack over a client that charges 8 ms per service
    call (time.sleep releases the GIL, so dispatch overlap is real)."""
    provider = SimulatedServiceProvider(LLMClient(), overhead_ms=8.0, per_item_ms=0.5)
    return build_stack(
        provider,
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
        cache_key_fn=last_question_key,
    )


def main() -> None:
    world = default_world()
    examples = generate_hotpot(world, n=24, seed=77)
    # Two rounds, the second re-phrased: plenty of semantic-cache hits.
    questions = [ex.question for ex in examples]
    questions += [paraphrase(ex.question) for ex in examples]
    prompts = [qa_prompt(q) for q in questions]
    answers = [ex.answer for ex in examples] * 2

    # --- serial baseline ---------------------------------------------------
    stack = build_serving_stack()
    start = time.perf_counter()
    serial_texts = [stack.complete(p).text for p in prompts]
    serial_s = time.perf_counter() - start
    print(f"serial loop:       {len(prompts)} requests in {serial_s * 1000:7.1f} ms "
          f"({len(prompts) / serial_s:7.1f} QPS)")

    # --- the same workload from N_THREADS client threads -------------------
    stack = build_serving_stack()
    served = ConcurrentStack(stack, max_batch_size=8, workers=N_THREADS)
    print(f"pipeline:          {served.describe()}")
    results = [None] * len(prompts)
    base = served.scheduler.reserve(len(prompts))

    def client_thread(offset: int) -> None:
        # Each thread owns a strided slice; explicit submission indexes keep
        # the logical order independent of thread interleaving.
        for i in range(offset, len(prompts), N_THREADS):
            results[i] = served.scheduler.submit(prompts[i], index=base + i)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=client_thread, args=(offset,)) for offset in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    concurrent_texts = [future.result().text for future in results]
    served.close()
    concurrent_s = time.perf_counter() - start
    print(f"{N_THREADS} client threads:  {len(prompts)} requests in "
          f"{concurrent_s * 1000:7.1f} ms ({len(prompts) / concurrent_s:7.1f} QPS, "
          f"{serial_s / concurrent_s:.1f}x)")

    # workers=N overlaps dispatch for throughput, so the cache may fill in
    # a different order than serially; answers can differ on which similar
    # entry a probe hits first.
    accuracy = sum(t == a for t, a in zip(concurrent_texts, answers)) / len(answers)
    print(f"accuracy: {accuracy:.2f}")
    print(served.report())

    # --- determinism: workers=1 reproduces the serial loop bit for bit -----
    stack = build_serving_stack()
    with ConcurrentStack(stack, max_batch_size=8, workers=1) as deterministic:
        ordered_texts = [
            c.text for c in deterministic.complete_many(prompts, submitters=N_THREADS)
        ]
    print(f"workers=1 run matches the serial loop exactly: "
          f"{ordered_texts == serial_texts}")


if __name__ == "__main__":
    main()
