"""Fig 6 demo: the LLM cascade's routing decisions, query by query.

Shows which model each question is answered by, the decision model's
confidence at each stage, and the running cost against an all-gpt-4
baseline. Run with:  python examples/cascade_routing.py
"""

from repro.core.cascade import CascadeClient, ConfidenceDecisionModel
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.llm import LLMClient
from repro.llm.client import default_world


def main() -> None:
    world = default_world()
    examples = generate_hotpot(world, n=12, seed=41)

    cascade_client = LLMClient()
    cascade = CascadeClient(
        cascade_client,
        decision_models=[ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)],
    )
    baseline_client = LLMClient(model="gpt-4")

    correct_cascade = correct_baseline = 0
    print(f"{'model used':14s} {'conf':>5s} {'ok':>3s}  question")
    for example in examples:
        prompt = qa_prompt(example.question)
        result = cascade.complete(prompt)
        baseline = baseline_client.complete(prompt)
        ok = result.text == example.answer
        correct_cascade += ok
        correct_baseline += baseline.text == example.answer
        print(
            f"{result.model:14s} {result.final.confidence:5.2f} {'  y' if ok else '  n'}  "
            f"{example.question[:58]}"
        )

    n = len(examples)
    print(f"\ncascade:  {correct_cascade}/{n} correct, ${cascade_client.meter.cost:.4f}")
    print(f"gpt-4:    {correct_baseline}/{n} correct, ${baseline_client.meter.cost:.4f}")
    saving = 1 - cascade_client.meter.cost / baseline_client.meter.cost
    print(f"cascade saves {saving:.0%} of the gpt-4 bill on this workload")


if __name__ == "__main__":
    main()
