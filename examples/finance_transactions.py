"""Finance scenario: NL2Transaction with output validation (II-B1, III-E).

The paper's running example: Alice buys a laptop from Bob for $1,000 and Bob
pays $5 freight to the express company. The scenario becomes an atomic SQL
transaction, validated (atomicity + balance conservation) before it is
applied. A corrupted generation from a weak model is caught and rejected.

Run with:  python examples/finance_transactions.py
"""

from repro.apps.transform import NL2TransactionTranslator, Payment
from repro.apps.transform.transaction import make_accounts_db
from repro.core.validation import explain_by_occlusion, self_consistency
from repro.llm import LLMClient


def main() -> None:
    # --- 1. The paper's scenario, end to end ------------------------------
    print("== 1. Alice buys a laptop from Bob ==")
    db = make_accounts_db({"Alice": 5000.0, "Bob": 100.0, "Express": 0.0})
    translator = NL2TransactionTranslator(LLMClient(model="gpt-4"), db)
    result = translator.translate(
        [Payment("Alice", "Bob", 1000), Payment("Bob", "Express", 5)]
    )
    print(" scenario:", result.scenario)
    print(" generated transaction:")
    for line in result.sql.splitlines():
        print("   ", line)
    print(" validation:", "PASSED" if result.report.valid else "FAILED")
    print(" balances:", db.query("SELECT owner, balance FROM accounts ORDER BY owner"))

    # --- 2. A weak model's output gets caught by validation ---------------
    print("\n== 2. Validation catches corrupted output ==")
    rejected = 0
    for seed in range(20):
        weak_db = make_accounts_db({"Ann": 50.0, "Ben": 0.0})
        weak = NL2TransactionTranslator(LLMClient(model="babbage-002", seed=seed), weak_db)
        outcome = weak.translate([Payment("Ann", "Ben", 10), Payment("Ben", "Ann", 2)])
        if not outcome.applied:
            rejected += 1
            if rejected == 1:
                print(" first rejection — failed checks:", outcome.report.failed_checks())
    print(f" babbage-002 outputs rejected by the validator: {rejected}/20 seeds")

    # --- 3. Self-consistency as a reliability signal (III-E) --------------
    print("\n== 3. Self-consistency ==")
    report = self_consistency(
        "Question: Who directed The Silent Mirror?", model="gpt-3.5-turbo", n_samples=5
    )
    print(f" majority answer {report.answer!r} with agreement {report.agreement:.0%}")

    # --- 4. Interpretability: which prompt tokens matter? ------------------
    print("\n== 4. Occlusion saliency ==")
    client = LLMClient(model="gpt-4")
    importances = explain_by_occlusion(
        client, "Question: Who directed The Silent Mirror?", max_tokens=10
    )
    for token, importance in importances[:5]:
        print(f"   {token:12s} {importance:.2f}")


if __name__ == "__main__":
    main()
