"""Durable serving: crash mid-run, recover, and lose nothing.

A serving stack built with ``build_stack(durable_dir=...)`` journals every
acknowledged request and can snapshot its full stateful surface — the
semantic cache (entries, LRFU clock, stats), the budget and usage
ledgers, and the service counters — to disk. This script:

1. runs a reference stream with no faults,
2. re-runs it over a :class:`~repro.llm.faults.CrashPoint` client that
   kills the simulated process mid-stream,
3. "restarts" by rebuilding the stack over the same durable directory
   (recovery = snapshot restore + journal replay), resumes the stream,
   and shows the result is bit-identical to the never-crashed run,
4. warm-starts once more and answers every repeat question straight from
   the recovered cache — zero new provider calls.

Everything is deterministic, so every run prints the same numbers.

Run with:  python examples/durable_serving.py
"""

import tempfile

from repro.core.cache import SemanticCache
from repro.durability import comparable_state, snapshot_stack_state
from repro.errors import SimulatedCrashError
from repro.llm import LLMClient
from repro.llm.faults import CrashPoint
from repro.serving import build_stack

QUESTIONS = [f"Question: who directed film number {i}?" for i in range(8)]
STREAM = QUESTIONS + QUESTIONS[:4]  # repeats become cache reuse hits


def build(client, durable_dir=None):
    return build_stack(
        client,
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
        chain=("babbage-002", "gpt-3.5-turbo", "gpt-4"),
        budget_usd=50.0,
        durable_dir=durable_dir,
        checkpoint_every=None if durable_dir is None else 5,
    )


def main() -> None:
    print("== 1. Reference run (no faults, no durability) ==")
    reference = build(LLMClient())
    ref_answers = [reference.complete(q) for q in STREAM]
    ref_state = comparable_state(snapshot_stack_state(reference))
    print(f"{len(STREAM)} requests, {reference.stats.llm_calls} provider calls, "
          f"{reference.stats.cache_reuse_hits} cache reuse hits")

    with tempfile.TemporaryDirectory() as durable_dir:
        print("\n== 2. Same stream, but the process dies mid-run ==")
        crashing = build(CrashPoint(LLMClient(), crash_at=9), durable_dir=durable_dir)
        answers, crashed_at = [], None
        for index, question in enumerate(STREAM):
            try:
                answers.append(crashing.complete(question))
            except SimulatedCrashError as error:
                crashed_at = index
                print(f"request {index}: {error}")
                break
        journaled = len(crashing.durability.store.journal)
        print(f"{len(answers)} answers acknowledged before the crash "
              f"({journaled} journaled since the last checkpoint)")

        print("\n== 3. Restart: recover from the durable directory ==")
        recovered = build(LLMClient(), durable_dir=durable_dir)  # replays on build
        for question in STREAM[crashed_at:]:
            answers.append(recovered.complete(question))
        state = comparable_state(snapshot_stack_state(recovered))
        print(f"resumed from request {crashed_at}; completions bit-identical: "
              f"{answers == ref_answers}; state bit-identical: {state == ref_state}")

        print("\n== 4. Warm start: repeats answered without the provider ==")
        recovered.checkpoint()
        warm = build(LLMClient(), durable_dir=durable_dir)
        calls_before = warm.stats.llm_calls
        warm_answers = [warm.complete(q) for q in QUESTIONS]
        print(f"{len(QUESTIONS)} repeat questions, "
              f"{warm.stats.llm_calls - calls_before} new provider calls, "
              f"answers match: "
              f"{[a.text for a in warm_answers] == [a.text for a in ref_answers[:8]]}")


if __name__ == "__main__":
    main()
