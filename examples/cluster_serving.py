"""Sharded multi-tenant serving: one cluster, many tenants, N shards.

A 4-shard `ServingCluster` serves three tenants through a consistent-hash
router and a sharded semantic cache. Each tenant gets its own budget/quota
policy and its own stats namespace; two tenants opt into privacy-gated
cache sharing. The same stream is replayed on a 1-shard cluster to show
the scale-out is byte-identical to the single stack — the shards buy
throughput, never different answers.

Run with:  python examples/cluster_serving.py
"""

import time

from repro.bench.perf import SimulatedServiceProvider
from repro.core.privacy import CacheSharingGate
from repro.llm import LLMClient
from repro.serving import ServingCluster, TenantPolicy

TENANTS = ("retail", "finance", "research")


def build_cluster(n_shards: int) -> ServingCluster:
    # 6 ms per simulated service call (sleep releases the GIL, so shard
    # workers overlap for real); retail and finance agree to share cache
    # lines under an epsilon-budgeted disclosure gate.
    return ServingCluster(
        lambda shard: SimulatedServiceProvider(
            LLMClient(), overhead_ms=6.0, per_item_ms=0.5
        ),
        n_shards=n_shards,
        # Exact-match cache mode: under concurrent shard workers only
        # key-local hits keep answers independent of cross-key timing
        # (similarity tiers shine in serial runs — see serving_stack.py).
        reuse_threshold=1.0,
        augment_threshold=1.0,
        sharing=CacheSharingGate(
            [("retail", "finance")], epsilon_per_share=0.05, epsilon_budget=0.5
        ),
        policies={
            "retail": TenantPolicy(budget_usd=0.01),
            "finance": TenantPolicy(max_requests=200),
            "research": TenantPolicy(),
        },
    )


def make_stream():
    prompts = [f"Question: what does data system concept #{i} mean?" for i in range(18)]
    stream = []
    for _round in range(3):  # each tenant re-asks its own prompts: cache traffic
        for i, prompt in enumerate(prompts):
            stream.append((TENANTS[i % len(TENANTS)], prompt))
    # finance re-asks retail's questions: answered free through the privacy
    # gate (identical text either way — completions depend on the prompt,
    # not the tenant, so sharing changes the bill, never the answer).
    stream += [("finance", prompts[i]) for i in range(0, len(prompts), 3)]
    return stream


def main() -> None:
    stream = make_stream()

    # --- the sharded cluster, driven concurrently --------------------------
    cluster = build_cluster(n_shards=4)
    start = time.perf_counter()
    futures = [cluster.submit(prompt, tenant=tenant) for tenant, prompt in stream]
    answers = [future.result().text for future in futures]
    elapsed = time.perf_counter() - start
    print(cluster.describe())
    print(f"\n{len(stream)} requests across 4 shards in {elapsed:.2f}s "
          f"({len(stream) / elapsed:.0f} req/s)")
    print("requests by shard:", cluster.snapshot()["requests_by_shard"])

    # --- per-tenant accounting --------------------------------------------
    print("\nPer-tenant ledgers:")
    for tenant, cell in cluster.snapshot()["tenancy"].items():
        print(
            f"  {tenant:9s} requests={cell['requests']:3d} "
            f"llm_calls={cell['llm_calls']:3d} cache_hits={cell['cache_hits']:3d} "
            f"spent=${cell['spent_usd']:.6f}"
        )
    gate = cluster.cache.sharing
    print("\nCross-tenant sharing:", gate.describe())
    print("  ledger:", gate.ledger())
    print("\n" + cluster.report())
    cluster.close()

    # --- equivalence: the single stack answers identically -----------------
    reference = build_cluster(n_shards=1)
    expected = [reference.complete(p, tenant=t).text for t, p in stream]
    reference.close()
    assert answers == expected, "sharding must never change an answer"
    print("\n4-shard answers are byte-identical to the 1-shard reference.")


if __name__ == "__main__":
    main()
