"""Fig 1 end-to-end: the data management pipeline LLMs can be adapted to.

Data generation → data transformation → data integration → data exploration,
on one retail scenario. Run with:  python examples/pipeline_end_to_end.py
"""

from repro.apps.datagen import SQLGenerator
from repro.apps.explore import MultiModalLake
from repro.apps.integrate import EntityResolver, TableUnderstanding
from repro.apps.transform import json_to_grid
from repro.apps.transform.tables import render_json_records
from repro.datasets import LakeItem
from repro.llm import LLMClient
from repro.sqldb import Database
from repro.sqldb.types import SQLType


def main() -> None:
    client = LLMClient(model="gpt-4")

    # --- Stage 0: a retail database --------------------------------------
    db = Database()
    db.create_table(
        "product",
        [("product_id", SQLType.INTEGER), ("name", SQLType.TEXT), ("price", SQLType.REAL)],
        primary_key="product_id",
    )
    db.insert_rows(
        "product",
        [[1, "espresso machine", 280.0], [2, "milk frother", 45.0], [3, "grinder", 120.0]],
    )

    # --- Stage 1: data generation (Fig 2) --------------------------------
    print("== Stage 1: SQL generation ==")
    generator = SQLGenerator(client, db)
    generated, _total = generator.generate_validated(count=3, kinds=("simple", "aggregate"))
    for item in generated:
        print(" generated:", item.sql)

    # --- Stage 2: data transformation (Fig 4) ----------------------------
    print("\n== Stage 2: supplier feed (JSON) -> relational table ==")
    feed = render_json_records(
        [
            {"sku": "EM-280", "supplier": "Riverside Logistics", "stock": 14},
            {"sku": "MF-045", "supplier": "Riverside Logistics", "stock": 3},
            {"sku": "GR-120", "supplier": "Summit Hardware", "stock": 8},
        ]
    )
    table = json_to_grid(client, feed)
    print(table.grid.render())

    # --- Stage 3: data integration (Section II-C) ------------------------
    print("\n== Stage 3: supplier entity resolution ==")
    resolver = EntityResolver(client)
    same = resolver.resolve(
        "name: Riverside Logistics, city: Riverford",
        "name: Riverside Logistics Inc, city: Riverford",
    )
    print(" 'Riverside Logistics' == 'Riverside Logistics Inc'?", same)

    understanding = TableUnderstanding(client, db)
    for sentence in understanding.statistics_sentences("product")[:2]:
        print(" table fact:", sentence)

    # --- Stage 4: data exploration (Section II-D) ------------------------
    print("\n== Stage 4: multi-modal exploration ==")
    lake = MultiModalLake(client)
    lake.add_item(
        LakeItem(
            item_id="doc-0",
            modality="text",
            content="The espresso machine is our best selling appliance this quarter.",
            metadata={"entity_type": "report"},
        )
    )
    lake.add_table_rows(
        "product",
        ["name", "price"],
        [["espresso machine", 280.0], ["milk frother", 45.0]],
    )
    result = lake.query("best selling espresso appliance", k=2)
    for item in result.items:
        print(f" hit [{item.modality}]:", item.content[:70])


if __name__ == "__main__":
    main()
