"""Healthcare scenario (Sections II-B, II-A2, III-D).

A clinic holds semi-structured diagnostic reports (XML) and a patient table
with missing risk labels. The pipeline: transform the XML to a relational
table, annotate the missing labels with few-shot ICL, then fine-tune a
shared task head across clinics with federated learning + DP — without
pooling raw patient data.

Run with:  python examples/healthcare_transform.py
"""

import numpy as np

from repro.apps.datagen import MissingLabelAnnotator
from repro.apps.transform import xml_to_grid
from repro.core.privacy import dp_logistic_regression, membership_inference_advantage
from repro.core.privacy.federated import (
    FederatedTrainer,
    LogisticModel,
    er_pair_features,
    split_across_clients,
)
from repro.datasets import generate_er_pairs, generate_patients
from repro.llm import LLMClient


def main() -> None:
    client = LLMClient(model="gpt-4")

    # --- 1. XML diagnostic report -> relational table --------------------
    print("== 1. Diagnostic report (XML) -> table ==")
    report = """
    <reports>
      <visit><patient>P-103</patient><test>blood pressure</test><value>142</value></visit>
      <visit><patient>P-104</patient><test>blood pressure</test><value>118</value></visit>
      <visit><patient>P-103</patient><test>bmi</test><value>31.5</value></visit>
    </reports>
    """
    result = xml_to_grid(client, report)
    print(result.grid.render())

    # --- 2. Missing label annotation (Section II-A2) ---------------------
    print("\n== 2. Missing risk-label annotation ==")
    patients = generate_patients(n=60, seed=11, missing_fraction=0.2)
    annotation = MissingLabelAnnotator(client).annotate(patients)
    print(f" annotated {len(annotation.predictions)} masked rows; "
          f"accuracy vs held-back gold: {annotation.accuracy:.2f}")

    # --- 3. Federated fine-tuning with privacy (Section III-D) -----------
    print("\n== 3. Federated fine-tuning across clinics ==")
    pairs = generate_er_pairs(n=160, seed=12)
    features = np.stack([er_pair_features(p.a, p.b) for p in pairs])
    labels = np.array([1.0 if p.label else 0.0 for p in pairs])
    clinics = split_across_clients(features[:120], labels[:120], n_clients=3, seed=13)
    print(" clinic data sizes:", [c.n_examples for c in clinics])
    trainer = FederatedTrainer(clinics, dim=features.shape[1], seed=14)
    model = trainer.train(rounds=4, eval_set=(features[120:], labels[120:]))
    print(f" federated model accuracy: {model.accuracy(features[120:], labels[120:]):.2f}")

    # --- 4. Membership inference with and without DP ---------------------
    print("\n== 4. Membership-inference exposure ==")
    train_x, train_y = features[:20], labels[:20]
    for name, epsilon in (("non-private", None), ("DP eps=8", 8.0), ("DP eps=2", 2.0)):
        weights = dp_logistic_regression(
            train_x, train_y, epsilon=epsilon, epochs=120, learning_rate=1.0, seed=15
        )
        attack = membership_inference_advantage(
            weights, train_x, train_y, features[120:], labels[120:]
        )
        utility = LogisticModel(weights).accuracy(features[120:], labels[120:])
        print(f" {name:12s} utility {utility:.2f}  attack advantage {attack.advantage:+.2f}")


if __name__ == "__main__":
    main()
