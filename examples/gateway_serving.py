"""SLO-aware gateway: priority classes, deadlines, shedding, degradation.

An `AsyncGateway` fronts a resilience-wired serving stack. Three traffic
classes share one backend: interactive requests carry tight deadlines,
batch requests carry none. Under deliberate overload the gateway keeps
the interactive class inside its SLO by draining it first (strict class
priority + EDF), parks excess arrivals on bounded queues, sheds requests
that are already hopeless, and answers expired-in-queue work through the
resilience fallback chain instead of timing out.

Run with:  python examples/gateway_serving.py
"""

import asyncio
import time

from repro.bench.perf import SimulatedServiceProvider
from repro.errors import DeadlineExceededError
from repro.llm import LLMClient
from repro.serving import AsyncGateway, GatewayRequest, build_stack

SERVICE_MS = 15.0  # simulated per-call service time


def build_backend():
    """Cache + resilience stack over a client charging 15 ms per call."""
    provider = SimulatedServiceProvider(LLMClient(), overhead_ms=SERVICE_MS)
    return build_stack(provider, cache=True, resilience=True)


def make_traffic(n):
    """A mixed open-loop burst: tight-deadline interactive, medium
    standard, deadline-free batch."""
    requests = []
    for i in range(n):
        if i % 4 == 0:
            requests.append(
                GatewayRequest(
                    f"Question: interactive lookup {i}?",
                    priority="interactive",
                    deadline_ms=8 * SERVICE_MS,
                )
            )
        elif i % 4 in (1, 2):
            requests.append(
                GatewayRequest(
                    f"Question: standard report {i}?",
                    priority="standard",
                    deadline_ms=10 * SERVICE_MS,
                )
            )
        else:
            requests.append(GatewayRequest(f"Question: batch backfill {i}?"))
    return requests


async def serve(requests):
    stack = build_backend()
    async with AsyncGateway(
        stack,
        workers=4,  # sleeps release the GIL: real dispatch overlap
        max_inflight=4,  # shallow window: backlog stays where priority applies
        max_queue_per_class=16,
    ) as gateway:
        # One deliberately hopeless request: shed on arrival, never served.
        try:
            await gateway.submit("Question: already too late?", deadline_ms=0)
        except DeadlineExceededError as exc:
            print(f"shed at submit:    {exc}")

        start = time.perf_counter()
        counts = {"ok": 0, "degraded": 0, "shed": 0, "late": 0}
        async for result in gateway.complete_many(requests, as_completed=True):
            counts[result.status if result.status in counts else "shed"] += 1
            counts["late"] += int(result.late)
        elapsed = time.perf_counter() - start

        snap = gateway.stats.snapshot()["gateway"]
        print(f"served {len(requests)} requests in {elapsed * 1000:.0f} ms")
        print(
            f"outcomes:          ok={counts['ok']} degraded={counts['degraded']} "
            f"shed={counts['shed']} late={counts['late']}"
        )
        print(f"backpressure:      {snap['backpressure_waits']} parked submits")
        for cls, bucket in snap["by_class"].items():
            print(
                f"  {cls:<12} submitted={bucket['submitted']:>3} "
                f"completed={bucket['completed']:>3} shed={bucket['shed']:>3} "
                f"degraded={bucket['degraded']:>3}"
            )
    return stack


def main() -> None:
    requests = make_traffic(48)
    stack = asyncio.run(serve(requests))
    print(f"pipeline:          {stack.describe()}")
    print(
        f"fallback answers:  {stack.stats.fallback_model_answers} "
        f"(degraded through the resilience chain, not timed out)"
    )


if __name__ == "__main__":
    main()
