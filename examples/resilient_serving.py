"""Resilient serving: transient backend faults, absorbed deterministically.

A `FaultInjectingProvider` fails 15% of service calls with seeded rate
limits, timeouts and outages. The unprotected stack surfaces every one of
them; the same stack with ``resilience=True`` retries with capped
exponential backoff (accounted as *simulated* latency — nothing sleeps),
trips a per-model circuit breaker when a model keeps failing, and falls
back to a cheaper model or a semantic-cache answer before ever raising.
Because faults and backoff are seeded, every run of this script prints
the same numbers.

Run with:  python examples/resilient_serving.py
"""

from repro.core.cache import SemanticCache
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.errors import TransientLLMError
from repro.llm import FaultInjectingProvider, LLMClient
from repro.llm.client import default_world
from repro.serving import ResilienceConfig, build_stack, last_question_key

FAULT_RATE = 0.15


def flaky_client(seed: int = 3) -> FaultInjectingProvider:
    return FaultInjectingProvider(LLMClient(), default_rate=FAULT_RATE, seed=seed)


def main() -> None:
    world = default_world()
    examples = generate_hotpot(world, n=40, seed=13)
    prompts = [qa_prompt(ex.question) for ex in examples]

    # --- unprotected: every injected fault is a failed request -------------
    bare = build_stack(flaky_client())
    failures = 0
    for prompt in prompts:
        try:
            bare.complete(prompt)
        except TransientLLMError as error:
            failures += 1
            last = type(error).__name__
    print(f"unprotected stack: {failures}/{len(prompts)} requests failed "
          f"(last: {last})")

    # --- resilient: same provider, same faults, zero surfaced failures -----
    stack = build_stack(
        flaky_client(),
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
        cache_key_fn=last_question_key,
        resilience=ResilienceConfig(
            max_attempts=4,
            backoff_base_ms=50.0,
            backoff_cap_ms=1000.0,
            fallback_models=("babbage-002",),
        ),
    )
    print(f"pipeline:          {stack.describe()}")
    completions = [stack.complete(p) for p in prompts]
    recovered = [c for c in completions if "serving.resilience" in c.metadata]
    print(f"resilient stack:   {len(completions)}/{len(prompts)} answered, "
          f"{len(recovered)} after recovery")
    for completion in recovered[:3]:
        detail = completion.metadata["serving.resilience"]
        print(f"  e.g. retries={detail['retries']} "
              f"added {detail['added_ms']:.0f} ms simulated backoff")
    print(stack.report())

    # --- the breaker: hammer one dead model until it opens, watch it heal --
    dead = FaultInjectingProvider(LLMClient(), rates={"gpt-4": 1.0}, seed=5)
    guarded = build_stack(
        dead,
        resilience=ResilienceConfig(
            breaker_threshold=3, breaker_cooldown=4, fallback_models=("babbage-002",)
        ),
    )
    for i in range(6):
        completion = guarded.complete("Question: What opened the breaker?", model="gpt-4")
        print(f"  call {i}: answered by {completion.model:>12s}  "
              f"breaker={guarded.provider.breaker_state('gpt-4')}")
    snap = guarded.stats.snapshot()["resilience"]
    print(f"breaker opens={snap['breaker_opens']} "
          f"short-circuits={snap['breaker_short_circuits']} "
          f"fallback answers={snap['fallback_model_answers']}")


if __name__ == "__main__":
    main()
