"""Quickstart: a ten-minute tour of the library's public API.

Run with:  python examples/quickstart.py
"""

from repro.core.cache import CachedLLMClient
from repro.core.cascade import CascadeClient
from repro.core.prompts.templates import qa_prompt
from repro.datasets import build_concert_db
from repro.apps.transform import NL2SQLTranslator
from repro.llm import LLMClient
from repro.sqldb import Database


def main() -> None:
    # 1. The relational engine: a real (small) SQL database.
    print("== 1. SQL engine ==")
    db = Database()
    db.execute(
        """
        CREATE TABLE employee (id INTEGER PRIMARY KEY, name TEXT, salary REAL);
        INSERT INTO employee VALUES (1, 'ada', 520.0), (2, 'bob', 480.0);
        """
    )
    print("average salary:", db.query_scalar("SELECT AVG(salary) FROM employee"))

    # 2. The simulated LLM: deterministic, metered, capability-graded.
    print("\n== 2. Simulated LLM ==")
    client = LLMClient(model="gpt-4")
    completion = client.complete(qa_prompt("Who directed The Silent Mirror?"))
    print("answer:", completion.text)
    print(f"cost: ${completion.cost:.5f}  confidence: {completion.confidence:.2f}")

    # 3. NL2SQL over a populated database (Section II-B1).
    print("\n== 3. NL2SQL ==")
    concert_db = build_concert_db()
    translator = NL2SQLTranslator(LLMClient(model="gpt-4"), concert_db)
    result = translator.translate("What are the names of stadiums that had concerts in 2014?")
    print("SQL:", result.sql)
    print("rows:", concert_db.query(result.sql)[:3], "...")

    # 4. The LLM cascade (Section III-B1): cheap models first.
    print("\n== 4. LLM cascade ==")
    cascade_client = LLMClient()
    cascade = CascadeClient(cascade_client)
    outcome = cascade.complete(qa_prompt("Who directed The Silent Mirror?"))
    print(f"answered by {outcome.model} after {outcome.escalations} escalation(s), "
          f"cost ${outcome.cost:.5f}")

    # 5. The semantic cache (Section III-C): second ask is free.
    print("\n== 5. Semantic cache ==")
    base = LLMClient(model="gpt-4")
    cached = CachedLLMClient(base)
    prompt = qa_prompt("Who directed The Silent Mirror?")
    cached.complete(prompt)
    spent_after_first = base.meter.cost
    _answer, source = cached.complete(prompt)
    print(f"second answer served from: {source}; extra spend: "
          f"${base.meter.cost - spent_after_first:.5f}")


if __name__ == "__main__":
    main()
