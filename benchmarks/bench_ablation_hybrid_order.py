"""Ablation: attribute-filter vs vector-first ordering and adaptive k
(Section III-B2).

Measures candidates scanned (the cost proxy) for PRE / POST / ADAPTIVE
across filters of different selectivity, and the adaptive-k predictor's
null-result recovery.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.hybrid import AdaptiveKPredictor, HybridPlanner
from repro.vectordb import Collection, FilterStrategy


def build_collection(n=400, dim=12, seed=5):
    rng = np.random.default_rng(seed)
    c = Collection(dim=dim)
    for i in range(n):
        c.add(
            f"i{i}",
            rng.normal(size=dim),
            metadata={"narrow": i % 40, "broad": i % 2},
        )
    return c, rng


def test_strategy_cost_by_selectivity(once):
    collection, rng = build_collection()

    def run():
        rows = []
        for label, where in (("narrow (2.5%)", {"narrow": 3}), ("broad (50%)", {"broad": 1})):
            for strategy in (FilterStrategy.PRE, FilterStrategy.POST):
                report = collection.search(
                    rng.normal(size=12), k=5, where=where, strategy=strategy
                )
                rows.append((label, strategy.value, report.candidates_scanned, len(report.hits)))
        return rows

    rows = once(run)
    print()
    print(
        format_table(
            ["Filter", "Strategy", "Candidates scanned", "Hits"],
            rows,
            title="Hybrid ordering ablation",
        )
    )
    scanned = {(label, strategy): scanned for label, strategy, scanned, _h in rows}
    # Selective filter: PRE scans far fewer candidates than POST.
    assert scanned[("narrow (2.5%)", "pre")] < scanned[("narrow (2.5%)", "post")]
    # Broad filter: PRE must scan half the collection; POST scans ~k·overfetch.
    assert scanned[("broad (50%)", "post")] < scanned[("broad (50%)", "pre")]


def test_adaptive_matches_best_fixed_choice(once):
    collection, rng = build_collection(seed=6)

    def run():
        narrow = collection.search(rng.normal(size=12), k=5, where={"narrow": 7})
        broad = collection.search(rng.normal(size=12), k=5, where={"broad": 0})
        return narrow.strategy, broad.strategy

    narrow_strategy, broad_strategy = once(run)
    assert narrow_strategy is FilterStrategy.PRE
    assert broad_strategy is FilterStrategy.POST


def test_adaptive_k_recovers_from_null_results(once):
    collection, rng = build_collection(seed=7)
    planner = HybridPlanner(collection, k_predictor=AdaptiveKPredictor(safety=1.0))

    def run():
        # Filter passes 50%; repeatedly search and let feedback widen k.
        fills = []
        for _i in range(6):
            report, decision = planner.search(rng.normal(size=12), k=8, where={"broad": 1})
            fills.append(len(report.hits))
        return fills

    fills = once(run)
    print("\nhits per round (k=8):", fills)
    assert fills[-1] == 8  # once calibrated, k' fills the request
