"""Table II bench: NL2SQL query decomposition and combination.

Paper values: Origin 79% / $0.435 → Decomposition 91% / $0.289 →
+Combination 91% / $0.129. The reproduction matches the orderings and the
direction of every delta (accuracy up, cost sharply down).
"""

from repro.bench import run_table2


def test_table2_decomposition_and_combination(once):
    result = once(run_table2)
    print()
    print(result.render())
    assert result.accuracy("Decomposition") > result.accuracy("Origin")
    assert result.accuracy("Decomposition+Combination") == result.accuracy("Decomposition")
    assert (
        result.cost("Origin")
        > result.cost("Decomposition")
        > result.cost("Decomposition+Combination")
    )


def test_table2_min_cost_plan(once):
    """Extension of Table II: the paper's open 'minimum-cost covering set'
    algorithm — decompose only where sharing amortizes the extra calls."""
    from repro.core.decompose import QueryOptimizer
    from repro.datasets import build_concert_db, generate_nl2sql
    from repro.llm import LLMClient

    db = build_concert_db(seed=13)
    workload = generate_nl2sql(n=30, seed=13, compound_fraction=0.7)
    questions = [e.question for e in workload]
    pool = [(e.question, e.gold_sql) for e in generate_nl2sql(n=3, seed=1013, include_paper=False)]

    def run():
        costs = {}
        for method in ("translate_origin", "translate_decomposed", "translate_min_cost"):
            client = LLMClient(model="gpt-4")
            optimizer = QueryOptimizer(client, db.schema_text(), pool)
            result = getattr(optimizer, method)(questions)
            if method == "translate_min_cost":
                _sqls, stats = result
                costs["min_cost_stats"] = stats
            costs[method] = client.meter.cost
        return costs

    costs = once(run)
    print(
        f"\norigin ${costs['translate_origin']:.3f}  "
        f"always-decompose ${costs['translate_decomposed']:.3f}  "
        f"min-cost ${costs['translate_min_cost']:.3f}  "
        f"(plan: {costs['min_cost_stats']})"
    )
    assert costs["translate_min_cost"] <= costs["translate_origin"]
    # The plan actually mixes both strategies on this workload.
    assert costs["min_cost_stats"]["decomposed"] > 0
    assert costs["min_cost_stats"]["direct"] > 0


def test_table2_scales_with_overlap(once):
    """With fewer overlapping compounds the decomposition saving shrinks:
    sharing is the mechanism, so less sharing must mean less saving."""
    import pytest

    from repro.bench.experiments import run_table2 as run

    overlapping = run(n_queries=30, compound_fraction=0.9)
    sparse = once(run, n_queries=30, compound_fraction=0.2)
    saving_overlapping = overlapping.cost("Origin") - overlapping.cost("Decomposition")
    saving_sparse = sparse.cost("Origin") - sparse.cost("Decomposition")
    assert saving_overlapping > saving_sparse
