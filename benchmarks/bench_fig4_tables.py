"""Fig 4 bench: semi-structured → relational transformation quality."""

from repro.bench import run_fig4


def test_fig4_extraction_f1(once):
    result = once(run_fig4)
    print()
    print(result.render())
    for source in ("json", "xml"):
        assert result.f1(source, "gpt-4") >= result.f1(source, "gpt-3.5-turbo")
        assert result.f1(source, "gpt-4") >= 0.85


def test_fig4_program_mode_matches_direct_locally(once):
    """The code-synthesis path (operator program, applied locally) must
    relationalize at least as well as the local baseline on spreadsheets."""
    from repro.apps.transform import relationalize, relationalize_direct
    from repro.llm import LLMClient
    from repro.tablekit import Grid

    grid = Grid(
        [["region", "Q1", "Q2"], ["north", 10, 20], [None, None, None], ["south", 5, 7]]
    )

    def run():
        return relationalize(LLMClient(model="gpt-4"), grid)

    result = once(run)
    baseline = relationalize_direct(grid)
    assert result.score >= baseline.score - 1e-9
