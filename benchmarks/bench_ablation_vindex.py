"""Ablation: vector index choice — recall vs work (Section III-A indexes).

Compares flat / IVF / HNSW on the same corpus: recall@10 against the exact
flat baseline, plus raw search latency measured by pytest-benchmark.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.vectordb import FlatIndex, HNSWIndex, IVFIndex

N, DIM, QUERIES = 600, 24, 25


def build_indexes(seed=9):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(N, DIM))
    flat = FlatIndex(DIM)
    ivf = IVFIndex(DIM, nlist=24, nprobe=4, seed=1)
    hnsw = HNSWIndex(DIM, m=8, ef_search=40, seed=1)
    for i, v in enumerate(data):
        flat.add(f"v{i}", v)
        ivf.add(f"v{i}", v)
        hnsw.add(f"v{i}", v)
    ivf.train()
    queries = rng.normal(size=(QUERIES, DIM))
    return flat, ivf, hnsw, queries


def recall_at_10(index, flat, queries):
    total = 0.0
    for q in queries:
        truth = {h[0] for h in flat.search(q, 10)}
        got = {h[0] for h in index.search(q, 10)}
        total += len(truth & got) / 10
    return total / len(queries)


def test_recall_comparison(once):
    flat, ivf, hnsw, queries = build_indexes()

    def run():
        return {
            "flat": 1.0,
            "ivf(nprobe=4)": recall_at_10(ivf, flat, queries),
            "hnsw(ef=40)": recall_at_10(hnsw, flat, queries),
        }

    recalls = once(run)
    print()
    print(
        format_table(
            ["Index", "Recall@10"],
            [(k, v) for k, v in recalls.items()],
            title="Vector index recall ablation",
        )
    )
    assert recalls["ivf(nprobe=4)"] >= 0.5
    assert recalls["hnsw(ef=40)"] >= 0.7


def test_knob_autotuning(once):
    """Refs [72, 73]: learned knob tuning — find the cheapest setting that
    meets a recall target, in O(log) evaluations."""
    from repro.vectordb import tune_ef_search, tune_nprobe

    flat, ivf, hnsw, queries = build_indexes()

    def run():
        return {
            "ivf": tune_nprobe(ivf, flat, list(queries), target_recall=0.9),
            "hnsw": tune_ef_search(hnsw, flat, list(queries), target_recall=0.9),
        }

    results = once(run)
    rows = [
        (name, r.knob, r.value, round(r.recall, 3), r.evaluations)
        for name, r in results.items()
    ]
    print()
    print(
        format_table(
            ["Index", "Knob", "Chosen value", "Recall@10", "Settings tried"],
            rows,
            title="ANN knob auto-tuning (target recall 0.90)",
        )
    )
    for result in results.values():
        assert result.met_target
        assert result.evaluations <= 9  # binary search, not a sweep


def test_flat_search_speed(benchmark):
    flat, _ivf, _hnsw, queries = build_indexes()
    benchmark(lambda: [flat.search(q, 10) for q in queries])


def test_ivf_search_speed(benchmark):
    _flat, ivf, _hnsw, queries = build_indexes()
    benchmark(lambda: [ivf.search(q, 10) for q in queries])


def test_hnsw_search_speed(benchmark):
    _flat, _ivf, hnsw, queries = build_indexes()
    benchmark(lambda: [hnsw.search(q, 10) for q in queries])
