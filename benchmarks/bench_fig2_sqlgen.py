"""Fig 2 bench: constraint-aware SQL generation with validation."""

from repro.bench import run_fig2


def test_fig2_all_kinds_generate_valid_sql(once):
    result = once(run_fig2, count_per_kind=8)
    print()
    print(result.render())
    for kind in ("simple", "join", "subquery", "aggregate"):
        assert result.validity(kind) >= 0.5


def test_fig2_weak_model_less_valid(once):
    strong = run_fig2(count_per_kind=8, model="gpt-4")
    weak = once(run_fig2, count_per_kind=8, model="babbage-002")
    print()
    print(weak.render())
    strong_mean = sum(strong.validity(k) for k in ("simple", "join", "subquery", "aggregate")) / 4
    weak_mean = sum(weak.validity(k) for k in ("simple", "join", "subquery", "aggregate")) / 4
    assert weak_mean <= strong_mean
