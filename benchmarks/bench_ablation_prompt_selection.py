"""Ablation: historical prompt selection (Section III-A).

"The vector with the highest similarity does not necessarily indicate the
optimal prompt for improving LLM performance." — the prompt store holds a
mix of *correct* and *mislabeled* example pairs; pure similarity retrieval
cannot tell them apart (the text looks the same), while performance-aware
retrieval learns from downstream feedback to avoid the poisoned ones. The
effect is real in the simulator: the QA engine verifies in-context examples
and mislabeled ones actively raise query difficulty.
"""

from repro.bench.reporting import format_table
from repro.core.prompts.store import PromptStore
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.llm import LLMClient
from repro.llm.client import default_world


def build_store(world, seed=51):
    """A store of QA example pairs, half of them mislabeled."""
    examples = generate_hotpot(world, n=24, seed=seed)
    store = PromptStore()
    records = []
    for i, ex in enumerate(examples):
        if i % 2 == 0:
            text = PromptStore.example_text(ex.question, ex.answer)
            poisoned = False
        else:
            # Mislabeled: pair the question with another example's answer.
            wrong = examples[(i + 3) % len(examples)].answer
            text = PromptStore.example_text(ex.question, wrong)
            poisoned = wrong != ex.answer
        records.append((store.add(text, task="qa"), poisoned))
    return store, records


def feedback_phase(store, records, world, n_rounds=4, seed=52):
    """Simulate usage: each stored example is used in a prompt and its
    downstream success recorded (correct examples help, poisoned ones do
    not)."""
    probes = generate_hotpot(world, n=12, seed=seed)
    client = LLMClient(model="gpt-3.5-turbo")
    for _round in range(n_rounds):
        for record, _poisoned in records:
            examples = store.compose_examples("ignored", k=0) or []
            # Use exactly this record as the single in-context example.
            pair = record.text.split(" Answer: ")
            question, answer = pair[0][len("Question: "):], pair[1]
            probe = probes[_round % len(probes)]
            completion = client.complete(
                qa_prompt(probe.question, examples=[(question, answer)])
            )
            store.record_outcome(record.prompt_id, completion.text == probe.answer)


def evaluate(strategy, store, world, seed=53):
    """Downstream QA accuracy with 3 examples chosen by the strategy."""
    tests = generate_hotpot(world, n=20, seed=seed)
    client = LLMClient(model="gpt-3.5-turbo")
    hits = 0
    for ex in tests:
        if strategy == "similarity":
            records = store.search_similar(ex.question, k=3, task="qa")
        else:
            records = store.search_performance_aware(
                ex.question, k=3, task="qa", performance_weight=0.7
            )
        examples = []
        for record in records:
            head, _sep, answer = record.text.partition(" Answer: ")
            examples.append((head[len("Question: "):], answer))
        completion = client.complete(qa_prompt(ex.question, examples=examples))
        hits += completion.text == ex.answer
    return hits / len(tests)


def test_performance_aware_selection_beats_similarity(once):
    world = default_world()

    def run():
        store, records = build_store(world)
        feedback_phase(store, records, world)
        return {
            "similarity": evaluate("similarity", store, world),
            "performance-aware": evaluate("performance", store, world),
        }

    results = once(run)
    print()
    print(
        format_table(
            ["Selection strategy", "Downstream QA accuracy"],
            list(results.items()),
            title="Prompt selection ablation (store is half-poisoned)",
        )
    )
    assert results["performance-aware"] >= results["similarity"]


def test_poisoned_examples_hurt_downstream(once):
    """Direct mechanism check: correct examples help, mislabeled ones hurt."""
    world = default_world()
    probes = generate_hotpot(world, n=25, seed=54)
    pool = generate_hotpot(world, n=6, seed=55)
    good = [(ex.question, ex.answer) for ex in pool[:3]]
    poisoned = [(ex.question, pool[(i + 1) % 3].answer) for i, ex in enumerate(pool[:3])]

    def run():
        out = {}
        for name, examples in (("correct examples", good), ("mislabeled examples", poisoned)):
            client = LLMClient(model="gpt-3.5-turbo")
            hits = sum(
                1
                for ex in probes
                if client.complete(qa_prompt(ex.question, examples=examples)).text == ex.answer
            )
            out[name] = hits / len(probes)
        return out

    results = once(run)
    print()
    print(format_table(["Prompt contents", "Accuracy"], list(results.items())))
    assert results["correct examples"] > results["mislabeled examples"]
