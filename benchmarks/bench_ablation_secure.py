"""Ablation: secure inference deployments (Section III-D, first challenge).

Plaintext vs TEE vs cryptographic inference on the same healthcare-flavored
prompt stream: identical answers, very different latency / bandwidth /
exposure — the trade-off the paper says "calls for research".
"""

from repro.bench.reporting import format_table
from repro.core.privacy.secure import Deployment, SecureLLMClient
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.llm import LLMClient
from repro.llm.client import default_world


def run_deployment(deployment, prompts):
    secure = SecureLLMClient(LLMClient(model="gpt-4"), deployment=deployment)
    answers = [secure.complete(p).completion.text for p in prompts]
    return answers, secure.ledger


def test_secure_deployment_tradeoff(once):
    world = default_world()
    prompts = [qa_prompt(ex.question) for ex in generate_hotpot(world, n=10, seed=71)]

    def run():
        return {d: run_deployment(d, prompts) for d in Deployment}

    results = once(run)
    rows = []
    for deployment, (answers, ledger) in results.items():
        rows.append(
            (
                deployment.value,
                round(ledger.total_latency_ms, 1),
                int(ledger.total_bytes),
                ledger.plaintext_tokens_disclosed,
                round(ledger.side_channel_weighted_tokens, 1),
            )
        )
    print()
    print(
        format_table(
            ["Deployment", "Latency (ms)", "Bytes", "Plaintext tokens", "Side-channel tokens"],
            rows,
            title="Secure inference deployment ablation",
        )
    )
    answer_sets = [tuple(answers) for answers, _l in results.values()]
    assert len(set(answer_sets)) == 1  # identical answers everywhere
    ledgers = {d: ledger for d, (_a, ledger) in results.items()}
    assert (
        ledgers[Deployment.PLAINTEXT].total_latency_ms
        < ledgers[Deployment.TEE].total_latency_ms
        < ledgers[Deployment.CRYPTO].total_latency_ms
    )
    assert ledgers[Deployment.PLAINTEXT].plaintext_tokens_disclosed > 0
    assert ledgers[Deployment.TEE].plaintext_tokens_disclosed == 0
    assert ledgers[Deployment.CRYPTO].side_channel_weighted_tokens == 0
    # The crypto deployment's bandwidth blowup is orders of magnitude.
    assert ledgers[Deployment.CRYPTO].total_bytes > 100 * ledgers[Deployment.PLAINTEXT].total_bytes


def test_lrfu_spectrum_subsumes_lru_and_lfu(once):
    """The paper's ref [77]: LRFU's lambda sweeps between LFU and LRU.
    Verify the two extremes agree with the dedicated policies on a stream
    where LRU and LFU disagree."""
    from repro.core.cache import EvictionPolicy, SemanticCache

    def survivors(policy, lam=0.1):
        cache = SemanticCache(capacity=2, policy=policy, lrfu_lambda=lam)
        cache.put("alpha alpha", "1")
        cache.put("beta beta", "2")
        for _i in range(6):
            cache.lookup("alpha alpha")  # frequent, then idle
        for _i in range(2):
            cache.lookup("beta beta")  # recent
        cache.put("gamma gamma", "3")
        return frozenset(k for k in ("alpha alpha", "beta beta") if k in cache)

    def run():
        return {
            "lru": survivors(EvictionPolicy.LRU),
            "lfu": survivors(EvictionPolicy.LFU),
            "lrfu(λ→1)": survivors(EvictionPolicy.LRFU, lam=0.99),
            "lrfu(λ→0)": survivors(EvictionPolicy.LRFU, lam=0.0001),
        }

    results = once(run)
    print()
    print(format_table(["Policy", "Surviving hot entries"], [(k, ", ".join(sorted(v))) for k, v in results.items()]))
    assert results["lru"] != results["lfu"]  # the stream separates them
    assert results["lrfu(λ→1)"] == results["lru"]
    assert results["lrfu(λ→0)"] == results["lfu"]
