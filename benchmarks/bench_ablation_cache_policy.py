"""Ablation: cache similarity threshold and eviction policy (Section III-C).

The paper argues LRU/LFU "are not suitable" because reuse-hits (case 1: no
LLM call) and augment-hits (case 2: still calls the LLM) carry different
value. The policy experiment builds a stream with two families of repeated
queries — one that re-hits *verbatim* (reuse value) and one that re-hits
only *approximately* (augment value) — applies capacity pressure, and then
measures how much reuse value each policy preserved.
"""

from repro.bench.reporting import format_table
from repro.core.cache import EvictionPolicy, SemanticCache
from repro.datasets import generate_hotpot
from repro.llm.client import default_world


def _families(seed=31):
    world = default_world()
    examples = generate_hotpot(world, n=30, seed=seed)
    reuse_family = [ex.question for ex in examples[:5]]
    augment_family = [ex.question for ex in examples[5:10]]
    cold = [ex.question for ex in examples[10:22]]
    return reuse_family, augment_family, cold


def run_policy(policy):
    reuse_family, augment_family, cold = _families()
    cache = SemanticCache(
        capacity=10, policy=policy, reuse_threshold=0.95, augment_threshold=0.70
    )
    # Seed both families.
    for question in reuse_family + augment_family:
        cache.put(question, "answer", cost=0.05)
    # Usage phase: reuse family re-hits verbatim; augment family re-hits
    # only approximately (and more often, to bait frequency-based policies).
    for _round in range(2):
        for question in reuse_family:
            cache.lookup(question)
        for question in augment_family:
            cache.lookup(question + " please answer carefully")
            cache.lookup(question + " explain briefly")
    # Pressure phase: cold one-off queries force evictions.
    for question in cold:
        if cache.lookup(question).tier != "reuse":
            cache.put(question, "cold answer", cost=0.05)
    # Value phase: how much *reuse* value survived?
    preserved = sum(1 for q in reuse_family if cache.lookup(q).tier == "reuse")
    return preserved, cache.stats


def test_weighted_policy_preserves_reuse_value(once):
    def run_all():
        return {policy: run_policy(policy) for policy in EvictionPolicy}

    results = once(run_all)
    rows = [
        (policy.value, preserved, stats.evictions)
        for policy, (preserved, stats) in results.items()
    ]
    print()
    print(
        format_table(
            ["Policy", "Reuse entries preserved (of 5)", "Evictions"],
            rows,
            title="Cache eviction policy ablation",
        )
    )
    weighted = results[EvictionPolicy.WEIGHTED][0]
    assert weighted >= results[EvictionPolicy.LRU][0]
    assert weighted >= results[EvictionPolicy.LFU][0]
    assert weighted >= 3  # most reuse value survives under the right policy


def test_threshold_sweep_controls_hit_rate(once):
    from repro.datasets.hotpot import paraphrase

    world = default_world()
    examples = generate_hotpot(world, n=20, seed=32)

    def sweep():
        rows = []
        for threshold in (0.80, 0.90, 0.97, 0.999):
            cache = SemanticCache(capacity=64, reuse_threshold=threshold, augment_threshold=0.5)
            for ex in examples:
                cache.put(ex.question, "a", cost=0.05)
            hits = sum(
                1 for ex in examples if cache.lookup(paraphrase(ex.question)).tier == "reuse"
            )
            rows.append((threshold, hits))
        return rows

    rows = once(sweep)
    print()
    print(
        format_table(
            ["Reuse threshold", "Paraphrase hits (of 20)"],
            rows,
            title="Similarity threshold sweep",
        )
    )
    hits = [h for _t, h in rows]
    assert all(a >= b for a, b in zip(hits, hits[1:]))  # monotone in threshold
    assert hits[0] > hits[-1]  # semantic matching beats exact matching
