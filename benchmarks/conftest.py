"""Benchmark-suite configuration.

Each benchmark runs its experiment once per round (``pedantic`` with a
single round) because the experiments are deterministic — repeated rounds
would only re-measure identical work. The benchmark value is therefore the
wall-clock of one full experiment, and every benchmark also asserts the
experiment's headline *shape* so a regression cannot hide behind a timing
number.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
