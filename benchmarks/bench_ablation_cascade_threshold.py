"""Ablation: cascade decision-threshold sweep (Section III-B1 open question).

The paper leaves "how to decide whether a larger LLM is needed" open; this
sweep maps the accuracy/cost frontier the decision threshold controls, plus
the learned decision model against the best fixed threshold.
"""

from repro.bench.reporting import format_table
from repro.core.cascade import CascadeClient, ConfidenceDecisionModel, LearnedDecisionModel
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.llm import LLMClient
from repro.llm.client import default_world

THRESHOLDS = (0.40, 0.52, 0.64, 0.76, 0.88)


def sweep():
    world = default_world()
    examples = generate_hotpot(world, n=30, seed=21)
    rows = []
    for threshold in THRESHOLDS:
        client = LLMClient()
        cascade = CascadeClient(
            client,
            decision_models=[
                ConfidenceDecisionModel(threshold),
                ConfidenceDecisionModel(threshold - 0.02),
            ],
        )
        hits = sum(
            1 for ex in examples if cascade.complete(qa_prompt(ex.question)).text == ex.answer
        )
        rows.append((threshold, hits / len(examples), round(client.meter.cost, 4)))
    return rows


def test_threshold_tradeoff(once):
    rows = once(sweep)
    print()
    print(format_table(["Threshold", "Accuracy", "Cost ($)"], rows, title="Cascade threshold sweep"))
    costs = [cost for _t, _a, cost in rows]
    # Higher thresholds escalate more → monotone non-decreasing cost.
    assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))
    # Accuracy band: every configuration stays within a sane range.
    assert all(0.4 <= acc <= 1.0 for _t, acc, _c in rows)


def test_learned_model_competitive_with_best_threshold(once):
    world = default_world()
    train = generate_hotpot(world, n=30, seed=22)
    test = generate_hotpot(world, n=30, seed=23)

    def run():
        # Train the decision model on gpt-3.5 completions with gold labels.
        train_client = LLMClient(model="gpt-3.5-turbo")
        completions, labels = [], []
        for ex in train:
            completion = train_client.complete(qa_prompt(ex.question))
            completions.append(completion)
            labels.append(completion.text == ex.answer)
        learned = LearnedDecisionModel(threshold=0.5).fit(completions, labels)

        client = LLMClient()
        cascade = CascadeClient(
            client,
            chain=["gpt-3.5-turbo", "gpt-4"],
            decision_models=[learned],
        )
        hits = sum(1 for ex in test if cascade.complete(qa_prompt(ex.question)).text == ex.answer)
        return hits / len(test), client.meter.cost

    accuracy, cost = once(run)
    print(f"\nlearned decision model: accuracy {accuracy:.3f}, cost ${cost:.4f}")
    gpt4 = LLMClient(model="gpt-4")
    gpt4_hits = sum(1 for ex in test if gpt4.complete(qa_prompt(ex.question)).text == ex.answer)
    assert accuracy >= gpt4_hits / len(test) - 0.1
    assert cost < gpt4.meter.cost
