"""Ablation: embedding granularity for table data (Section III-B2).

Row-level embeddings answer row-targeted queries precisely; one whole-table
embedding is cheaper (1 vector) but coarse. This measures retrieval hit
rate of the correct row's content at both granularities.
"""

from repro.bench.reporting import format_table
from repro.apps.explore import MultiModalLake
from repro.llm import LLMClient
from repro.llm.client import default_world


def build_rows(world, n=24):
    header = ["film", "director", "released"]
    rows = []
    for film in world.films[:n]:
        rows.append([film, world.kb.one(film, "directed_by"), world.kb.one(film, "released_in")])
    return header, rows


def run_granularity(granularity):
    """Returns (retrieval precision, recall, vectors stored).

    Precision = fraction of retrieved content that belongs to the queried
    row (a whole-table embedding always "contains" the answer but buries it
    in 20+ unrelated rows — the imprecision the paper's granularity
    discussion is about). Recall = queried film appears in the retrieved
    content at all.
    """
    from repro.llm.tokenizer import count_tokens

    world = default_world()
    client = LLMClient(model="gpt-4")
    lake = MultiModalLake(client)
    header, rows = build_rows(world)
    lake.add_table_rows("films", header, rows, granularity=granularity)
    precisions, recalls = [], []
    for film, director, released in rows[:12]:
        result = lake.query(f"who directed the film {film}", k=1)
        content = result.items[0].content if result.items else ""
        if film not in content:
            precisions.append(0.0)
            recalls.append(0.0)
            continue
        recalls.append(1.0)
        row_tokens = count_tokens(f"film: {film}; director: {director}; released: {released}")
        precisions.append(min(1.0, row_tokens / max(count_tokens(content), 1)))
    n = len(precisions)
    return sum(precisions) / n, sum(recalls) / n, len(lake)


def test_row_granularity_more_precise(once):
    def run():
        return {g: run_granularity(g) for g in ("row", "table")}

    results = once(run)
    rows = [(g, p, r, size) for g, (p, r, size) in results.items()]
    print()
    print(
        format_table(
            ["Granularity", "Precision", "Recall", "Vectors stored"],
            rows,
            title="Embedding granularity ablation",
        )
    )
    row_precision, row_recall, row_vectors = results["row"]
    table_precision, _table_recall, table_vectors = results["table"]
    assert row_precision > 3 * table_precision  # rows retrieve just the answer
    assert row_recall >= 0.8
    assert table_vectors < row_vectors  # table granularity is cheaper to store
