"""Perf bench: vectorized similarity hot paths vs the seed linear scans.

Times ``SemanticCache`` lookup/put, ``AdmissionPredictor`` probes, and
few-shot selection at several cache sizes against the frozen linear-scan
references (:mod:`repro.bench.perf`), asserts decision-for-decision
equivalence, and writes ``BENCH_hotpaths.json`` so future PRs have a perf
trajectory to compare against.

Run standalone for the full size ladder (1k/10k/50k):

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --smoke  # CI

Under pytest the bench uses 1k/10k (the acceptance size) to stay fast.
"""

import json
import os
import sys

from repro.bench.perf import DEFAULT_REPORT_PATH, run_equivalence, run_hotpaths

# The headline acceptance: one vectorized probe replaces a 10k-entry Python
# loop at >= this factor, with zero decision divergence.
ACCEPTANCE_SIZE = 10_000
ACCEPTANCE_SPEEDUP = 10.0


def _report_path(smoke: bool = False) -> str:
    # Smoke/pytest runs time a reduced size ladder; writing them to the
    # committed artifact path would clobber the full sweep, so they get a
    # sibling .smoke.json (gitignored) instead.
    default = (
        DEFAULT_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_HOTPATHS_PATH", default)


def test_equivalence_all_policies(once):
    report = once(run_equivalence)
    assert report["diverged"] == 0
    for policy, cell in report["policies"].items():
        assert cell["diverged"] == 0, f"{policy} diverged"
        assert cell["evictions"] > 0, f"{policy} workload never evicted"
    assert report["admission"]["diverged"] == 0
    assert report["selection"]["diverged"] == 0


def test_hotpath_speedups(once):
    report = once(
        run_hotpaths, sizes=(1000, ACCEPTANCE_SIZE), write_path=_report_path(smoke=True)
    )
    print()
    print(report.render())
    assert report.diverged == 0
    assert report.speedup("cache_lookup", ACCEPTANCE_SIZE) >= ACCEPTANCE_SPEEDUP
    assert report.speedup("admission", ACCEPTANCE_SIZE) >= ACCEPTANCE_SPEEDUP
    assert report.speedup("selection_mmr", ACCEPTANCE_SIZE) >= ACCEPTANCE_SPEEDUP
    # Top-k selection is embed-bound rather than scan-bound, so the bar is
    # lower — but vectorized scoring must never lose to the Python loop.
    assert report.speedup("selection_topk", ACCEPTANCE_SIZE) >= 1.0


def main(argv) -> int:
    smoke = "--smoke" in argv
    sizes = (1000,) if smoke else (1000, 10_000, 50_000, 100_000)
    # Full runs also sweep the index layer at scale: flat vs cluster-pruned
    # exact search at 100k-1M rows, zero mismatches required.
    ann_sizes = () if smoke else (100_000, 300_000, 1_000_000)
    report = run_hotpaths(
        sizes=sizes, write_path=_report_path(smoke=smoke), ann_sizes=ann_sizes
    )
    print(report.render())
    print(f"wrote {_report_path(smoke=smoke)}")
    if report.diverged != 0:
        print("FAIL: vectorized hot paths diverged from the linear scan", file=sys.stderr)
        return 1
    if not smoke and report.speedup("cache_lookup", ACCEPTANCE_SIZE) < ACCEPTANCE_SPEEDUP:
        print(
            f"FAIL: cache_lookup speedup at {ACCEPTANCE_SIZE} below "
            f"{ACCEPTANCE_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    # Smoke mode still validates the report round-trips as JSON.
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
