"""Perf bench: sharded multi-tenant cluster scale-out (1/2/4/8 shards).

Drives :func:`repro.bench.cluster.run_cluster`: an open-loop multi-tenant
request stream against :class:`~repro.serving.cluster.ServingCluster` at
each shard count, gated on byte-equivalence with the serial single-stack
reference (``diverged = 0``) and on exact per-tenant spend accounting
(``budget_leakage = 0``), plus a serial demo of privacy-gated cross-tenant
cache sharing. Headline: the ``scaling`` map — QPS at N shards over QPS at
1 shard, which must clear the gate's 3x floor at 8 shards.

Run standalone for the committed artifact:

    PYTHONPATH=src python benchmarks/bench_perf_cluster.py
    PYTHONPATH=src python benchmarks/bench_perf_cluster.py --smoke  # CI

Smoke runs sweep only 1/2 shards and write ``BENCH_cluster.smoke.json``
(tagged ``"smoke": true``) so the committed full-size artifact is never
clobbered by a CI quick pass.
"""

import json
import os
import sys

from repro.bench.cluster import DEFAULT_CLUSTER_REPORT_PATH, run_cluster


def _report_path(smoke: bool = False) -> str:
    default = (
        DEFAULT_CLUSTER_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_CLUSTER_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_CLUSTER_PATH", default)


def test_cluster_scaleout_equivalence(once):
    # Small stream, 1-vs-2 shards: pytest asserts correctness (byte-equal
    # completions, exact per-tenant accounting), not the timing headline.
    report = once(
        run_cluster,
        n_tenants=3,
        queries_per_tenant=12,
        n_requests=72,
        shard_counts=(1, 2),
        overhead_ms=2.0,
        per_item_ms=0.25,
        smoke=True,
    )
    assert report.diverged == 0
    assert report.budget_leakage == 0
    assert report.cells["2"]["qps"] > 0
    assert report.sharing["shares_served"] > 0
    assert report.sharing["outsider_free_answers"] == 0


def main(argv) -> int:
    smoke = "--smoke" in argv
    if smoke:
        report = run_cluster(
            n_tenants=3,
            queries_per_tenant=24,
            n_requests=180,
            shard_counts=(1, 2),
            overhead_ms=4.0,
            per_item_ms=0.25,
            write_path=_report_path(smoke=True),
            smoke=True,
        )
    else:
        report = run_cluster(
            n_tenants=6,
            queries_per_tenant=120,
            n_requests=2400,
            shard_counts=(1, 2, 4, 8),
            write_path=_report_path(),
        )
    print(report.render())
    print(report.to_json())
    print(f"wrote {_report_path(smoke=smoke)}")
    if report.diverged != 0:
        print("FAIL: cluster diverged from the single-stack reference", file=sys.stderr)
        return 1
    if report.budget_leakage != 0:
        print("FAIL: per-tenant spend leaked across tenants", file=sys.stderr)
        return 1
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
