"""Chaos bench: injected transient faults vs the resilience layer.

Drives the same prompt stream through an unprotected stack and one wrapped
in :class:`~repro.serving.resilience.ResilienceMiddleware`, over a
:class:`~repro.llm.faults.FaultInjectingProvider` armed at 0%, 5% and 15%,
and writes ``BENCH_chaos.json``. Everything — fault draws, backoff,
latency percentiles — is simulated and seeded, so the report is
deterministic run to run.

Run standalone for the full sweep, or in CI smoke mode:

    PYTHONPATH=src python benchmarks/bench_perf_chaos.py
    PYTHONPATH=src python benchmarks/bench_perf_chaos.py --smoke

Acceptance: at 15% injected faults the resilient stack completes >= 99%
of requests while the unprotected baseline fails exactly the injected
count; at 0% faults the full resilient stack is bit-identical to the
stack without the failure model (diverged == 0).
"""

import json
import os
import sys

from repro.bench.perf import DEFAULT_CHAOS_REPORT_PATH, run_chaos

ACCEPTANCE_RATE = 0.15
ACCEPTANCE_AVAILABILITY = 0.99


def _report_path(smoke: bool = False) -> str:
    # Smoke runs measure a reduced sweep; keep them off the committed
    # full-size artifact path.
    default = (
        DEFAULT_CHAOS_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_CHAOS_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_CHAOS_PATH", default)


def _run(smoke: bool, write: bool = True):
    return run_chaos(
        n_requests=80 if smoke else 300,
        fault_rates=(0.0, 0.05, 0.15),
        equivalence_requests=16 if smoke else 40,
        write_path=_report_path(smoke=smoke) if write else None,
    )


def _check(report) -> str:
    """Return an error message, or '' if the report passes acceptance."""
    if report.diverged != 0:
        return (
            f"{report.diverged} zero-fault completions diverged — the "
            "resilience layer must be invisible when nothing fails"
        )
    resilient = report.availability(ACCEPTANCE_RATE, "resilient")
    if resilient < ACCEPTANCE_AVAILABILITY:
        return (
            f"resilient availability {resilient:.4f} at "
            f"{ACCEPTANCE_RATE:.0%} faults is below {ACCEPTANCE_AVAILABILITY}"
        )
    baseline = report.cells[report.cell_name(ACCEPTANCE_RATE)]["baseline"]
    if baseline["failed"] != baseline["faults_injected"]:
        return (
            f"unprotected baseline failed {baseline['failed']} requests but "
            f"{baseline['faults_injected']} faults were injected — they must match"
        )
    return ""


def test_chaos_availability_and_equivalence(once):
    report = once(_run, smoke=True, write=False)
    print()
    print(report.render())
    assert _check(report) == ""
    # The resilient side must not merely survive: it has to actually retry.
    cell = report.cells[report.cell_name(ACCEPTANCE_RATE)]["resilient"]
    assert cell["retries"] > 0
    assert cell["faults_injected"] > 0


def main(argv) -> int:
    smoke = "--smoke" in argv
    report = _run(smoke)
    print(report.render())
    print(f"wrote {_report_path(smoke=smoke)}")
    error = _check(report)
    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    # Validate the report round-trips as JSON.
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
