"""Cross-domain bench: the Table II shape must hold on the retail domain.

The decomposition/combination economics (Table II) are claimed for NL2SQL
in general, not for the stadium example specifically. This bench re-runs
the three regimes on the retail customers/orders/returns domain and checks
the same orderings hold — the reproduction generalizes past the paper's own
workload.
"""

from repro.bench.reporting import format_table
from repro.core.decompose import QueryOptimizer
from repro.datasets import build_retail_db, generate_retail_nl2sql
from repro.datasets.spider import execution_match
from repro.llm import LLMClient


def run_retail_regimes(n_queries=30, seed=5):
    db = build_retail_db(seed=seed)
    workload = generate_retail_nl2sql(n=n_queries, seed=seed, compound_fraction=0.8)
    questions = [example.question for example in workload]

    def evaluate(predictions):
        hits = sum(
            execution_match(db, p, e.gold_sql) for p, e in zip(predictions, workload)
        )
        return hits / len(workload)

    rows = []
    for label, method in (
        ("Origin", "translate_origin"),
        ("Decomposition", "translate_decomposed"),
        ("Decomposition+Combination", "translate_decomposed_combined"),
    ):
        client = LLMClient(model="gpt-4")
        optimizer = QueryOptimizer(client, db.schema_text())
        predictions = getattr(optimizer, method)(questions)
        rows.append((label, evaluate(predictions), round(client.meter.cost, 4)))
    return rows


def test_table2_shape_holds_on_retail_domain(once):
    rows = once(run_retail_regimes)
    print()
    print(
        format_table(
            ["Regime", "Accuracy", "API Cost ($)"],
            rows,
            title="Table II shape on the retail domain",
        )
    )
    accuracy = {name: acc for name, acc, _cost in rows}
    cost = {name: c for name, _acc, c in rows}
    assert accuracy["Decomposition"] >= accuracy["Origin"]
    assert cost["Origin"] > cost["Decomposition"] > cost["Decomposition+Combination"]
