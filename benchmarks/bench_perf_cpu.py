"""Perf bench: process-pool vs thread-pool dispatch on a CPU-heavy engine.

Times :class:`~repro.serving.scheduler.BatchingScheduler` in both dispatch
modes against a provider that burns deterministic CPU per request (standing
in for local inference — work that holds the GIL), asserts every completion
is byte-identical to the serial loop, and writes ``BENCH_cpu.json``.

Two headline numbers:

* ``process_vs_thread`` — throughput ratio. On multi-core hardware process
  dispatch wins outright; on a single core the ceiling is parity (the GIL
  convoy taxes thread-mode batch formation about as much as IPC taxes the
  pool).
* ``stall_reduction`` — p95 foreground stall of a latency-sensitive thread
  in the scheduler's process, thread-mode over process-mode. This is the
  metric that holds on any core count: in-process burns convoy the GIL for
  tens of milliseconds; exiled burns leave the interpreter responsive.

Run standalone for the committed artifact:

    PYTHONPATH=src python benchmarks/bench_perf_cpu.py
    PYTHONPATH=src python benchmarks/bench_perf_cpu.py --smoke  # CI

Smoke runs write ``BENCH_cpu.smoke.json`` (tagged ``"smoke": true``) so the
committed full-size artifact is never clobbered by a CI quick pass.
"""

import json
import os
import sys

from repro.bench.cpu import DEFAULT_CPU_REPORT_PATH, run_cpu


def _report_path(smoke: bool = False) -> str:
    default = (
        DEFAULT_CPU_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_CPU_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_CPU_PATH", default)


def test_process_dispatch_equivalence(once):
    # Small burn + one trial: pytest asserts correctness (bit-identical
    # completions across serial/thread/process), not the timing headline.
    report = once(
        run_cpu, n_requests=16, burn_iters=20_000, trials=1, workers=2, smoke=True
    )
    assert report.diverged == 0
    assert report.modes["thread"]["qps"] > 0
    assert report.modes["process"]["qps"] > 0


def main(argv) -> int:
    smoke = "--smoke" in argv
    if smoke:
        report = run_cpu(
            n_requests=16,
            burn_iters=20_000,
            trials=1,
            workers=2,
            write_path=_report_path(smoke=True),
            smoke=True,
        )
    else:
        report = run_cpu(
            n_requests=48,
            burn_iters=150_000,
            trials=5,
            workers=4,
            write_path=_report_path(),
        )
    print(report.to_json())
    print(f"wrote {_report_path(smoke=smoke)}")
    if report.diverged != 0:
        print(
            "FAIL: scheduler dispatch diverged from the serial loop",
            file=sys.stderr,
        )
        return 1
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
