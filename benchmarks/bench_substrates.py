"""Micro-benchmarks of the substrates: SQL engine and prompt embedding."""

from repro.datasets import build_concert_db
from repro.datasets.workloads import build_analytics_db
from repro.llm import count_tokens, embed_text


def test_sql_join_group_by(benchmark):
    db = build_analytics_db(seed=0)
    sql = (
        "SELECT c.region, COUNT(*), AVG(o.amount) FROM customer c "
        "JOIN orders o ON c.customer_id = o.customer_id "
        "WHERE o.amount > 100 GROUP BY c.region ORDER BY c.region"
    )
    rows = benchmark(lambda: db.query(sql))
    assert len(rows) == 4


def test_sql_correlated_subquery(benchmark):
    db = build_concert_db(seed=0)
    sql = (
        "SELECT name FROM stadium s WHERE EXISTS "
        "(SELECT 1 FROM concert c WHERE c.stadium_id = s.stadium_id AND c.year = 2014)"
    )
    rows = benchmark(lambda: db.query(sql))
    assert rows


def test_sql_insert_throughput(benchmark):
    from repro.sqldb import Database
    from repro.sqldb.types import SQLType

    def insert_block():
        db = Database()
        db.create_table("t", [("id", SQLType.INTEGER), ("v", SQLType.REAL)], primary_key="id")
        db.insert_rows("t", [[i, float(i)] for i in range(2000)])
        return db.query_scalar("SELECT COUNT(*) FROM t")

    assert benchmark(insert_block) == 2000


def test_sql_hash_join_large(benchmark):
    """Equi-joins take the hash-join path: linear, not quadratic."""
    from repro.sqldb import Database
    from repro.sqldb.types import SQLType

    db = Database()
    db.create_table("l", [("id", SQLType.INTEGER), ("v", SQLType.INTEGER)], primary_key="id")
    db.create_table("r", [("id", SQLType.INTEGER), ("l_id", SQLType.INTEGER)], primary_key="id")
    db.insert_rows("l", [[i, i * 3] for i in range(3000)])
    db.insert_rows("r", [[i, i % 3000] for i in range(6000)])
    count = benchmark(
        lambda: db.query_scalar("SELECT COUNT(*) FROM l JOIN r ON l.id = r.l_id")
    )
    assert count == 6000


def test_sql_nested_loop_join_small(benchmark):
    """Non-equi joins fall back to the nested loop (kept small on purpose)."""
    from repro.sqldb import Database
    from repro.sqldb.types import SQLType

    db = Database()
    db.create_table("l", [("id", SQLType.INTEGER)], primary_key="id")
    db.create_table("r", [("id", SQLType.INTEGER)], primary_key="id")
    db.insert_rows("l", [[i] for i in range(150)])
    db.insert_rows("r", [[i] for i in range(150)])
    count = benchmark(lambda: db.query_scalar("SELECT COUNT(*) FROM l JOIN r ON l.id < r.id"))
    assert count == 150 * 149 // 2


def test_embedding_throughput(benchmark):
    texts = [f"question number {i} about stadium concerts in {2000 + i}" for i in range(50)]
    benchmark(lambda: [embed_text(t) for t in texts])


def test_token_counting_throughput(benchmark):
    text = "SELECT name FROM stadium WHERE capacity > 50000 ORDER BY name " * 40
    benchmark(lambda: count_tokens(text))
