"""Perf bench: concurrent serving throughput vs the serial loop.

Drives one skewed prompt stream through a cache-fronted serving stack —
serially, then through the micro-batching scheduler at several
worker/batch configurations over a :class:`SimulatedServiceProvider` that
charges realistic per-call wall-clock — and writes ``BENCH_serving.json``.
The same run re-executes Table I/III with ``parallel=True`` and fails on
any byte of divergence from the serial render: throughput must not cost
determinism.

Run standalone for the full sweep, or in CI smoke mode:

    PYTHONPATH=src python benchmarks/bench_perf_serving.py
    PYTHONPATH=src python benchmarks/bench_perf_serving.py --smoke

Acceptance (non-smoke): >= 3x QPS at 8 workers over the serial baseline,
zero parallel-table divergence.
"""

import json
import os
import sys

from repro.bench.perf import DEFAULT_SERVING_REPORT_PATH, run_serving

ACCEPTANCE_CONFIG = "w8_b8_combined"
ACCEPTANCE_SPEEDUP = 3.0


def _report_path(smoke: bool = False) -> str:
    # Smoke runs measure a reduced sweep; keep them off the committed
    # full-size artifact path.
    default = (
        DEFAULT_SERVING_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_SERVING_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_SERVING_PATH", default)


def _run(smoke: bool, write: bool = True):
    return run_serving(
        n_requests=64 if smoke else 256,
        worker_counts=(1, 8) if smoke else (1, 2, 8),
        batch_sizes=(1, 8),
        write_path=_report_path(smoke=smoke) if write else None,
    )


def test_serving_throughput_and_determinism(once):
    report = once(_run, smoke=True, write=False)
    print()
    print(report.render())
    assert report.diverged == 0
    assert report.speedup(ACCEPTANCE_CONFIG) >= ACCEPTANCE_SPEEDUP
    # Batching at 8 workers must also beat unbatched 1-worker dispatch.
    assert report.configs[ACCEPTANCE_CONFIG]["qps"] > report.configs["w1_b1"]["qps"]


def main(argv) -> int:
    smoke = "--smoke" in argv
    report = _run(smoke)
    print(report.render())
    print(f"wrote {_report_path(smoke=smoke)}")
    if report.diverged != 0:
        print(
            "FAIL: parallel Table I/III runs diverged from the serial render",
            file=sys.stderr,
        )
        return 1
    if report.speedup(ACCEPTANCE_CONFIG) < ACCEPTANCE_SPEEDUP:
        print(
            f"FAIL: {ACCEPTANCE_CONFIG} speedup "
            f"{report.speedup(ACCEPTANCE_CONFIG):.2f}x below {ACCEPTANCE_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    # Validate the report round-trips as JSON.
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
