"""Perf bench: async gateway latency under open-loop Poisson load.

Drives :func:`repro.bench.gateway.run_gateway`: seeded Poisson arrivals at
0.5x/1x/2x the backend's analytic saturation rate, gateway (admission
control: priority classes + EDF + bounded queues + shedding) vs baseline
(same machinery, pure FIFO, nothing shed), both scored on per-class
goodput — full answers delivered within the class SLO. Headline: at 2x
saturation the interactive class must hold >= 90% goodput behind the
gateway while the FIFO baseline collapses. Every run also re-proves the
determinism contract (workers=1, no deadlines, bit-identical to the
serial loop — ``diverged`` must be 0) and the deterministic
expired-in-queue degradation demo.

Run standalone for the committed artifact:

    PYTHONPATH=src python benchmarks/bench_perf_gateway.py
    PYTHONPATH=src python benchmarks/bench_perf_gateway.py --smoke  # CI

Smoke runs sweep only the 2x overload point with a shorter window and
write ``BENCH_gateway.smoke.json`` (tagged ``"smoke": true``) so the
committed full-size artifact is never clobbered by a CI quick pass.
"""

import json
import os
import sys

from repro.bench.gateway import (
    DEFAULT_GATEWAY_REPORT_PATH,
    HIGH_PRIORITY_CLASS,
    run_gateway,
)


def _report_path(smoke: bool = False) -> str:
    default = (
        DEFAULT_GATEWAY_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_GATEWAY_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_GATEWAY_PATH", default)


def test_gateway_overload_goodput(once):
    # One small 2x-overload cell: pytest asserts the correctness story
    # (zero divergence, baseline worse than gateway on the high-priority
    # class), not the timing headline.
    report = once(
        run_gateway,
        service_ms=10.0,
        workers=2,
        load_fractions=(2.0,),
        duration_s=0.5,
        smoke=True,
    )
    assert report.diverged == 0
    cell = report.cells["2"]
    gateway_goodput = cell["gateway"]["classes"][HIGH_PRIORITY_CLASS]["goodput"]
    baseline_goodput = cell["baseline"]["classes"][HIGH_PRIORITY_CLASS]["goodput"]
    assert gateway_goodput > baseline_goodput
    assert report.degradation["degraded"] > 0
    assert report.degradation["shed_at_submit"] == 1


def main(argv) -> int:
    smoke = "--smoke" in argv
    if smoke:
        report = run_gateway(
            service_ms=20.0,
            workers=2,
            load_fractions=(2.0,),
            duration_s=1.0,
            equivalence_n=24,
            write_path=_report_path(smoke=True),
            smoke=True,
        )
    else:
        report = run_gateway(write_path=_report_path())
    print(report.render())
    print(report.to_json())
    print(f"wrote {_report_path(smoke=smoke)}")
    if report.diverged != 0:
        print(
            "FAIL: gateway (workers=1, no deadlines) diverged from the serial loop",
            file=sys.stderr,
        )
        return 1
    top_load = max(report.cells, key=float)
    cell = report.cells[top_load]
    gateway_goodput = cell["gateway"]["classes"][HIGH_PRIORITY_CLASS]["goodput"]
    baseline_goodput = cell["baseline"]["classes"][HIGH_PRIORITY_CLASS]["goodput"]
    if gateway_goodput <= baseline_goodput:
        print(
            f"FAIL: admission control did not beat the FIFO baseline at "
            f"{top_load}x load ({gateway_goodput} <= {baseline_goodput})",
            file=sys.stderr,
        )
        return 1
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
