"""Ablation: DP noise vs utility vs membership-inference advantage
(Section III-D: "inject minimal noise ... while maximizing model utility").
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.privacy import dp_logistic_regression, membership_inference_advantage
from repro.core.privacy.federated import (
    FederatedTrainer,
    LogisticModel,
    er_pair_features,
    split_across_clients,
)
from repro.datasets import generate_er_pairs

EPSILONS = (None, 8.0, 2.0, 0.5)


def build_features(n=200, seed=11):
    pairs = generate_er_pairs(n=n, seed=seed)
    x = np.stack([er_pair_features(p.a, p.b) for p in pairs])
    y = np.array([1.0 if p.label else 0.0 for p in pairs])
    return x, y


def test_privacy_utility_attack_tradeoff(once):
    x, y = build_features()
    # Overfit-prone regime so the attack has signal to lose.
    train_x, train_y = x[:24], y[:24]
    test_x, test_y = x[120:], y[120:]

    def run():
        rows = []
        for epsilon in EPSILONS:
            weights = dp_logistic_regression(
                train_x, train_y, epsilon=epsilon, epochs=200, learning_rate=1.0, seed=2
            )
            utility = LogisticModel(weights).accuracy(test_x, test_y)
            attack = membership_inference_advantage(weights, train_x, train_y, test_x, test_y)
            rows.append(("none" if epsilon is None else epsilon, round(utility, 3), round(attack.advantage, 3)))
        return rows

    rows = once(run)
    print()
    print(
        format_table(
            ["Epsilon", "Test accuracy", "MI advantage"],
            rows,
            title="DP utility / attack trade-off",
        )
    )
    utilities = [u for _e, u, _a in rows]
    advantages = [a for _e, _u, a in rows]
    # Non-private model: best utility, largest attack surface.
    assert utilities[0] == max(utilities)
    assert advantages[0] >= max(advantages[2:]) - 0.15
    # Strong privacy (eps=0.5) costs utility relative to non-private.
    assert utilities[-1] <= utilities[0]


def test_federated_with_dp_clients(once):
    x, y = build_features(seed=12)

    def run():
        rows = []
        for epsilon in (None, 0.2):
            # Average over seeds: tiny local models make single runs noisy.
            accuracies = []
            for seed in (3, 4, 5):
                clients = split_across_clients(x[:140], y[:140], n_clients=4, seed=seed)
                for client in clients:
                    client.epsilon = epsilon
                trainer = FederatedTrainer(clients, dim=x.shape[1], seed=seed + 10)
                model = trainer.train(rounds=4, eval_set=(x[140:], y[140:]))
                accuracies.append(model.accuracy(x[140:], y[140:]))
            rows.append(
                ("none" if epsilon is None else epsilon, sum(accuracies) / len(accuracies))
            )
        return rows

    rows = once(run)
    print()
    print(format_table(["Client epsilon", "FedAvg accuracy (3-seed mean)"], rows, title="Federated + DP"))
    accuracies = dict(rows)
    assert accuracies["none"] >= 0.75  # federation learns the task
    assert accuracies["none"] > accuracies[0.2]  # strong DP noise costs utility
