"""Table III bench: semantic LLM cache.

Paper values: w/o Cache 77.5% / $1.123; Cache(O) 77.5% / $0.842;
Cache(A) 85% / $0.887. Shape: caching cuts cost without hurting accuracy;
caching sub-queries additionally *raises* accuracy (decomposed sub-queries
are easier) and hits more often (paraphrases share canonical sub-queries).
"""

from repro.bench import run_table3


def test_table3_cache_regimes(once):
    result = once(run_table3)
    print()
    print(result.render())
    assert result.cost("Cache(O)") < result.cost("w/o Cache")
    assert result.cost("Cache(A)") < result.cost("w/o Cache")
    assert result.accuracy("Cache(A)") > result.accuracy("Cache(O)")
    assert (
        result.diagnostics["Cache(A)"]["reuse_hits"]
        > result.diagnostics["Cache(O)"]["reuse_hits"]
    )


def test_table3_strict_threshold_hits_less(once):
    """A near-exact reuse threshold defeats semantic matching of
    paraphrases — the cost saving shrinks (the paper's point that exact
    match 'is not effective' for LLM caches)."""
    from repro.bench.experiments import run_table3 as run

    semantic = run(reuse_threshold=0.90)
    exact = once(run, reuse_threshold=0.999)
    semantic_hits = semantic.diagnostics["Cache(O)"]["reuse_hits"]
    exact_hits = exact.diagnostics["Cache(O)"]["reuse_hits"]
    assert exact_hits <= semantic_hits
    assert exact.cost("Cache(O)") >= semantic.cost("Cache(O)")
