"""Table I bench: LLM cascade accuracy/cost on the HotpotQA-like workload.

Regenerates the paper's Table I rows (babbage-002 / gpt-3.5-turbo / gpt-4 /
LLM cascade) and prints them. Paper values: babbage-002 27.5%, gpt-4 92.5%,
cascade ≈ gpt-4 accuracy at significantly lower cost.
"""

from repro.bench import run_table1


def test_table1_cascade(once):
    result = once(run_table1)
    print()
    print(result.render())
    assert (
        result.accuracy("babbage-002")
        < result.accuracy("gpt-3.5-turbo")
        < result.accuracy("gpt-4")
    )
    assert result.accuracy("LLM cascade") >= result.accuracy("gpt-4") - 0.05
    assert result.cost("LLM cascade") < result.cost("gpt-4")


def test_table1_without_context_prompts(once):
    """Same experiment with bare prompts — accuracy shape must persist."""
    result = once(run_table1, with_context=False)
    print()
    print(result.render())
    assert result.accuracy("babbage-002") < result.accuracy("gpt-4")
