"""Perf-regression gate over the BENCH_* artifacts.

Reads one or more bench report files (smoke or full sweep — they share
schemas) and fails the build when a hard perf or correctness floor is
violated:

* ``repro.bench.hotpaths/*``: ``cache_put`` speedup must be >= 1.0
  at every measured size — maintaining the vector index may never make an
  insert slower than the seed's plain dict put — and every equivalence
  cell and ANN sweep must report zero divergence/mismatches.
* ``repro.bench.cpu/*``: process dispatch must not diverge from the
  serial loop.
* ``repro.bench.cluster/*``: every scale cell must report zero
  ``budget_leakage`` (per-tenant spend exactly matches the single-stack
  reference — no cross-tenant billing), and QPS must scale: >= 3.0x at
  8 shards in the full sweep, >= 1.2x at 2 shards in the smoke sweep.
* ``repro.bench.gateway/*``: zero divergence from the serial loop, and at
  the highest-load cell the high-priority class must hold its goodput
  floor behind the gateway (>= 0.90 full, >= 0.75 smoke) while the FIFO
  baseline does strictly worse (and, in the full sweep, falls below the
  floor — the cell must be at >= 2x saturation for the claim to mean
  anything).
* every other report: its ``diverged`` count (wherever it lives in the
  payload) must be zero.

A missing, unreadable, or pre-gate (no ``schema`` field) artifact fails
with a one-line message naming the file and the regeneration command —
never a traceback.

Usage:

    PYTHONPATH=src python benchmarks/check_perf_gate.py \
        BENCH_hotpaths.smoke.json BENCH_serving.smoke.json BENCH_cpu.smoke.json
"""

import json
import sys
from typing import Iterator, List, Tuple

PUT_FLOOR = 1.0
CLUSTER_SCALING_FLOOR = 3.0  # QPS at 8 shards over 1 shard, full sweep
CLUSTER_SMOKE_FLOOR = 1.2  # QPS at 2 shards over 1 shard, smoke sweep
GATEWAY_GOODPUT_FLOOR = 0.90  # high-priority in-deadline goodput, full sweep
GATEWAY_SMOKE_GOODPUT_FLOOR = 0.75  # shorter smoke window, noisier tail

_REGEN_HINT = "regenerate with the matching benchmarks/bench_perf_*.py run"


def _walk_diverged(node: object, path: str = "") -> Iterator[Tuple[str, int]]:
    """Yield every (path, value) for keys named diverged/mismatches."""
    if isinstance(node, dict):
        for key, value in node.items():
            where = f"{path}.{key}" if path else key
            if key in ("diverged", "mismatches") and isinstance(value, (int, float)):
                yield where, int(value)
            else:
                yield from _walk_diverged(value, where)


def _check_gateway(path: str, report: dict) -> List[str]:
    """Gate the gateway report: goodput floors at the highest-load cell."""
    problems: List[str] = []
    cells = report.get("cells")
    if not isinstance(cells, dict) or not cells:
        return [f"{path}: no load cells to gate on (older gateway schema? {_REGEN_HINT})"]
    try:
        top = max(cells, key=float)
    except (TypeError, ValueError):
        return [f"{path}: unparseable load-cell keys (older gateway schema? {_REGEN_HINT})"]
    smoke = bool(report.get("smoke", False))
    floor = GATEWAY_SMOKE_GOODPUT_FLOOR if smoke else GATEWAY_GOODPUT_FLOOR
    if float(top) < 2.0:
        problems.append(
            f"{path}: highest load cell is {top}x saturation — the goodput "
            f"floor is only meaningful at >= 2x overload"
        )
    high = str(report.get("high_priority_class", "interactive"))
    cell = cells.get(top, {})
    gateway = cell.get("gateway", {}).get("classes", {}).get(high, {})
    baseline = cell.get("baseline", {}).get("classes", {}).get(high, {})
    if "goodput" not in gateway or "goodput" not in baseline:
        problems.append(
            f"{path}: load cell {top}x carries no per-class goodput "
            f"(older gateway schema? {_REGEN_HINT})"
        )
        return problems
    gateway_goodput = float(gateway["goodput"])
    baseline_goodput = float(baseline["goodput"])
    if gateway_goodput < floor:
        problems.append(
            f"{path}: {high} goodput {gateway_goodput:.3f} at {top}x load "
            f"below the {floor:.2f} floor"
        )
    if baseline_goodput >= gateway_goodput:
        problems.append(
            f"{path}: FIFO baseline goodput {baseline_goodput:.3f} is not "
            f"worse than the gateway's {gateway_goodput:.3f} at {top}x load "
            f"— admission control is buying nothing"
        )
    if not smoke and baseline_goodput >= floor:
        problems.append(
            f"{path}: FIFO baseline held {baseline_goodput:.3f} goodput at "
            f"{top}x load — the overload cell is not actually overloaded"
        )
    return problems


def check_report(path: str) -> List[str]:
    """Return a list of gate violations for one report file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except FileNotFoundError:
        return [f"{path}: missing bench artifact — {_REGEN_HINT}"]
    except OSError as exc:
        return [f"{path}: unreadable bench artifact ({exc}) — {_REGEN_HINT}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc}) — {_REGEN_HINT}"]
    if not isinstance(report, dict):
        return [f"{path}: report is not a JSON object — {_REGEN_HINT}"]
    if "schema" not in report:
        return [
            f"{path}: no 'schema' field — artifact predates the perf gate "
            f"(older schema); {_REGEN_HINT}"
        ]
    problems = []
    schema = str(report.get("schema", ""))
    for where, count in _walk_diverged(report):
        if count > 0:
            problems.append(f"{path}: {where} = {count} (must be 0)")
    if schema.startswith("repro.bench.cluster"):
        cells = report.get("cells", {})
        if not cells:
            problems.append(f"{path}: no scale cells to gate on")
        for n_shards, cell in sorted(cells.items(), key=lambda kv: int(kv[0])):
            leakage = int(cell.get("budget_leakage", -1))
            if leakage != 0:
                problems.append(
                    f"{path}: budget_leakage = {leakage} at {n_shards} shards "
                    f"(must be 0)"
                )
        scaling = report.get("scaling", {})
        if "8" in cells:
            speedup = float(scaling.get("8", 0.0))
            if speedup < CLUSTER_SCALING_FLOOR:
                problems.append(
                    f"{path}: cluster scaling {speedup:.3f}x at 8 shards below "
                    f"the {CLUSTER_SCALING_FLOOR:.1f}x floor"
                )
        elif "2" in cells:
            speedup = float(scaling.get("2", 0.0))
            if speedup < CLUSTER_SMOKE_FLOOR:
                problems.append(
                    f"{path}: cluster scaling {speedup:.3f}x at 2 shards below "
                    f"the {CLUSTER_SMOKE_FLOOR:.1f}x smoke floor"
                )
        else:
            problems.append(f"{path}: no 8-shard or 2-shard cell to gate scaling on")
    if schema.startswith("repro.bench.gateway"):
        problems.extend(_check_gateway(path, report))
    if schema.startswith("repro.bench.hotpaths"):
        puts = report.get("ops", {}).get("cache_put", {})
        if not puts:
            problems.append(f"{path}: no cache_put cells to gate on")
        for size, cell in sorted(puts.items(), key=lambda kv: int(kv[0])):
            speedup = float(cell.get("speedup", 0.0))
            if speedup < PUT_FLOOR:
                problems.append(
                    f"{path}: cache_put speedup {speedup:.3f} at size {size} "
                    f"below the {PUT_FLOOR:.1f}x floor"
                )
    return problems


def main(argv: List[str]) -> int:
    paths = [arg for arg in argv if not arg.startswith("-")]
    if not paths:
        print("usage: check_perf_gate.py BENCH_report.json [...]", file=sys.stderr)
        return 2
    failures = []
    for path in paths:
        try:
            problems = check_report(path)
        except Exception as exc:  # never a traceback: name the file and move on
            problems = [
                f"{path}: malformed report ({type(exc).__name__}: {exc}) — "
                f"{_REGEN_HINT}"
            ]
        if problems:
            failures.extend(problems)
        else:
            print(f"ok: {path}")
    for problem in failures:
        print(f"GATE: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
