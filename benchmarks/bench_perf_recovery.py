"""Recovery bench: kill the durable serving stack at every crash index.

Runs the :func:`~repro.bench.recovery.run_recovery` sweep — an uncrashed
reference run, then a :class:`~repro.llm.faults.CrashPoint` kill at every
provider-level request index with snapshot+journal recovery and resumed
execution, plus recovery-time-vs-journal-length scaling and a warm-start
check — and writes ``BENCH_recovery.json``.

Run standalone for the full sweep, or in CI smoke mode:

    PYTHONPATH=src python benchmarks/bench_perf_recovery.py
    PYTHONPATH=src python benchmarks/bench_perf_recovery.py --smoke

Acceptance: every crashed-and-recovered run is bit-identical to the
reference (``diverged == 0`` across completions *and* state snapshots),
and a warm-started stack answers all repeat queries from its restored
cache with zero new provider calls.
"""

import json
import os
import sys

from repro.bench.perf import DEFAULT_RECOVERY_REPORT_PATH, run_recovery


def _report_path(smoke: bool = False) -> str:
    # Smoke runs measure a reduced sweep; keep them off the committed
    # full-size artifact path.
    default = (
        DEFAULT_RECOVERY_REPORT_PATH.replace(".json", ".smoke.json")
        if smoke
        else DEFAULT_RECOVERY_REPORT_PATH
    )
    return os.environ.get("REPRO_BENCH_RECOVERY_PATH", default)


def _run(smoke: bool, write: bool = True):
    return run_recovery(
        n_distinct=6 if smoke else 12,
        n_repeats=3 if smoke else 6,
        checkpoint_every=4 if smoke else 5,
        scaling_lengths=(2, 5, 9) if smoke else (2, 6, 12, 18),
        write_path=_report_path(smoke=smoke) if write else None,
    )


def _check(report) -> str:
    """Return an error message, or '' if the report passes acceptance."""
    if report.diverged != 0:
        return (
            f"{report.diverged} crashed-and-recovered runs diverged from the "
            "uncrashed reference — recovery must be bit-identical"
        )
    if report.warm_start_provider_calls != 0:
        return (
            f"warm-started stack made {report.warm_start_provider_calls} "
            "provider calls on repeat queries — the restored cache must "
            "answer all of them"
        )
    if not report.warm_start.get("answers_match_reference"):
        return "warm-started answers differ from the reference completions"
    if not report.crash_points:
        return "crash sweep produced no crash points"
    return ""


def test_recovery_bit_identical_and_warm(once):
    report = once(_run, smoke=True, write=False)
    print()
    print(report.render())
    assert _check(report) == ""
    # The sweep must actually cover every provider-level index, including
    # crashes that land mid-cascade and after checkpoints.
    assert len(report.crash_points) == report.provider_requests
    assert any(p["journal_len"] == 0 for p in report.crash_points)
    assert any(p["journal_len"] > 0 for p in report.crash_points)


def main(argv) -> int:
    smoke = "--smoke" in argv
    report = _run(smoke)
    print(report.render())
    print(f"wrote {_report_path(smoke=smoke)}")
    error = _check(report)
    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    # Validate the report round-trips as JSON.
    with open(_report_path(smoke=smoke), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
