"""Ablation: row serialization quality for table understanding (II-C2).

The paper's first enhancement path: "the serialization of prior works is
usually simple (e.g., linearization by rows), overlooking the semantic
information of tabular data. LLMs can enhance this process by transforming
each row into a natural language description."

The probe: two tables whose rows look identical under naive value
linearization (both are ``city-name, 4-digit-year`` pairs) but differ in
*meaning* — team founding records vs mayor birth records. A downstream
"PLM" (logistic head over the simulated embeddings) must classify a row's
source table. Naive linearization is inseparable by construction; the NL
serialization carries the attribute names and separates cleanly.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro._util import rng_from
from repro.core.privacy.dp import dp_logistic_regression
from repro.core.privacy.federated import LogisticModel
from repro.llm.embeddings import embed_text
from repro.llm.engines.summarize import serialize_row


def build_rows(n_per_table=40, seed=61):
    rng = rng_from(seed)
    cities = ["Riverford", "Stoneport", "Greenburg", "Northville", "Goldhaven", "Westdale"]
    rows = []
    for _i in range(n_per_table):
        city = cities[int(rng.integers(0, len(cities)))]
        year = int(rng.integers(1880, 1990))
        rows.append(({"home_city": city, "founded_year": year}, "teams"))
    for _i in range(n_per_table):
        city = cities[int(rng.integers(0, len(cities)))]
        year = int(rng.integers(1880, 1990))
        rows.append(({"birth_city": city, "birth_year": year}, "mayors"))
    return rows


def naive_serialization(row):
    """Value-only linearization (the "simple" prior-work baseline)."""
    return " | ".join(str(v) for v in row.values())


def nl_serialization(table, row):
    """The LLM-style NL serialization (attribute names verbalized)."""
    return serialize_row(table, "; ".join(f"{k}: {v}" for k, v in row.items()))


def probe_accuracy(texts, labels, seed=0):
    """Train/test a logistic head over embeddings; return test accuracy."""
    rng = rng_from(seed)
    features = np.stack([embed_text(t, dim=64) for t in texts])
    y = np.array([1.0 if label == "teams" else 0.0 for label in labels])
    order = rng.permutation(len(y))
    features, y = features[order], y[order]
    split = int(0.7 * len(y))
    weights = dp_logistic_regression(features[:split], y[:split], epsilon=None, epochs=80)
    return LogisticModel(weights).accuracy(features[split:], y[split:])


def test_nl_serialization_separates_what_naive_cannot(once):
    rows = build_rows()

    def run():
        naive_texts = [naive_serialization(row) for row, _table in rows]
        nl_texts = [nl_serialization(table, row) for row, table in rows]
        labels = [table for _row, table in rows]
        return {
            "naive linearization": probe_accuracy(naive_texts, labels),
            "NL serialization": probe_accuracy(nl_texts, labels),
        }

    results = once(run)
    print()
    print(
        format_table(
            ["Serialization", "Downstream table-id accuracy"],
            list(results.items()),
            title="Serialization quality probe (II-C2)",
        )
    )
    # Naive linearization is inseparable by construction (same value space).
    assert results["naive linearization"] <= 0.75
    # NL serialization separates near-perfectly (attribute names survive).
    assert results["NL serialization"] >= 0.9
    assert results["NL serialization"] > results["naive linearization"] + 0.2
