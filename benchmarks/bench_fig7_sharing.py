"""Fig 7 bench: sub-query sharing across the paper's Q1-Q5."""

from repro.bench import run_fig7
from repro.core.decompose import shared_subquery_plan
from repro.datasets import generate_nl2sql


def test_fig7_paper_queries_share_half(once):
    result = once(run_fig7)
    print()
    print(result.render())
    assert result.total_sub_references == 8
    assert result.unique_sub_queries == 4
    assert result.llm_calls_saved == 4


def test_fig7_sharing_grows_with_workload(once):
    """Sharing ratio rises with workload size over a fixed atom pool —
    the economics that make decomposition pay off at the proxy."""

    def ratios():
        out = []
        for n in (8, 16, 32, 64):
            questions = [
                e.question
                for e in generate_nl2sql(n=n, seed=3, compound_fraction=0.9, include_paper=False)
            ]
            out.append(shared_subquery_plan(questions).sharing_ratio)
        return out

    values = once(ratios)
    print("\nsharing ratios by workload size:", [round(v, 3) for v in values])
    assert values[-1] > values[0]
