"""Perf bench: semantic SQL operators — optimized plan vs per-row reference.

Builds two identical databases, runs the semantic-operator workload
(SEMANTIC_FILTER / SEMANTIC_JOIN...MATCHES / LLM_CLASSIFY / LLM_EXTRACT)
under the optimized pipeline (conjunct reordering + predicate pushdown +
set-at-a-time batched dispatch + exact-reuse semantic cache) and under the
naive per-row reference evaluator, and writes ``BENCH_semsql.json``.
Every query's rows are compared bit-exactly; any divergence fails the run:
the plan rewrite must not cost correctness.

Run standalone for the full sweep, or in CI smoke mode:

    PYTHONPATH=src python benchmarks/bench_semantic_sql.py
    PYTHONPATH=src python benchmarks/bench_semantic_sql.py --smoke

Acceptance: zero divergence, strictly fewer provider items, and lower
simulated latency than the naive evaluator.
"""

import json
import os
import sys

from repro.bench.semsql import DEFAULT_SEMSQL_REPORT_PATH, run_semantic_sql


def _report_path() -> str:
    return os.environ.get("REPRO_BENCH_SEMSQL_PATH", DEFAULT_SEMSQL_REPORT_PATH)


def _run(smoke: bool, write: bool = True):
    report = run_semantic_sql(
        n_products=4 if smoke else 8,
        n_reviews=12 if smoke else 48,
    )
    if write:
        report.write(_report_path())
    return report


def test_semantic_sql_equivalence_and_wins(once):
    report = once(_run, smoke=True, write=False)
    print()
    print(report.render())
    assert report.diverged == 0
    totals = report.totals
    assert totals["optimized_items"] < totals["naive_items"]
    assert totals["optimized_ms"] < totals["naive_ms"]
    # The re-run query must be answered entirely from the semantic cache.
    assert report.queries["filter_cached_rerun"]["optimized_items"] == 0
    # Every semantic join pair the naive evaluator paid for, minus the
    # relationally-pruned ones, in one batch:
    join = report.queries["semantic_join"]
    assert join["optimized_items"] < join["naive_items"]
    assert join["optimized_batches"] >= 1


def main(argv) -> int:
    smoke = "--smoke" in argv
    report = _run(smoke)
    print(report.render())
    print(f"wrote {_report_path()}")
    if report.diverged != 0:
        print(
            "FAIL: optimized semantic plan diverged from the per-row "
            "reference evaluator",
            file=sys.stderr,
        )
        return 1
    totals = report.totals
    if not totals["optimized_items"] < totals["naive_items"]:
        print("FAIL: optimized plan did not reduce provider items", file=sys.stderr)
        return 1
    if not totals["optimized_ms"] < totals["naive_ms"]:
        print("FAIL: optimized plan did not reduce simulated latency", file=sys.stderr)
        return 1
    # Validate the report round-trips as JSON.
    with open(_report_path(), "r", encoding="utf-8") as handle:
        json.load(handle)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
