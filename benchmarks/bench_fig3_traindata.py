"""Fig 3 bench: execution-time prediction from few-shot examples."""

from repro.bench import run_fig3


def test_fig3_examples_help_and_strong_model_wins(once):
    result = once(run_fig3)
    print()
    print(result.render())
    # More in-context examples reduce (or at worst keep) the error.
    assert result.error("gpt-3.5-turbo", 16) <= result.error("gpt-3.5-turbo", 2)
    # The strong model is at least as good at every example count.
    for n in (2, 4, 8, 16):
        assert result.error("gpt-4", n) <= result.error("gpt-3.5-turbo", n) + 0.05
    # Absolute quality: gpt-4 with 16 examples predicts within ~15%.
    assert result.error("gpt-4", 16) <= 0.15
