"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_bench_cli_rejects_unknown_target():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "nonsense"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "unknown target" in result.stdout


def test_bench_cli_runs_fig7():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "fig7"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "LLM calls saved: 4" in result.stdout
