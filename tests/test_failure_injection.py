"""Failure-injection tests: subsystem behavior on the unhappy paths.

Production adopters hit these paths first: budgets run out mid-workload,
prompts overflow context windows, inputs are degenerate. Each test asserts
the failure is *contained* — typed errors, no partial corruption.
"""

import numpy as np
import pytest

from repro.core.cache import SemanticCache
from repro.core.cascade import CascadeClient, ConfidenceDecisionModel
from repro.core.decompose import QueryOptimizer
from repro.core.prompts.templates import qa_prompt
from repro.core.validation import SQLValidator
from repro.datasets import build_concert_db, generate_nl2sql
from repro.errors import (
    BudgetExceededError,
    ContextLengthExceededError,
    ReproError,
    SQLError,
    TransformError,
)
from repro.llm import LLMClient
from repro.vectordb import Collection


class TestBudgetExhaustion:
    def test_workload_stops_at_budget_without_partial_charge(self):
        client = LLMClient(model="gpt-4", budget_usd=0.004)
        completed = 0
        with pytest.raises(BudgetExceededError):
            for i in range(100):
                client.complete(qa_prompt(f"Who directed film number {i}?"))
                completed += 1
        assert 0 < completed < 100
        assert client.meter.cost <= 0.004

    def test_optimizer_surfaces_budget_error(self, concert_db):
        client = LLMClient(model="gpt-4", budget_usd=0.002)
        optimizer = QueryOptimizer(client, concert_db.schema_text())
        questions = [e.question for e in generate_nl2sql(n=10, seed=1)]
        with pytest.raises(BudgetExceededError):
            optimizer.translate_origin(questions)

    def test_cascade_budget_error_propagates(self):
        client = LLMClient(budget_usd=1e-9)
        cascade = CascadeClient(client)
        with pytest.raises(BudgetExceededError):
            cascade.complete(qa_prompt("Who directed The Silent Mirror?"))


class TestContextOverflow:
    def test_huge_prompt_rejected_before_spend(self):
        client = LLMClient(model="babbage-002")
        with pytest.raises(ContextLengthExceededError):
            client.complete("word " * 20_000)
        assert client.meter.calls == 0

    def test_bigger_model_accepts_what_small_rejects(self):
        prompt = "word " * 5_000  # ~5k tokens: over babbage, under gpt-4
        with pytest.raises(ContextLengthExceededError):
            LLMClient(model="babbage-002").complete(prompt)
        completion = LLMClient(model="gpt-4").complete(prompt)
        assert completion.text


class TestDegenerateInputs:
    def test_empty_prompt_still_completes(self):
        completion = LLMClient().complete("")
        assert isinstance(completion.text, str)
        assert completion.usage.prompt_tokens == 0

    def test_cache_with_empty_query(self):
        cache = SemanticCache()
        cache.put("", "empty answer")
        # Zero-vector embeddings have zero cosine to everything: a second
        # empty-string lookup may or may not reuse, but must not crash.
        lookup = cache.lookup("")
        assert lookup.tier in ("reuse", "augment", "miss")

    def test_collection_zero_vector_query(self):
        c = Collection(dim=4)
        c.add("a", np.ones(4))
        report = c.search(np.zeros(4), k=1)
        assert len(report.hits) == 1  # zero similarity, but defined

    def test_validator_on_empty_sql(self, concert_db):
        report = SQLValidator(concert_db).validate("")
        assert report.valid  # zero statements: nothing failed
        report = SQLValidator(concert_db).validate(";;;")
        assert report.valid

    def test_sql_engine_deep_nesting(self, concert_db):
        sql = "SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM stadium WHERE stadium_id > 0))"
        rows = concert_db.query(sql)
        assert rows

    def test_grid_transform_error_is_typed(self):
        from repro.tablekit import Grid, PromoteHeader

        with pytest.raises(TransformError):
            PromoteHeader().apply(Grid([], header=None))

    def test_all_library_errors_share_base(self):
        for exc_type in (BudgetExceededError, ContextLengthExceededError, SQLError, TransformError):
            assert issubclass(exc_type, ReproError)


class TestIsolationAfterFailure:
    def test_failed_transaction_leaves_db_clean(self):
        from repro.apps.transform.transaction import make_accounts_db
        from repro.errors import SQLTransactionError

        db = make_accounts_db({"a": 10.0})
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = 0")
        db.execute("ROLLBACK")
        assert db.query_scalar("SELECT balance FROM accounts") == 10.0
        with pytest.raises(SQLTransactionError):
            db.execute("COMMIT")  # no open transaction — typed error

    def test_validator_failure_does_not_poison_later_calls(self, concert_db):
        validator = SQLValidator(concert_db)
        assert not validator.validate("garbage !!").valid
        assert validator.validate("SELECT name FROM stadium").valid

    def test_meter_consistent_after_mixed_failures(self):
        client = LLMClient(model="gpt-4")
        client.complete(qa_prompt("Who directed The Silent Mirror?"))
        cost_after_success = client.meter.cost
        with pytest.raises(ContextLengthExceededError):
            client.complete("word " * 50_000)
        assert client.meter.cost == cost_after_success
        client.complete(qa_prompt("Who directed The Hidden Meridian?"))
        assert client.meter.calls == 2
