"""Property-based tests for the cache's write-behind put path (hypothesis).

Puts are amortized two layers deep — the cache parks un-embedded entries
in a put buffer, and the flat index parks vectors in an insert buffer —
so these properties pin the contract that buffering must never change:
every probe decision, statistic, and eviction is bit-identical to the
frozen seed linear scan, under put-heavy interleavings, across all four
eviction policies, through batch probes, through the cluster-pruned
index, and across snapshot boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.perf import LinearScanCache
from repro.core.cache import EvictionPolicy, SemanticCache
from repro.durability.snapshot import restore_cache_into, snapshot_cache
from repro.vectordb import ExactIVFIndex

_words = st.sampled_from(
    ["stadium", "concert", "privacy", "cache", "query", "film", "director",
     "patient", "table", "column", "vector", "index"]
)
query_strategy = st.lists(_words, min_size=2, max_size=6).map(" ".join)

# Put-heavy op stream: roughly two inserts per probe.
op_strategy = st.lists(
    st.tuples(st.sampled_from(["put", "put", "lookup"]), query_strategy),
    min_size=1,
    max_size=60,
)


def _drive(cache, ops):
    """Run an op stream and return its full decision signature."""
    signature = []
    for kind, query in ops:
        if kind == "put":
            entry = cache.put(query, f"answer for {query}", cost=0.01)
            signature.append(("put", entry is not None))
        else:
            lookup = cache.lookup(query)
            signature.append(
                (
                    "lookup",
                    lookup.tier,
                    lookup.entry.key if lookup.entry else None,
                    lookup.similarity,
                )
            )
    signature.append(("entries", list(cache.entries)))
    stats = cache.stats
    signature.append(
        (
            "stats",
            stats.lookups,
            stats.reuse_hits,
            stats.augment_hits,
            stats.misses,
            stats.evictions,
            stats.cost_saved,
        )
    )
    return signature


@settings(max_examples=25, deadline=None)
@given(
    ops=op_strategy,
    capacity=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(list(EvictionPolicy)),
)
def test_put_heavy_bit_identical_to_seed_scan(ops, capacity, policy):
    """Buffered puts + vectorized probes == the seed's eager linear scan,
    decision for decision (tier, matched key, exact similarity float),
    eviction for eviction, under every policy."""
    seed = LinearScanCache(
        capacity=capacity, reuse_threshold=0.9, augment_threshold=0.7, policy=policy
    )
    live = SemanticCache(
        capacity=capacity, reuse_threshold=0.9, augment_threshold=0.7, policy=policy
    )
    assert _drive(live, ops) == _drive(seed, ops)


@settings(max_examples=25, deadline=None)
@given(ops=op_strategy, flush_every=st.integers(min_value=1, max_value=7))
def test_explicit_flush_never_changes_decisions(ops, flush_every):
    """flush() at arbitrary points (and twice in a row) is invisible."""
    plain = SemanticCache(capacity=6, reuse_threshold=0.9, augment_threshold=0.7)
    flushed = SemanticCache(capacity=6, reuse_threshold=0.9, augment_threshold=0.7)
    plain_sig = _drive(plain, ops)

    signature = []
    for i, (kind, query) in enumerate(ops):
        if kind == "put":
            entry = flushed.put(query, f"answer for {query}", cost=0.01)
            signature.append(("put", entry is not None))
        else:
            lookup = flushed.lookup(query)
            signature.append(
                (
                    "lookup",
                    lookup.tier,
                    lookup.entry.key if lookup.entry else None,
                    lookup.similarity,
                )
            )
        if i % flush_every == 0:
            flushed.flush()
            flushed.flush()  # idempotent
    signature.append(("entries", list(flushed.entries)))
    stats = flushed.stats
    signature.append(
        (
            "stats",
            stats.lookups,
            stats.reuse_hits,
            stats.augment_hits,
            stats.misses,
            stats.evictions,
            stats.cost_saved,
        )
    )
    assert signature == plain_sig


@settings(max_examples=25, deadline=None)
@given(ops=op_strategy, chunk=st.integers(min_value=1, max_value=6))
def test_batch_probed_lookups_bit_identical(ops, chunk):
    """Lookups under a batch probe (one gemm + delta merge) == serial."""
    serial = SemanticCache(capacity=6, reuse_threshold=0.9, augment_threshold=0.7)
    batched = SemanticCache(capacity=6, reuse_threshold=0.9, augment_threshold=0.7)
    serial_sig = _drive(serial, ops)

    signature = []
    for start in range(0, len(ops), chunk):
        window = ops[start : start + chunk]
        batched.batch_probe([query for _kind, query in window])
        try:
            for kind, query in window:
                if kind == "put":
                    entry = batched.put(query, f"answer for {query}", cost=0.01)
                    signature.append(("put", entry is not None))
                else:
                    lookup = batched.lookup(query)
                    signature.append(
                        (
                            "lookup",
                            lookup.tier,
                            lookup.entry.key if lookup.entry else None,
                            lookup.similarity,
                        )
                    )
        finally:
            batched.end_probe()
    signature.append(("entries", list(batched.entries)))
    stats = batched.stats
    signature.append(
        (
            "stats",
            stats.lookups,
            stats.reuse_hits,
            stats.augment_hits,
            stats.misses,
            stats.evictions,
            stats.cost_saved,
        )
    )
    assert signature == serial_sig


@settings(max_examples=15, deadline=None)
@given(ops=op_strategy)
def test_pruned_index_bit_identical_to_flat(ops):
    """The cluster-pruned (still exact) index changes nothing but speed."""
    flat = SemanticCache(
        capacity=8, reuse_threshold=0.9, augment_threshold=0.7, index="flat"
    )
    pruned = SemanticCache(
        capacity=8,
        reuse_threshold=0.9,
        augment_threshold=0.7,
        index=ExactIVFIndex(dim=64, train_threshold=4),
    )
    assert _drive(pruned, ops) == _drive(flat, ops)


@settings(max_examples=20, deadline=None)
@given(queries=st.lists(query_strategy, min_size=1, max_size=20, unique=True))
def test_snapshot_never_observes_unflushed_buffer(queries):
    """A snapshot taken mid-put-storm (nothing probed, everything still in
    the write-behind buffer) equals one taken after an explicit flush, and
    the flush it forces leaves every entry embedded and indexed."""
    cache = SemanticCache(capacity=32, reuse_threshold=0.9, augment_threshold=0.7)
    for query in queries:
        cache.put(query, f"answer for {query}")
    # Everything is still parked: no probe has run.
    snapshot = snapshot_cache(cache)

    flushed = SemanticCache(capacity=32, reuse_threshold=0.9, augment_threshold=0.7)
    for query in queries:
        flushed.put(query, f"answer for {query}")
    flushed.flush()
    assert snapshot_cache(flushed) == snapshot

    # snapshot_cache's flush materialized the buffer as a probe would.
    assert not cache._pending_puts
    assert all(entry.embedding is not None for entry in cache.entries.values())
    cache.index.flush()
    assert set(cache.index._live) == set(cache.entries)

    # And the snapshot restores bit-identically into a fresh cache.
    restored = SemanticCache(capacity=32, reuse_threshold=0.9, augment_threshold=0.7)
    restore_cache_into(restored, snapshot)
    assert snapshot_cache(restored) == snapshot
    assert list(restored.entries) == list(cache.entries)
