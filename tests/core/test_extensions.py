"""Tests for the extension features: LRFU cache policy, drift monitoring,
secure inference deployments, prompt composition, quality-sensitive ICL."""

import pytest

from repro.apps.transform.quality import DriftMonitor
from repro.core.cache import EvictionPolicy, SemanticCache
from repro.core.privacy.secure import (
    Deployment,
    SecureLLMClient,
    compare_deployments,
)
from repro.core.prompts.store import PromptStore
from repro.core.prompts.templates import qa_prompt
from repro.llm import LLMClient


class TestLRFUPolicy:
    def _cache(self, lam):
        return SemanticCache(capacity=2, policy=EvictionPolicy.LRFU, lrfu_lambda=lam)

    def test_high_lambda_behaves_like_lru(self):
        cache = self._cache(0.99)
        cache.put("alpha alpha", "1")
        cache.put("beta beta", "2")
        # alpha was hit many times long ago; beta touched recently.
        for _i in range(5):
            cache.lookup("alpha alpha")
        for _i in range(12):
            cache.lookup("beta beta")
        cache.put("gamma gamma", "3")
        assert "beta beta" in cache  # recency dominates
        assert "alpha alpha" not in cache

    def test_low_lambda_behaves_like_lfu(self):
        cache = self._cache(0.0001)
        cache.put("alpha alpha", "1")
        cache.put("beta beta", "2")
        for _i in range(6):
            cache.lookup("alpha alpha")  # frequent
        cache.lookup("beta beta")  # recent but rare
        cache.put("gamma gamma", "3")
        assert "alpha alpha" in cache  # frequency dominates
        assert "beta beta" not in cache

    def test_lambda_validated(self):
        with pytest.raises(ValueError):
            SemanticCache(lrfu_lambda=0.0)
        with pytest.raises(ValueError):
            SemanticCache(lrfu_lambda=1.5)

    def test_capacity_invariant_under_lrfu(self):
        cache = SemanticCache(capacity=4, policy=EvictionPolicy.LRFU)
        for i in range(20):
            cache.put(f"query number {i} about topic {i}", "a")
        assert len(cache) == 4


class TestDriftMonitor:
    def test_clean_batches_pass(self):
        monitor = DriftMonitor(["101", "99", "100", "103"], mean_shift_tolerance=1.0)
        report = monitor.check_batch(["98", "102", "101"])
        assert not report.drifted

    def test_mean_shift_detected(self):
        monitor = DriftMonitor(["100", "101", "99", "100"], mean_shift_tolerance=1.0)
        report = monitor.check_batch(["150", "155", "149"])
        assert report.drifted
        assert "mean shift" in report.reason

    def test_format_drift_detected(self):
        monitor = DriftMonitor(["Aug 14 2023", "Sep 02 2021", "Jan 30 2019"])
        report = monitor.check_batch(["2023-08-30", "2021-09-02"])
        assert report.drifted
        assert report.pattern_drift == 1.0

    def test_numeric_baseline_text_batch_is_total_drift(self):
        monitor = DriftMonitor(["1", "2", "3"])
        report = monitor.check_batch(["one", "two"])
        assert report.drifted

    def test_window_alarm(self):
        monitor = DriftMonitor(["100", "101", "99"], mean_shift_tolerance=0.5, window=4)
        monitor.check_batch(["100", "100"])
        monitor.check_batch(["140", "141"])
        assert not monitor.window_alarm(min_drifted=2)
        monitor.check_batch(["150", "151"])
        assert monitor.window_alarm(min_drifted=2)

    def test_creeping_shift_trend(self):
        monitor = DriftMonitor(["100", "100", "100"], mean_shift_tolerance=10.0, window=5)
        for mean in (100, 105, 110, 118):
            monitor.check_batch([str(mean - 1), str(mean + 1)])
        trend = monitor.creeping_mean_shift()
        assert trend is not None and trend > 0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            DriftMonitor([])
        monitor = DriftMonitor(["1", "2"])
        with pytest.raises(ValueError):
            monitor.check_batch([])


class TestSecureDeployments:
    def test_answers_identical_across_deployments(self):
        prompt = qa_prompt("Who directed The Silent Mirror?")
        texts = set()
        for deployment in Deployment:
            secure = SecureLLMClient(LLMClient(model="gpt-4"), deployment=deployment)
            texts.add(secure.complete(prompt).completion.text)
        assert len(texts) == 1  # security never changes the result

    def test_overhead_ordering(self):
        comparison = compare_deployments(qa_prompt("Who directed The Silent Mirror?"))
        assert (
            comparison["plaintext"]["latency_ms"]
            < comparison["tee"]["latency_ms"]
            < comparison["crypto"]["latency_ms"]
        )
        assert comparison["crypto"]["bytes_on_wire"] > 100 * comparison["plaintext"]["bytes_on_wire"]

    def test_exposure_profile(self):
        comparison = compare_deployments(qa_prompt("Who directed The Silent Mirror?"))
        assert comparison["plaintext"]["plaintext_disclosed"] == 1.0
        assert comparison["tee"]["plaintext_disclosed"] == 0.0
        assert comparison["tee"]["side_channel_exposure"] > 0
        assert comparison["crypto"]["side_channel_exposure"] == 0.0

    def test_ledger_accumulates(self):
        secure = SecureLLMClient(LLMClient(model="gpt-4"), deployment=Deployment.PLAINTEXT)
        secure.complete(qa_prompt("Who directed The Silent Mirror?"))
        secure.complete(qa_prompt("Who directed The Hidden Meridian?"))
        assert secure.ledger.requests == 2
        assert secure.ledger.plaintext_tokens_disclosed > 0


class TestPromptComposition:
    def test_compose_examples_roundtrip(self):
        store = PromptStore()
        store.add(PromptStore.example_text("Who directed X?", "Ada"), task="qa")
        store.add(PromptStore.example_text("Who directed Y?", "Bob"), task="qa")
        examples = store.compose_examples("Who directed Z?", k=2, task="qa")
        assert ("Who directed X?", "Ada") in examples
        assert len(examples) == 2

    def test_compose_skips_non_pairs(self):
        store = PromptStore()
        store.add("free-form note, not an example pair", task="qa")
        assert store.compose_examples("anything", k=1, task="qa") == []


class TestQualitySensitiveICL:
    def test_correct_examples_help_weak_model(self, world):
        from repro.datasets import generate_hotpot

        examples = generate_hotpot(world, n=25, seed=61)
        pool = generate_hotpot(world, n=4, seed=62)
        good = [(ex.question, ex.answer) for ex in pool[:3]]
        bad = [(ex.question, pool[(i + 1) % 3].answer) for i, ex in enumerate(pool[:3])]

        def accuracy(few_shot):
            client = LLMClient(model="gpt-3.5-turbo")
            hits = sum(
                1
                for ex in examples
                if client.complete(qa_prompt(ex.question, examples=few_shot)).text == ex.answer
            )
            return hits / len(examples)

        assert accuracy(good) > accuracy(bad)

    def test_engine_reports_bad_examples(self, world):
        from repro.llm.engines.base import TaskContext
        from repro.llm.engines.qa import QAEngine

        film = world.films[0]
        director = world.kb.one(film, "directed_by")
        other = world.films[1]
        prompt = qa_prompt(
            f"Who directed {film}?",
            examples=[
                (f"Who directed {other}?", str(world.kb.one(other, "directed_by"))),
                (f"Who directed {film}?", "Completely Wrong Person"),
            ],
        )
        result = QAEngine().try_solve(prompt, TaskContext(knowledge=world.kb, model_name="t"))
        assert result.n_examples == 1
        assert result.metadata["bad_examples"] == 1
        assert result.answer == director
