"""Property tests: the vectordb-backed cache is a bit-identical drop-in
for the seed linear scan — tiers, similarities, matched entries, stats,
and eviction order, over randomized workloads and all four policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.perf import (
    LinearScanAdmission,
    LinearScanCache,
    linear_mmr_select,
    linear_similarity_select,
)
from repro.core.cache import AdmissionPredictor, EvictionPolicy, SemanticCache
from repro.core.prompts.selector import mmr_select, similarity_select
from repro.llm.embeddings import EmbeddingModel
from repro.vectordb import FlatIndex, HNSWIndex, IVFIndex

_words = st.sampled_from(
    ["stadium", "concert", "privacy", "cache", "query", "film", "director",
     "patient", "table", "column", "vector", "index", "lake", "schema"]
)
query_strategy = st.lists(_words, min_size=2, max_size=6).map(" ".join)


def _sig(lookup):
    return (lookup.tier, lookup.similarity, lookup.entry.key if lookup.entry else None)


@settings(max_examples=25, deadline=None)
@given(
    queries=st.lists(query_strategy, min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(list(EvictionPolicy)),
)
def test_vectorized_cache_bit_identical_to_linear_scan(queries, capacity, policy):
    reference = LinearScanCache(
        capacity=capacity, policy=policy, reuse_threshold=0.9, augment_threshold=0.7
    )
    vectorized = SemanticCache(
        capacity=capacity, policy=policy, reuse_threshold=0.9, augment_threshold=0.7
    )
    for query in queries:
        ref_lookup = reference.lookup(query)
        vec_lookup = vectorized.lookup(query)
        # Bitwise float equality on similarity, not approx.
        assert _sig(ref_lookup) == _sig(vec_lookup)
        if ref_lookup.tier != "reuse":
            reference.put(query, f"answer {query}", cost=0.01)
            vectorized.put(query, f"answer {query}", cost=0.01)
        # Same keys in the same insertion order == same eviction victims.
        assert list(reference.entries) == list(vectorized.entries)
    assert reference.stats == vectorized.stats
    assert reference.stats.evictions == vectorized.stats.evictions


@settings(max_examples=25, deadline=None)
@given(queries=st.lists(query_strategy, min_size=1, max_size=50))
def test_admission_decisions_bit_identical(queries):
    reference = LinearScanAdmission(history=8, similarity_threshold=0.9)
    vectorized = AdmissionPredictor(history=8, similarity_threshold=0.9)
    for query in queries:
        assert reference.should_admit(query) == vectorized.should_admit(query)
    assert len(reference._seen) == len(vectorized._seen)


@settings(max_examples=20, deadline=None)
@given(
    pool=st.lists(query_strategy, min_size=1, max_size=25),
    query=query_strategy,
    k=st.integers(min_value=1, max_value=8),
)
def test_selectors_match_linear_scan(pool, query, k):
    embedder = EmbeddingModel()
    assert linear_similarity_select(query, pool, k, embedder=embedder) == similarity_select(
        query, pool, k, text_of=lambda s: s, embedder=embedder
    )
    assert linear_mmr_select(query, pool, k, embedder=embedder) == mmr_select(
        query, pool, k, text_of=lambda s: s, embedder=embedder
    )


class TestPutRefresh:
    def test_refresh_updates_cost_of_miss(self):
        cache = SemanticCache()
        cache.put("query about stadiums", "old", cost=0.10)
        cache.put("query about stadiums", "new", cost=0.25)
        entry = cache.entries["query about stadiums"]
        assert entry.response == "new"
        assert entry.cost_of_miss == pytest.approx(0.25)
        # A reuse hit after refresh credits the refreshed cost.
        cache.lookup("query about stadiums")
        assert cache.stats.cost_saved == pytest.approx(0.25)

    def test_refresh_touches_lrfu(self):
        cache = SemanticCache(policy=EvictionPolicy.LRFU)
        cache.put("query about stadiums", "a")
        crf_before = cache.entries["query about stadiums"].crf
        cache.put("query about stadiums", "b")
        assert cache.entries["query about stadiums"].crf > crf_before


class TestIndexBackends:
    def _fill(self, cache, n=20):
        for i in range(n):
            cache.put(f"query number {i} about topic {i}", f"answer {i}")

    @pytest.mark.parametrize("kind,cls", [("ivf", IVFIndex), ("hnsw", HNSWIndex)])
    def test_approximate_backends_serve_lookups(self, kind, cls):
        cache = SemanticCache(capacity=32, index=kind)
        assert isinstance(cache.index, cls)
        self._fill(cache)
        lookup = cache.lookup("query number 3 about topic 3")
        assert lookup.tier == "reuse"
        assert lookup.entry.response == "answer 3"

    def test_prebuilt_index_object_accepted(self):
        index = FlatIndex(dim=64)
        cache = SemanticCache(index=index)
        assert cache.index is index
        self._fill(cache, n=5)
        cache.flush()  # puts are write-behind; materialize before inspecting
        assert len(index) == 5

    def test_unknown_index_kind_rejected(self):
        with pytest.raises(ValueError):
            SemanticCache(index="faiss")

    def test_eviction_keeps_index_in_sync(self):
        cache = SemanticCache(capacity=4)
        self._fill(cache, n=12)
        assert len(cache) == 4
        cache.flush()
        assert len(cache.index) == 4
        assert sorted(cache.entries) == sorted(vid for vid, _v in cache.index.items())


class TestAdmissionEmbedsOnce:
    def test_should_admit_embeds_query_once(self):
        predictor = AdmissionPredictor()
        calls = []
        original = predictor.embedder.embed

        def counting_embed(text):
            calls.append(text)
            return original(text)

        predictor.embedder.embed = counting_embed
        predictor.should_admit("some query about concerts")
        assert len(calls) == 1
        predictor.should_admit("a sub query", kind="sub")
        assert len(calls) == 2

    def test_ring_buffer_overwrites_oldest(self):
        predictor = AdmissionPredictor(history=3, similarity_threshold=0.99)
        for i in range(5):
            predictor.observe(f"filler query number {i}")
        seen = predictor._seen
        assert len(seen) == 3
        expected = [predictor.embedder.embed(f"filler query number {i}") for i in (2, 3, 4)]
        for got, want in zip(seen, expected):
            assert np.array_equal(got, want)
