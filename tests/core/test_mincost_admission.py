"""Tests: min-cost covering-set decomposition and cache admission."""

import pytest

from repro.core.cache import AdmissionPredictor, SemanticCache
from repro.core.decompose import QueryOptimizer
from repro.datasets import build_concert_db, generate_nl2sql, paper_queries
from repro.datasets.spider import execution_match
from repro.llm import LLMClient


class TestMinCostPlan:
    def _optimizer(self, db, client=None):
        pool = [(e.question, e.gold_sql) for e in generate_nl2sql(n=3, seed=99, include_paper=False)]
        return QueryOptimizer(client or LLMClient(model="gpt-4"), db.schema_text(), pool)

    def test_isolated_compound_goes_direct(self, concert_db):
        # One compound with no sharing anywhere: decomposing costs two
        # prefix-bearing calls vs one — direct must win.
        client = LLMClient(model="gpt-4")
        optimizer = self._optimizer(concert_db, client)
        questions = [paper_queries()[0].question]
        _sqls, stats = optimizer.translate_min_cost(questions)
        assert stats == {"decomposed": 0, "direct": 1}

    def test_shared_compounds_get_decomposed(self, concert_db):
        client = LLMClient(model="gpt-4")
        optimizer = self._optimizer(concert_db, client)
        # The paper's Q1/Q4/Q5 share both sub-queries pairwise.
        questions = [q.question for q in paper_queries() if q.recompose_op]
        _sqls, stats = optimizer.translate_min_cost(questions)
        assert stats["decomposed"] >= 2

    def test_min_cost_between_origin_and_decomposed(self, concert_db):
        workload = generate_nl2sql(n=20, seed=7, compound_fraction=0.7)
        questions = [e.question for e in workload]

        def cost_of(method):
            client = LLMClient(model="gpt-4")
            optimizer = self._optimizer(concert_db, client)
            result = getattr(optimizer, method)(questions)
            if method == "translate_min_cost":
                result = result[0]
            assert len(result) == len(questions)
            return client.meter.cost

        origin = cost_of("translate_origin")
        min_cost = cost_of("translate_min_cost")
        assert min_cost <= origin

    def test_min_cost_output_correctness(self, concert_db):
        workload = generate_nl2sql(n=12, seed=5, compound_fraction=0.8)
        client = LLMClient(model="gpt-4")
        optimizer = self._optimizer(concert_db, client)
        sqls, _stats = optimizer.translate_min_cost([e.question for e in workload])
        accuracy = sum(
            execution_match(concert_db, sql, e.gold_sql) for sql, e in zip(sqls, workload)
        ) / len(workload)
        assert accuracy >= 0.7


class TestAdmissionPredictor:
    def test_first_occurrence_rejected(self):
        predictor = AdmissionPredictor()
        assert not predictor.should_admit("a brand new query about stadiums")

    def test_second_occurrence_admitted(self):
        predictor = AdmissionPredictor()
        predictor.should_admit("repeated query about stadium concerts")
        assert predictor.should_admit("repeated query about stadium concerts")

    def test_paraphrase_counts_as_seen(self):
        predictor = AdmissionPredictor(similarity_threshold=0.8)
        predictor.should_admit("Who was born earlier, Ada Lovelace or Bob Noyce?")
        assert predictor.should_admit("Between Ada Lovelace and Bob Noyce, who was born earlier?")

    def test_subqueries_always_admitted(self):
        predictor = AdmissionPredictor()
        assert predictor.should_admit("a sub question never seen before", kind="sub")

    def test_history_bounded(self):
        predictor = AdmissionPredictor(history=5)
        for i in range(20):
            predictor.observe(f"filler query number {i}")
        assert len(predictor._seen) == 5

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            AdmissionPredictor(history=0)

    def test_cache_respects_admission(self):
        cache = SemanticCache(capacity=8, admission=AdmissionPredictor())
        assert cache.put("one-off query alpha", "a") is None
        assert cache.admission_rejects == 1
        assert "one-off query alpha" not in cache
        # A repeated query gets through on its second put attempt.
        cache.put("hot query beta", "b")
        entry = cache.put("hot query beta gamma", "b")  # near-duplicate traffic
        assert cache.admission_rejects >= 1

    def test_admission_protects_hot_set_under_pressure(self):
        """With many one-off queries, admission keeps the hot set cached."""
        hot = [f"hot question {i} about films" for i in range(3)]

        def hit_value(with_admission):
            cache = SemanticCache(
                capacity=4,
                admission=AdmissionPredictor() if with_admission else None,
            )
            # Warm the doorkeeper + cache with two passes over the hot set.
            for _round in range(2):
                for query in hot:
                    if cache.lookup(query).tier != "reuse":
                        cache.put(query, "a")
            # Cold flood.
            for i in range(12):
                query = f"cold one-off query {i} about something else entirely"
                if cache.lookup(query).tier != "reuse":
                    cache.put(query, "a")
            # Value round: hot set again.
            return sum(1 for q in hot if cache.lookup(q).tier == "reuse")

        assert hit_value(True) >= hit_value(False)
        assert hit_value(True) == len(hot)
