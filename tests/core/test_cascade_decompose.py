"""Cascade and query decomposition tests."""

import pytest

from repro.core.cascade import (
    CascadeClient,
    ConfidenceDecisionModel,
    LearnedDecisionModel,
    completion_features,
)
from repro.core.decompose import (
    QueryOptimizer,
    answer_via_decomposition,
    decompose_nl_question,
    decompose_qa_question,
    recompose_sql,
    shared_subquery_plan,
)
from repro.datasets import build_concert_db, generate_hotpot, generate_nl2sql, paper_queries
from repro.datasets.spider import execution_match
from repro.llm import LLMClient


class TestCascade:
    def test_last_stage_always_answers(self):
        client = LLMClient()
        cascade = CascadeClient(
            client, decision_models=[ConfidenceDecisionModel(1.0), ConfidenceDecisionModel(1.0)]
        )
        result = cascade.complete("Question: Who directed The Silent Mirror?")
        assert result.model == "gpt-4"
        assert result.escalations == 2
        assert len(result.attempts) == 3

    def test_zero_threshold_accepts_first(self):
        client = LLMClient()
        cascade = CascadeClient(
            client, decision_models=[ConfidenceDecisionModel(0.0), ConfidenceDecisionModel(0.0)]
        )
        result = cascade.complete("Question: Who directed The Silent Mirror?")
        assert result.model == "babbage-002"
        assert result.escalations == 0

    def test_cost_sums_attempts(self):
        client = LLMClient()
        cascade = CascadeClient(
            client, decision_models=[ConfidenceDecisionModel(1.0), ConfidenceDecisionModel(1.0)]
        )
        result = cascade.complete("Question: Who directed The Silent Mirror?")
        assert result.cost == pytest.approx(sum(a.cost for a in result.attempts))

    def test_decision_model_count_validated(self):
        with pytest.raises(ValueError):
            CascadeClient(LLMClient(), decision_models=[ConfidenceDecisionModel()])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            CascadeClient(LLMClient(), chain=[])

    def test_cascade_cheaper_than_gpt4(self, world):
        examples = generate_hotpot(world, n=15, seed=3)
        direct = LLMClient(model="gpt-4")
        for ex in examples:
            direct.complete("Question: " + ex.question)
        cascade_client = LLMClient()
        cascade = CascadeClient(cascade_client)
        for ex in examples:
            cascade.complete("Question: " + ex.question)
        assert cascade_client.meter.cost < direct.meter.cost

    def test_learned_decision_model(self, world):
        examples = generate_hotpot(world, n=30, seed=4)
        client = LLMClient(model="gpt-3.5-turbo")
        completions, labels = [], []
        for ex in examples:
            completion = client.complete("Question: " + ex.question)
            completions.append(completion)
            labels.append(completion.text == ex.answer)
        model = LearnedDecisionModel().fit(completions, labels)
        # The learned model should do better than chance at separating.
        correct_probs = [model.probability(c) for c, l in zip(completions, labels) if l]
        wrong_probs = [model.probability(c) for c, l in zip(completions, labels) if not l]
        assert sum(correct_probs) / len(correct_probs) > sum(wrong_probs) / len(wrong_probs)

    def test_learned_model_requires_fit(self):
        model = LearnedDecisionModel()
        with pytest.raises(RuntimeError):
            model.probability(None)  # type: ignore[arg-type]

    def test_completion_features_shape(self):
        completion = LLMClient().complete("Question: test")
        assert completion_features(completion).shape == (4,)


class TestNLDecomposition:
    def test_union(self):
        d = decompose_nl_question(
            "What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?"
        )
        assert d.recompose_op == "UNION"
        assert len(d.sub_questions) == 2
        assert "concerts in 2014" in d.sub_questions[0]
        assert "sports meetings in 2015" in d.sub_questions[1]

    def test_except(self):
        d = decompose_nl_question(
            "Show the names of stadiums that had concerts in 2014 but did not have sports meetings in 2015?"
        )
        assert d.recompose_op == "EXCEPT"

    def test_atomic_passthrough(self):
        d = decompose_nl_question("What are the names of stadiums that had concerts in 2014?")
        assert not d.is_compound
        assert d.sub_questions == (d.question,)

    def test_non_stadium_passthrough(self):
        d = decompose_nl_question("Who directed the film?")
        assert not d.is_compound

    def test_recompose_sql(self):
        assert recompose_sql(["A", "B"], "UNION") == "A UNION B"
        assert recompose_sql(["A"], "UNION") == "A"

    def test_shared_plan_dedups(self):
        plan = shared_subquery_plan([q.question for q in paper_queries()])
        assert plan.total_sub_references == 8
        assert len(plan.unique_sub_questions) == 4
        assert plan.llm_calls_saved == 4
        assert plan.sharing_ratio == 0.5

    def test_sub_questions_translate_correctly(self, concert_db):
        d = decompose_nl_question(
            "What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?"
        )
        client = LLMClient(model="gpt-4")
        optimizer = QueryOptimizer(client, concert_db.schema_text())
        predictions = optimizer.translate_decomposed([d.question])
        gold = paper_queries()[0].gold_sql
        assert execution_match(concert_db, predictions[0], gold)


class TestQueryOptimizerRegimes:
    @pytest.fixture()
    def setup(self, concert_db):
        workload = generate_nl2sql(n=12, seed=13, compound_fraction=0.9)
        pool = [(e.question, e.gold_sql) for e in generate_nl2sql(n=3, seed=99, include_paper=False)]
        return concert_db, workload, pool

    def test_decomposition_reduces_cost(self, setup):
        db, workload, pool = setup
        questions = [e.question for e in workload]
        origin_client = LLMClient(model="gpt-4")
        QueryOptimizer(origin_client, db.schema_text(), pool).translate_origin(questions)
        decomposed_client = LLMClient(model="gpt-4")
        QueryOptimizer(decomposed_client, db.schema_text(), pool).translate_decomposed(questions)
        assert decomposed_client.meter.cost < origin_client.meter.cost

    def test_combination_reduces_cost_further(self, setup):
        db, workload, pool = setup
        questions = [e.question for e in workload]
        decomposed_client = LLMClient(model="gpt-4")
        QueryOptimizer(decomposed_client, db.schema_text(), pool).translate_decomposed(questions)
        combined_client = LLMClient(model="gpt-4")
        QueryOptimizer(combined_client, db.schema_text(), pool).translate_decomposed_combined(questions)
        assert combined_client.meter.cost < decomposed_client.meter.cost

    def test_all_regimes_return_one_sql_per_question(self, setup):
        db, workload, pool = setup
        questions = [e.question for e in workload]
        for method in ("translate_origin", "translate_decomposed", "translate_decomposed_combined"):
            optimizer = QueryOptimizer(LLMClient(model="gpt-4"), db.schema_text(), pool)
            predictions = getattr(optimizer, method)(questions)
            assert len(predictions) == len(questions)

    def test_combined_same_answers_as_decomposed(self, setup):
        db, workload, pool = setup
        questions = [e.question for e in workload]
        a = QueryOptimizer(LLMClient(model="gpt-4"), db.schema_text(), pool).translate_decomposed(questions)
        b = QueryOptimizer(LLMClient(model="gpt-4"), db.schema_text(), pool).translate_decomposed_combined(
            questions
        )
        # Same prompts (modulo shared prefix) → same deterministic outputs.
        assert a == b


class TestQADecomposition:
    def test_bridge_plan(self):
        plan = decompose_qa_question("Who directed the film that starred Ada Lovelace?")
        assert plan.kind == "bridge"
        assert len(plan.steps) == 2
        assert "{answer}" in plan.steps[1].template

    def test_paraphrase_decomposes_to_same_steps(self):
        canonical = decompose_qa_question("Who directed the film that starred Ada Lovelace?")
        rephrased = decompose_qa_question("The film starring Ada Lovelace was directed by whom?")
        assert [s.template for s in canonical.steps] == [s.template for s in rephrased.steps]

    def test_comparison_plan(self):
        plan = decompose_qa_question("Who was born earlier, Ada or Bob?")
        assert plan.kind == "comparison"
        assert plan.operands == ("Ada", "Bob")

    def test_atomic_plan(self):
        plan = decompose_qa_question("Who directed The Silent Mirror?")
        assert plan.kind == "atomic"
        assert len(plan.steps) == 1

    def test_answer_via_decomposition_matches_gold(self, world):
        client = LLMClient(model="gpt-4")
        bridges = [e for e in generate_hotpot(world, n=20, seed=6) if e.kind == "bridge"]
        hits = sum(
            1 for ex in bridges if answer_via_decomposition(client, ex.question) == ex.answer
        )
        assert hits / len(bridges) >= 0.8

    def test_decomposition_beats_direct_for_weak_model(self, world):
        examples = generate_hotpot(world, n=30, seed=8)
        direct = LLMClient(model="gpt-3.5-turbo")
        direct_acc = sum(
            1 for ex in examples if direct.complete("Question: " + ex.question).text == ex.answer
        ) / len(examples)
        decomposed = LLMClient(model="gpt-3.5-turbo")
        decomposed_acc = sum(
            1
            for ex in examples
            if answer_via_decomposition(decomposed, ex.question) == ex.answer
        ) / len(examples)
        assert decomposed_acc > direct_acc

    def test_custom_sub_answer_fn(self):
        calls = []

        def fake_sub(question):
            calls.append(question)
            return "Stub Film" if "starred" in question else "Stub Director"

        answer = answer_via_decomposition(
            LLMClient(), "Who directed the film that starred Nobody?", sub_answer_fn=fake_sub
        )
        assert answer == "Stub Director"
        assert len(calls) == 2
        assert "Stub Film" in calls[1]
