"""Property-based tests for the semantic cache (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import EvictionPolicy, SemanticCache

# Distinct-ish query texts: word tuples over a small vocabulary.
_words = st.sampled_from(
    ["stadium", "concert", "privacy", "cache", "query", "film", "director",
     "patient", "table", "column", "vector", "index"]
)
query_strategy = st.lists(_words, min_size=2, max_size=6).map(" ".join)


@settings(max_examples=30, deadline=None)
@given(
    queries=st.lists(query_strategy, min_size=1, max_size=40),
    capacity=st.integers(min_value=1, max_value=10),
    policy=st.sampled_from(list(EvictionPolicy)),
)
def test_capacity_never_exceeded(queries, capacity, policy):
    cache = SemanticCache(capacity=capacity, policy=policy)
    for query in queries:
        cache.lookup(query)
        cache.put(query, "answer")
    assert len(cache) <= capacity


@settings(max_examples=30, deadline=None)
@given(queries=st.lists(query_strategy, min_size=1, max_size=15, unique=True))
def test_exact_requery_always_reuses(queries):
    cache = SemanticCache(capacity=64)
    for query in queries:
        cache.put(query, f"answer for {query}")
    for query in queries:
        lookup = cache.lookup(query)
        assert lookup.tier == "reuse"
        assert lookup.entry.response == f"answer for {query}"


@settings(max_examples=30, deadline=None)
@given(queries=st.lists(query_strategy, min_size=1, max_size=20))
def test_stats_accounting_consistent(queries):
    cache = SemanticCache(capacity=64)
    for query in queries:
        lookup = cache.lookup(query)
        if lookup.tier != "reuse":
            cache.put(query, "a")
    stats = cache.stats
    assert stats.lookups == len(queries)
    assert stats.reuse_hits + stats.augment_hits + stats.misses == stats.lookups


@settings(max_examples=20, deadline=None)
@given(
    queries=st.lists(query_strategy, min_size=2, max_size=20, unique=True),
    policy=st.sampled_from(list(EvictionPolicy)),
)
def test_eviction_deterministic(queries, policy):
    def run():
        cache = SemanticCache(capacity=3, policy=policy)
        for query in queries:
            cache.lookup(query)
            cache.put(query, "a")
        return sorted(cache.entries)

    assert run() == run()
