"""Semantic cache tests: tiers, thresholds, eviction policies."""

import pytest

from repro.core.cache import (
    AUGMENT_WEIGHT,
    REUSE_WEIGHT,
    CachedLLMClient,
    EvictionPolicy,
    SemanticCache,
)
from repro.llm import LLMClient


class TestLookupTiers:
    def test_exact_hit(self):
        cache = SemanticCache()
        cache.put("who directed the silent mirror", "Gusio", cost=0.1)
        lookup = cache.lookup("who directed the silent mirror")
        assert lookup.tier == "reuse"
        assert lookup.entry.response == "Gusio"
        assert lookup.similarity == pytest.approx(1.0)

    def test_semantic_hit_on_paraphrase(self):
        cache = SemanticCache(reuse_threshold=0.80)
        cache.put("Who was born earlier, Ada Lovelace or Bob Noyce?", "Ada", cost=0.1)
        lookup = cache.lookup("Between Ada Lovelace and Bob Noyce, who was born earlier?")
        assert lookup.tier == "reuse"

    def test_miss_on_unrelated(self):
        cache = SemanticCache()
        cache.put("stadium concerts in 2014", "answer")
        assert cache.lookup("differential privacy for federated learning").tier == "miss"

    def test_augment_tier_between_thresholds(self):
        cache = SemanticCache(reuse_threshold=0.999, augment_threshold=0.5)
        cache.put("Who was born earlier, Ada Lovelace or Bob Noyce?", "Ada")
        lookup = cache.lookup("Who was born earlier, Ada Lovelace or Carl Noyce?")
        assert lookup.tier == "augment"

    def test_empty_cache_misses(self):
        assert SemanticCache().lookup("anything").tier == "miss"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SemanticCache(reuse_threshold=0.5, augment_threshold=0.9)
        with pytest.raises(ValueError):
            SemanticCache(capacity=0)


class TestStats:
    def test_hit_and_miss_counts(self):
        cache = SemanticCache()
        cache.put("q1", "a1", cost=0.25)
        cache.lookup("q1")
        cache.lookup("totally different thing")
        assert cache.stats.reuse_hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_cost_saved_accumulates(self):
        cache = SemanticCache()
        cache.put("q1", "a1", cost=0.25)
        cache.lookup("q1")
        cache.lookup("q1")
        assert cache.stats.cost_saved == pytest.approx(0.5)


class TestEviction:
    def _fill(self, cache, n, prefix="query"):
        for i in range(n):
            cache.put(f"{prefix} number {i} about topic {i}", f"answer {i}")

    def test_capacity_respected(self):
        cache = SemanticCache(capacity=5)
        self._fill(cache, 10)
        assert len(cache) == 5
        assert cache.stats.evictions == 5

    def test_lru_evicts_oldest(self):
        cache = SemanticCache(capacity=2, policy=EvictionPolicy.LRU)
        cache.put("alpha alpha", "1")
        cache.put("beta beta", "2")
        cache.lookup("alpha alpha")  # refresh alpha
        cache.put("gamma gamma", "3")
        assert "alpha alpha" in cache
        assert "beta beta" not in cache

    def test_lfu_evicts_least_frequent(self):
        cache = SemanticCache(capacity=2, policy=EvictionPolicy.LFU)
        cache.put("alpha alpha", "1")
        cache.put("beta beta", "2")
        for _i in range(3):
            cache.lookup("alpha alpha")
        cache.put("gamma gamma", "3")
        assert "alpha alpha" in cache
        assert "beta beta" not in cache

    def test_weighted_prefers_reuse_hits(self):
        cache = SemanticCache(
            capacity=2, policy=EvictionPolicy.WEIGHTED, reuse_threshold=0.99, augment_threshold=0.6
        )
        cache.put("alpha alpha alpha", "1")
        cache.put("beta beta beta", "2")
        # alpha gets a reuse hit (weight 3); beta gets an augment hit (weight 1).
        cache.lookup("alpha alpha alpha")
        cache.lookup("beta beta beta extra words attached")
        cache.put("gamma gamma gamma", "3")
        assert "alpha alpha alpha" in cache
        assert "beta beta beta" not in cache

    def test_weight_constants_ordering(self):
        assert REUSE_WEIGHT > AUGMENT_WEIGHT

    def test_put_refreshes_existing(self):
        cache = SemanticCache(capacity=2)
        cache.put("q", "old")
        cache.put("q", "new")
        assert len(cache) == 1
        assert cache.lookup("q").entry.response == "new"


class TestCachedLLMClient:
    def test_second_call_hits_cache(self):
        client = LLMClient(model="gpt-4")
        cached = CachedLLMClient(client)
        prompt = "Question: Who directed The Silent Mirror?"
        text1, source1 = cached.complete(prompt)
        cost_after_first = client.meter.cost
        text2, source2 = cached.complete(prompt)
        assert (source1, source2) == ("llm", "cache")
        assert text1 == text2
        assert client.meter.cost == cost_after_first  # no new spend

    def test_cache_key_override(self):
        client = LLMClient(model="gpt-4")
        cached = CachedLLMClient(client)
        cached.complete("Context: blah blah\nQuestion: Who directed The Silent Mirror?",
                        cache_key="Who directed The Silent Mirror?")
        _text, source = cached.complete(
            "Different framing\nQuestion: Who directed The Silent Mirror?",
            cache_key="Who directed The Silent Mirror?",
        )
        assert source == "cache"

    def test_augment_tier_adds_example(self):
        client = LLMClient(model="gpt-4")
        cache = SemanticCache(reuse_threshold=0.999, augment_threshold=0.4)
        cached = CachedLLMClient(client, cache=cache)
        cached.complete("Question: Who was born earlier, Ada Lovelace or Bob Noyce?")
        # Paraphrase-ish second query: augment tier → still calls the LLM.
        _text, source = cached.complete("Question: Who was born earlier, Ada Lovelace or Cy Noyce?")
        assert source == "llm"
        assert cache.stats.augment_hits == 1
