"""Hybrid planner, privacy and output-validation tests."""

import numpy as np
import pytest

from repro.core.hybrid import AdaptiveKPredictor, HybridPlanner, LearnedOrderRouter
from repro.core.privacy import (
    PrivacyAccountant,
    dp_logistic_regression,
    gaussian_mechanism,
    laplace_mechanism,
    membership_inference_advantage,
)
from repro.core.privacy.federated import (
    FederatedTrainer,
    LogisticModel,
    er_pair_features,
    split_across_clients,
)
from repro.core.validation import (
    CrowdValidator,
    SQLValidator,
    TransactionValidator,
    explain_by_occlusion,
    self_consistency,
)
from repro.datasets import build_concert_db, generate_er_pairs
from repro.llm import LLMClient
from repro.vectordb import Collection, FilterStrategy


# ---------------------------------------------------------------- hybrid


@pytest.fixture()
def grouped_collection():
    rng = np.random.default_rng(0)
    c = Collection(dim=8)
    for i in range(200):
        c.add(f"i{i}", rng.normal(size=8), metadata={"group": i % 20, "half": i % 2})
    return c


class TestHybridPlanner:
    def test_selective_filter_goes_pre(self, grouped_collection):
        planner = HybridPlanner(grouped_collection)
        decision = planner.plan({"group": 3}, k=5)
        assert decision.strategy is FilterStrategy.PRE
        assert decision.estimated_selectivity == pytest.approx(0.05)

    def test_broad_filter_goes_post(self, grouped_collection):
        planner = HybridPlanner(grouped_collection)
        decision = planner.plan({"half": 0}, k=5)
        assert decision.strategy is FilterStrategy.POST
        assert decision.widened_k > 5

    def test_search_fills_k(self, grouped_collection):
        planner = HybridPlanner(grouped_collection)
        report, decision = planner.search(np.ones(8), k=5, where={"half": 1})
        assert len(report.hits) == 5
        assert all(h.metadata["half"] == 1 for h in report.hits)

    def test_k_predictor_learns_from_feedback(self):
        predictor = AdaptiveKPredictor(safety=1.0)
        before = predictor.predict_k(10, selectivity=0.5)
        for _i in range(5):
            predictor.observe(requested_k=10, scanned_k=80, returned=10)
        after = predictor.predict_k(10, selectivity=0.5)
        assert after != before
        assert after >= 10

    def test_k_predictor_null_result_pessimism(self):
        predictor = AdaptiveKPredictor()
        predictor.observe(requested_k=5, scanned_k=50, returned=0)
        assert predictor.predict_k(5, selectivity=0.9) > 5

    def test_learned_router(self):
        samples = []
        # PRE wins when selectivity is low, loses when high (synthetic truth).
        for selectivity in np.linspace(0.01, 0.99, 25):
            samples.append((float(selectivity), 1000, 10, bool(selectivity < 0.3)))
        router = LearnedOrderRouter().fit(samples)
        assert router.prefer_pre(0.05, 1000, 10)
        assert not router.prefer_pre(0.9, 1000, 10)

    def test_router_requires_fit(self):
        with pytest.raises(RuntimeError):
            LearnedOrderRouter().prefer_pre(0.5, 10, 5)

    def test_planner_uses_fitted_router(self, grouped_collection):
        router = LearnedOrderRouter().fit([(0.05, 200, 5, True), (0.9, 200, 5, False)])
        planner = HybridPlanner(grouped_collection, router=router)
        assert planner.plan({"group": 1}, k=5).strategy is FilterStrategy.PRE


# ---------------------------------------------------------------- privacy


class TestMechanisms:
    def test_laplace_noise_distribution(self):
        rng = np.random.default_rng(0)
        noisy = [laplace_mechanism(10.0, sensitivity=1.0, epsilon=1.0, rng=rng) for _ in range(500)]
        assert abs(np.mean(noisy) - 10.0) < 0.3

    def test_higher_epsilon_less_noise(self):
        rng_lo = np.random.default_rng(1)
        rng_hi = np.random.default_rng(1)
        loose = [laplace_mechanism(0.0, 1.0, 0.1, rng=rng_lo) for _ in range(300)]
        tight = [laplace_mechanism(0.0, 1.0, 10.0, rng=rng_hi) for _ in range(300)]
        assert np.std(tight) < np.std(loose)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            gaussian_mechanism(1.0, 1.0, 1.0, delta=2.0)

    def test_accountant_basic_composition(self):
        accountant = PrivacyAccountant()
        accountant.record(1.0, 1e-5)
        accountant.record(0.5, 1e-5)
        eps, delta = accountant.basic_composition()
        assert eps == pytest.approx(1.5)
        assert delta == pytest.approx(2e-5)

    def test_advanced_composition_beats_basic_for_many_steps(self):
        accountant = PrivacyAccountant()
        for _i in range(100):
            accountant.record(0.1)
        basic_eps, _ = accountant.basic_composition()
        adv_eps, _ = accountant.advanced_composition()
        assert adv_eps < basic_eps


@pytest.fixture(scope="module")
def er_features():
    pairs = generate_er_pairs(n=160, seed=7)
    x = np.stack([er_pair_features(p.a, p.b) for p in pairs])
    y = np.array([1.0 if p.label else 0.0 for p in pairs])
    return x, y


class TestDPTraining:
    def test_non_private_learns(self, er_features):
        x, y = er_features
        weights = dp_logistic_regression(x[:100], y[:100], epsilon=None, epochs=60)
        acc = LogisticModel(weights).accuracy(x[100:], y[100:])
        assert acc >= 0.85

    def test_dp_utility_degrades_gracefully(self, er_features):
        x, y = er_features
        accuracies = []
        for epsilon in (None, 8.0, 0.05):
            weights = dp_logistic_regression(x[:100], y[:100], epsilon=epsilon, epochs=30, seed=3)
            accuracies.append(LogisticModel(weights).accuracy(x[100:], y[100:]))
        assert accuracies[0] >= accuracies[2] - 0.05  # tiny-epsilon is worst (or tied)
        assert accuracies[1] >= accuracies[2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            dp_logistic_regression(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            dp_logistic_regression(np.zeros((3, 2)), np.zeros(3), epsilon=-1.0)

    def test_membership_inference_on_overfit_model(self, er_features):
        x, y = er_features
        # Overfit regime: tiny training set, many epochs, no privacy.
        train_x, train_y = x[:16], y[:16]
        weights = dp_logistic_regression(train_x, train_y, epsilon=None, epochs=400, learning_rate=1.0)
        report = membership_inference_advantage(weights, train_x, train_y, x[100:], y[100:])
        assert report.advantage > 0.05
        assert 0 <= report.true_positive_rate <= 1


class TestFederated:
    def test_split_covers_all_data(self, er_features):
        x, y = er_features
        clients = split_across_clients(x, y, n_clients=4, seed=1)
        assert sum(c.n_examples for c in clients) == len(y)

    def test_heterogeneous_sizes_differ(self, er_features):
        x, y = er_features
        clients = split_across_clients(x, y, n_clients=4, seed=1, heterogeneous=True)
        sizes = [c.n_examples for c in clients]
        assert max(sizes) > min(sizes)

    def test_fedavg_learns(self, er_features):
        x, y = er_features
        clients = split_across_clients(x[:120], y[:120], n_clients=3, seed=2)
        trainer = FederatedTrainer(clients, dim=x.shape[1], seed=3)
        model = trainer.train(rounds=4, eval_set=(x[120:], y[120:]))
        assert model.accuracy(x[120:], y[120:]) >= 0.8
        assert len(trainer.history) == 4

    def test_trainer_requires_clients(self):
        with pytest.raises(ValueError):
            FederatedTrainer([], dim=3)


# -------------------------------------------------------------- validation


class TestValidators:
    def test_sql_validator_passes_good_sql(self, concert_db):
        report = SQLValidator(concert_db).validate("SELECT name FROM stadium WHERE capacity > 0")
        assert report.valid

    def test_sql_validator_flags_syntax(self, concert_db):
        report = SQLValidator(concert_db).validate("SELEC name FROM stadium")
        assert not report.valid
        assert report.failed_checks() == ["syntax"]

    def test_sql_validator_flags_unknown_table(self, concert_db):
        report = SQLValidator(concert_db).validate("SELECT x FROM missing_table")
        assert "schema" in report.failed_checks()

    def test_sql_validator_does_not_mutate(self, concert_db):
        before = concert_db.query_scalar("SELECT COUNT(*) FROM stadium")
        SQLValidator(concert_db).validate("DELETE FROM stadium")
        assert concert_db.query_scalar("SELECT COUNT(*) FROM stadium") == before

    def test_transaction_validator(self):
        from repro.apps.transform.transaction import make_accounts_db

        db = make_accounts_db({"a": 100.0, "b": 0.0})
        validator = TransactionValidator(db)
        good = (
            "BEGIN; UPDATE accounts SET balance = balance - 5 WHERE owner = 'a'; "
            "UPDATE accounts SET balance = balance + 5 WHERE owner = 'b'; COMMIT;"
        )
        assert validator.validate(good).valid
        unbalanced = "BEGIN; UPDATE accounts SET balance = balance - 5 WHERE owner = 'a'; COMMIT;"
        assert "balance_conservation" in validator.validate(unbalanced).failed_checks()
        unframed = (
            "UPDATE accounts SET balance = balance - 5 WHERE owner = 'a'; "
            "UPDATE accounts SET balance = balance + 5 WHERE owner = 'b';"
        )
        assert "atomicity" in validator.validate(unframed).failed_checks()


class TestSelfConsistency:
    def test_easy_question_unanimous(self):
        report = self_consistency("Question: Who directed The Silent Mirror?", model="gpt-4", n_samples=5)
        assert report.agreement >= 0.8

    def test_hard_question_disagrees_for_weak_model(self):
        report = self_consistency(
            "Question: Who directed the film that starred Torus Nashgate?",
            model="babbage-002",
            n_samples=7,
        )
        assert report.agreement < 1.0

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            self_consistency("Question: x?", n_samples=0)


class TestInterpretability:
    def test_occlusion_flags_entity_tokens(self):
        client = LLMClient(model="gpt-4")
        importances = explain_by_occlusion(
            client, "Question: Who directed The Silent Mirror?", max_tokens=12
        )
        assert importances
        top_tokens = {token.lower() for token, _imp in importances[:4]}
        # Occluding the film title must matter more than filler words.
        assert top_tokens & {"silent", "mirror"}


class TestCrowd:
    def test_majority_recovers_oracle(self):
        crowd = CrowdValidator(n_workers=9, worker_accuracy=0.8, seed=0)
        agree = sum(1 for i in range(40) if crowd.validate(f"item{i}", True).accepted)
        assert agree >= 36  # majority of 9 at 0.8 accuracy is near-perfect

    def test_low_accuracy_workers_fail_often(self):
        good = CrowdValidator(n_workers=5, worker_accuracy=0.95, seed=1)
        bad = CrowdValidator(n_workers=5, worker_accuracy=0.55, seed=1)
        good_hits = sum(1 for i in range(40) if good.validate(f"i{i}", True).accepted)
        bad_hits = sum(1 for i in range(40) if bad.validate(f"i{i}", True).accepted)
        assert good_hits > bad_hits

    def test_validation_deterministic(self):
        crowd = CrowdValidator(n_workers=5, worker_accuracy=0.7, seed=2)
        assert crowd.validate("k", True) == crowd.validate("k", True)

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            CrowdValidator(n_workers=0)
