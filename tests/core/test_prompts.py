"""Prompt optimization tests: templates, store, selection, budget."""

import pytest

from repro.core.prompts import (
    BanditPromptSelector,
    PromptStore,
    column_type_prompt,
    entity_match_prompt,
    greedy_budget_selection,
    mmr_select,
    nl2sql_prompt,
    qa_prompt,
    similarity_select,
)
from repro.core.prompts.store import PromptRecord
from repro.llm.tokenizer import count_tokens


class TestTemplates:
    def test_qa_prompt_contains_question(self):
        prompt = qa_prompt("Who directed X?")
        assert "Question: Who directed X?" in prompt

    def test_qa_prompt_with_examples_and_context(self):
        prompt = qa_prompt("Q?", examples=[("A?", "a")], context=["passage one"])
        assert "Example 1" in prompt
        assert "Context: passage one" in prompt

    def test_nl2sql_prompt_structure(self):
        prompt = nl2sql_prompt("Q?", "CREATE TABLE t (a INTEGER);", [("EQ?", "SELECT 1")])
        assert prompt.index("CREATE TABLE") < prompt.index("Example 1") < prompt.index("Question: Q?")

    def test_entity_match_prompt_is_paper_phrasing(self):
        prompt = entity_match_prompt("a", "b")
        assert "same real-world entity" in prompt

    def test_column_type_prompt_is_paper_phrasing(self):
        prompt = column_type_prompt(["country"], [(["USA"], "country")], ["France"])
        assert "this column type is __" in prompt
        assert "(1) USA, this column type is country." in prompt


class TestPromptStore:
    def test_add_and_search(self):
        store = PromptStore()
        store.add("translate the question into SQL", task="nl2sql")
        store.add("answer the trivia question", task="qa")
        hits = store.search_similar("convert question to SQL", k=1)
        assert hits[0].task == "nl2sql"

    def test_add_idempotent(self):
        store = PromptStore()
        a = store.add("same text", task="t")
        b = store.add("same text", task="t")
        assert a.prompt_id == b.prompt_id
        assert len(store) == 1

    def test_task_filter(self):
        store = PromptStore()
        store.add("alpha beta", task="x")
        store.add("alpha beta", task="y")
        hits = store.search_similar("alpha beta", k=5, task="y")
        assert all(h.task == "y" for h in hits)

    def test_outcome_feedback(self):
        store = PromptStore()
        record = store.add("p", task="t")
        store.record_outcome(record.prompt_id, True)
        store.record_outcome(record.prompt_id, False)
        assert record.trials == 2
        assert record.success_rate == pytest.approx(2 / 4)

    def test_performance_aware_beats_similarity(self):
        store = PromptStore()
        # Near-duplicate of the query but historically failing...
        bad = store.add("translate question into SQL for stadiums", task="t")
        # ...slightly less similar but reliably succeeding.
        good = store.add("convert the NL question into a SQL query", task="t")
        for _i in range(8):
            store.record_outcome(bad.prompt_id, False)
            store.record_outcome(good.prompt_id, True)
        query = "translate question into SQL for stadium concerts"
        by_similarity = store.search_similar(query, k=1)[0]
        by_performance = store.search_performance_aware(query, k=1, performance_weight=0.7)[0]
        assert by_similarity.prompt_id == bad.prompt_id
        assert by_performance.prompt_id == good.prompt_id

    def test_remove(self):
        store = PromptStore()
        record = store.add("p", task="t")
        store.remove(record.prompt_id)
        assert len(store) == 0


class TestSelectors:
    def test_similarity_select_ranks_relevant_first(self):
        pool = ["stadium concerts in 2014", "differential privacy", "stadium meetings 2015"]
        picked = similarity_select("concerts at stadiums", pool, k=2, text_of=lambda s: s)
        assert "differential privacy" not in picked

    def test_similarity_select_empty(self):
        assert similarity_select("q", [], k=3, text_of=lambda s: s) == []

    def test_mmr_prefers_diversity(self):
        pool = [
            "stadium concerts 2014",
            "stadium concerts 2014!",  # near-duplicate
            "stadium sports meetings 2015",
        ]
        picked = mmr_select("stadium events", pool, k=2, text_of=lambda s: s, lambda_relevance=0.5)
        assert "stadium sports meetings 2015" in picked

    def test_mmr_k_bounds(self):
        pool = ["a", "b"]
        assert len(mmr_select("q", pool, k=10, text_of=lambda s: s)) == 2


class TestBudget:
    def _record(self, text, successes=0, failures=0, pid="p"):
        record = PromptRecord(prompt_id=pid, text=text, task="t")
        record.successes = successes
        record.failures = failures
        return record

    def test_greedy_respects_budget(self):
        records = [self._record("word " * 50, 5, 0, pid=f"p{i}") for i in range(10)]
        kept = greedy_budget_selection(records, token_budget=120)
        assert sum(count_tokens(r.text) for r in kept) <= 120

    def test_greedy_prefers_value_density(self):
        good_small = self._record("short prompt", successes=9, failures=1, pid="a")
        bad_big = self._record("very long prompt " * 30, successes=1, failures=9, pid="b")
        kept = greedy_budget_selection([bad_big, good_small], token_budget=20)
        assert kept == [good_small]

    def test_greedy_zero_budget(self):
        assert greedy_budget_selection([self._record("x")], token_budget=0) == []

    def test_bandit_admission_and_eviction(self):
        selector = BanditPromptSelector(token_budget=5, seed=0)
        weak = self._record("aaa bbb ccc", successes=0, failures=10, pid="weak")
        strong = self._record("ddd eee fff", successes=10, failures=0, pid="strong")
        assert selector.offer(weak)
        # Budget full; strong newcomer evicts the weak arm.
        assert selector.offer(strong)
        stored = {r.prompt_id for r in selector.stored()}
        assert stored == {"strong"}

    def test_bandit_rejects_oversized(self):
        selector = BanditPromptSelector(token_budget=3, seed=0)
        assert not selector.offer(self._record("way too many tokens for this tiny budget"))

    def test_bandit_learns_from_feedback(self):
        selector = BanditPromptSelector(token_budget=100, epsilon=0.0, seed=1)
        a = self._record("prompt alpha", pid="a")
        b = self._record("prompt beta", pid="b")
        selector.offer(a)
        selector.offer(b)
        for _i in range(10):
            selector.feedback("a", 1.0)
            selector.feedback("b", 0.0)
        assert selector.select().prompt_id == "a"

    def test_bandit_select_empty(self):
        assert BanditPromptSelector(token_budget=5).select() is None

    def test_utilization(self):
        selector = BanditPromptSelector(token_budget=100)
        selector.offer(self._record("ten tokens of text here maybe", pid="a"))
        assert 0 < selector.utilization() <= 1.0
