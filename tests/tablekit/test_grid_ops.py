"""Grid, operator and synthesis tests for tablekit."""

import pytest

from repro.errors import TransformError
from repro.tablekit import (
    DeleteEmptyColumns,
    DeleteEmptyRows,
    FillDown,
    Grid,
    PromoteHeader,
    Transpose,
    Unpivot,
    apply_program,
    parse_program,
    relational_score,
    synthesize_program,
)
from repro.tablekit.grid import cell_f1
from repro.tablekit.ops import Pivot
from repro.tablekit.synthesis import program_to_text


class TestGrid:
    def test_ragged_rows_padded(self):
        grid = Grid([[1, 2, 3], [4]])
        assert grid.n_cols == 3
        assert grid.cells[1] == [4, None, None]

    def test_header_width_check(self):
        with pytest.raises(ValueError):
            Grid([[1, 2]], header=["only_one"])

    def test_render_roundtrip(self):
        grid = Grid([["a", 1], ["b", 2]], header=["name", "qty"])
        back = Grid.from_render(grid.render(), has_header=True)
        assert back.header == ["name", "qty"]
        assert back.cells == [["a", "1"], ["b", "2"]]

    def test_to_records(self):
        grid = Grid([["a", 1]], header=["name", "qty"])
        assert grid.to_records() == [{"name": "a", "qty": 1}]

    def test_to_records_requires_header(self):
        with pytest.raises(ValueError):
            Grid([[1]]).to_records()

    def test_copy_is_deep(self):
        grid = Grid([[1]], header=["a"])
        clone = grid.copy()
        clone.cells[0][0] = 99
        assert grid.cells[0][0] == 1

    def test_equality(self):
        assert Grid([[1]], header=["a"]) == Grid([[1]], header=["a"])
        assert Grid([[1]]) != Grid([[2]])


class TestOperators:
    def test_transpose(self):
        grid = Grid([[1, 2], [3, 4]])
        assert Transpose().apply(grid).cells == [[1, 3], [2, 4]]

    def test_transpose_includes_header(self):
        grid = Grid([[1, 2]], header=["a", "b"])
        out = Transpose().apply(grid)
        assert out.header is None
        assert out.cells == [["a", 1], ["b", 2]]

    def test_promote_header(self):
        grid = Grid([["name", "qty"], ["a", 1]])
        out = PromoteHeader().apply(grid)
        assert out.header == ["name", "qty"]
        assert out.cells == [["a", 1]]

    def test_promote_header_rejects_empty_cells(self):
        with pytest.raises(TransformError):
            PromoteHeader().apply(Grid([["name", None], ["a", 1]]))

    def test_promote_header_twice_rejected(self):
        grid = Grid([["a", 1]], header=["x", "y"])
        with pytest.raises(TransformError):
            PromoteHeader().apply(grid)

    def test_delete_empty_rows(self):
        grid = Grid([[1, 2], [None, None], [3, 4]])
        assert DeleteEmptyRows().apply(grid).n_rows == 2

    def test_delete_empty_cols(self):
        grid = Grid([[1, None, 2], [3, None, 4]], header=["a", "", "c"])
        out = DeleteEmptyColumns().apply(grid)
        assert out.header == ["a", "c"]
        assert out.cells == [[1, 2], [3, 4]]

    def test_fill_down(self):
        grid = Grid([["x", 1], [None, 2], [None, 3], ["y", 4]])
        out = FillDown().apply(grid)
        assert [r[0] for r in out.cells] == ["x", "x", "x", "y"]

    def test_unpivot(self):
        grid = Grid([["north", 10, 20], ["south", 5, None]], header=["region", "Q1", "Q2"])
        out = Unpivot(1).apply(grid)
        assert out.header == ["region", "variable", "value"]
        assert ["north", "Q1", 10] in out.cells
        assert len(out.cells) == 3  # None value skipped

    def test_unpivot_requires_header(self):
        with pytest.raises(TransformError):
            Unpivot(1).apply(Grid([[1, 2]]))

    def test_pivot_inverts_unpivot(self):
        wide = Grid([["north", 10, 20], ["south", 5, 7]], header=["region", "Q1", "Q2"])
        long = Unpivot(1).apply(wide)
        back = Pivot().apply(long)
        assert back == wide

    def test_parse_program(self):
        program = parse_program("promote_header; unpivot(2)")
        assert [type(op).__name__ for op in program] == ["PromoteHeader", "Unpivot"]
        assert program[1].n_id == 2

    def test_parse_program_unknown(self):
        with pytest.raises(TransformError):
            parse_program("frobnicate")

    def test_program_text_roundtrip(self):
        program = [PromoteHeader(), Unpivot(2)]
        assert parse_program(program_to_text(program)) == program

    def test_apply_program(self):
        grid = Grid([["name", "qty"], ["a", 1]])
        out = apply_program(grid, parse_program("promote_header"))
        assert out.header == ["name", "qty"]


class TestScoring:
    def test_empty_grid_scores_zero(self):
        assert relational_score(Grid([])) == 0.0

    def test_relational_table_scores_high(self):
        grid = Grid([["a", 1], ["b", 2], ["c", 3]], header=["name", "qty"])
        assert relational_score(grid) > 0.9

    def test_headerless_scores_lower(self):
        with_header = Grid([["a", 1], ["b", 2]], header=["n", "q"])
        without = Grid([["a", 1], ["b", 2]])
        assert relational_score(with_header) > relational_score(without)

    def test_cell_f1_identical(self):
        grid = Grid([["a", 1]], header=["n", "q"])
        assert cell_f1(grid, grid) == 1.0

    def test_cell_f1_partial(self):
        gold = Grid([["a", 1], ["b", 2]], header=["n", "q"])
        pred = Grid([["a", 1]], header=["n", "q"])
        assert 0 < cell_f1(pred, gold) < 1

    def test_cell_f1_order_insensitive(self):
        gold = Grid([["a", 1], ["b", 2]], header=["n", "q"])
        pred = Grid([["b", 2], ["a", 1]], header=["n", "q"])
        assert cell_f1(pred, gold) == 1.0


class TestSynthesis:
    def test_promote_header_discovered(self):
        grid = Grid([["name", "qty"], ["a", 1], ["b", 2]])
        program, result, score = synthesize_program(grid)
        assert any(type(op).__name__ == "PromoteHeader" for op in program)
        assert result.header == ["name", "qty"]

    def test_cleanup_sequence_discovered(self):
        grid = Grid(
            [["name", "qty", None], ["a", 1, None], [None, None, None], ["b", 2, None]]
        )
        _program, result, _score = synthesize_program(grid)
        assert result.header == ["name", "qty"]
        assert result.n_rows == 2
        assert result.n_cols == 2

    def test_target_mode_exact_match(self):
        source = Grid([["name", "qty"], ["a", 1]])
        target = Grid([["a", 1]], header=["name", "qty"])
        program, result, score = synthesize_program(source, target=target)
        assert score == 1.0
        assert result == target

    def test_transposed_grid_recovered(self):
        # Attribute-per-row layout: transpose then promote header.
        grid = Grid([["name", "a", "b", "c"], ["qty", 1, 2, 3]])
        _program, result, score = synthesize_program(grid)
        assert score > 0.85
        assert result.n_rows >= result.n_cols

    def test_already_relational_needs_no_ops(self):
        grid = Grid([["a", 1], ["b", 2], ["c", 3]], header=["name", "qty"])
        program, _result, _score = synthesize_program(grid)
        assert program == []
