"""Property-based tests for tablekit operators (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tablekit import Grid, Transpose, Unpivot
from repro.tablekit.ops import Pivot

cell = st.one_of(
    st.integers(min_value=-999, max_value=999),
    st.text(alphabet="abcxyz", min_size=1, max_size=5),
)


@st.composite
def grids(draw, min_rows=1, max_rows=6, min_cols=1, max_cols=5):
    n_rows = draw(st.integers(min_rows, max_rows))
    n_cols = draw(st.integers(min_cols, max_cols))
    cells = [[draw(cell) for _c in range(n_cols)] for _r in range(n_rows)]
    return Grid(cells)


@st.composite
def wide_grids(draw):
    """Headered grids with unique ids and no empty cells (unpivot-safe)."""
    n_rows = draw(st.integers(1, 5))
    n_vars = draw(st.integers(2, 4))
    header = ["id"] + [f"v{j}" for j in range(n_vars)]
    cells = []
    for i in range(n_rows):
        cells.append([f"row{i}"] + [draw(st.integers(0, 99)) for _j in range(n_vars)])
    return Grid(cells, header=header)


@settings(max_examples=40, deadline=None)
@given(grid=grids())
def test_transpose_is_involution(grid):
    assert Transpose().apply(Transpose().apply(grid)) == grid


@settings(max_examples=40, deadline=None)
@given(grid=grids())
def test_transpose_swaps_shape(grid):
    out = Transpose().apply(grid)
    assert (out.n_rows, out.n_cols) == (grid.n_cols, grid.n_rows)


@settings(max_examples=40, deadline=None)
@given(grid=wide_grids())
def test_unpivot_pivot_roundtrip(grid):
    assert Pivot().apply(Unpivot(1).apply(grid)) == grid


@settings(max_examples=40, deadline=None)
@given(grid=wide_grids())
def test_unpivot_row_count(grid):
    long = Unpivot(1).apply(grid)
    assert long.n_rows == grid.n_rows * (grid.n_cols - 1)
    assert long.header == ["id", "variable", "value"]


@settings(max_examples=40, deadline=None)
@given(grid=grids())
def test_render_roundtrip_headerless(grid):
    # Rendering stringifies cells; round-trip preserves the string view.
    rendered = grid.render()
    back = Grid.from_render(rendered, has_header=False)
    assert back.render() == rendered
