"""Transaction (BEGIN/COMMIT/ROLLBACK) semantics."""

import pytest

from repro.errors import SQLTransactionError
from repro.sqldb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE accounts (owner TEXT PRIMARY KEY, balance REAL);"
        "INSERT INTO accounts VALUES ('alice', 100.0), ('bob', 50.0)"
    )
    return database


class TestTransactions:
    def test_commit_persists(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = balance - 10 WHERE owner = 'alice'")
        db.execute("COMMIT")
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'alice'") == 90.0

    def test_rollback_restores(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = 0")
        db.execute("DELETE FROM accounts WHERE owner = 'bob'")
        db.execute("ROLLBACK")
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'alice'") == 100.0
        assert db.query_scalar("SELECT COUNT(*) FROM accounts") == 2

    def test_rollback_restores_ddl(self, db):
        db.execute("BEGIN")
        db.execute("CREATE TABLE scratch (x INTEGER)")
        db.execute("ROLLBACK")
        assert not db.has_table("scratch")

    def test_in_transaction_flag(self, db):
        assert not db.in_transaction
        db.execute("BEGIN")
        assert db.in_transaction
        db.execute("COMMIT")
        assert not db.in_transaction

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(SQLTransactionError):
            db.execute("BEGIN")

    def test_commit_without_begin(self, db):
        with pytest.raises(SQLTransactionError):
            db.execute("COMMIT")

    def test_rollback_without_begin(self, db):
        with pytest.raises(SQLTransactionError):
            db.execute("ROLLBACK")

    def test_script_transaction(self, db):
        db.execute(
            "BEGIN;"
            "UPDATE accounts SET balance = balance - 25 WHERE owner = 'alice';"
            "UPDATE accounts SET balance = balance + 25 WHERE owner = 'bob';"
            "COMMIT;"
        )
        assert db.query_scalar("SELECT SUM(balance) FROM accounts") == 150.0
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'bob'") == 75.0

    def test_reads_inside_transaction_see_writes(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = 1.0 WHERE owner = 'alice'")
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'alice'") == 1.0
        db.execute("ROLLBACK")

    def test_begin_transaction_keyword(self, db):
        db.execute("BEGIN TRANSACTION")
        db.execute("COMMIT TRANSACTION")
