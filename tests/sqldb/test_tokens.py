"""Lexer tests."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqldb.tokens import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        for variant in ("select", "SELECT", "SeLeCt"):
            token = tokenize(variant)[0]
            assert token.type is TokenType.KEYWORD
            assert token.text == "SELECT"

    def test_identifier(self):
        token = tokenize("my_table")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "my_table"

    def test_identifier_keeps_case(self):
        assert tokenize("MyTable")[0].value == "MyTable"

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.value == 3.25
        assert isinstance(token.value, float)

    def test_scientific_notation(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5E-2")[0].value == 0.025

    def test_leading_dot_number(self):
        assert tokenize(".5")[0].value == 0.5

    def test_string_literal(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.IDENT
        assert token.value == "Weird Name"

    def test_eof_is_last(self):
        assert tokenize("SELECT 1")[-1].type is TokenType.EOF


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "||"])
    def test_operator(self, op):
        token = tokenize(op)[0]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_multichar_operator_not_split(self):
        tokens = tokenize("a <= b")
        assert tokens[1].value == "<="

    def test_punctuation(self):
        assert [t.value for t in tokenize("(,);.")[:-1]] == ["(", ",", ")", ";", "."]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- comment text\n+ 2")
        values = [t.value for t in tokens if t.type is not TokenType.EOF]
        assert values == ["SELECT", 1, "+", 2]

    def test_comment_at_end_of_input(self):
        tokens = tokenize("SELECT 1 -- trailing")
        assert tokens[-1].type is TokenType.EOF

    def test_newlines_and_tabs(self):
        assert texts("SELECT\n\t1") == ["SELECT", "1"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT #")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")

    def test_positions_point_into_source(self):
        sql = "SELECT name FROM t"
        for token in tokenize(sql)[:-1]:
            assert sql[token.pos:].startswith(token.text[0] if token.type is not TokenType.STRING else "'")
