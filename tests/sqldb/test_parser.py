"""Parser tests: statement shapes, round-tripping, and error reporting."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_expression, parse_sql, parse_statement


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT name FROM person")
        assert isinstance(stmt, ast.Select)
        assert isinstance(stmt.items[0].expr, ast.ColumnRef)
        assert isinstance(stmt.source, ast.TableName)
        assert stmt.source.name == "person"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[0].expr.table == "t"

    def test_column_alias_with_as(self):
        stmt = parse_statement("SELECT name AS n FROM t")
        assert stmt.items[0].alias == "n"

    def test_column_alias_without_as(self):
        stmt = parse_statement("SELECT name n FROM t")
        assert stmt.items[0].alias == "n"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_where(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > 1 AND b = 'x'")
        assert isinstance(stmt.where, ast.Binary)
        assert stmt.where.op == "AND"

    def test_group_by_having(self):
        stmt = parse_statement("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t LIMIT 'x'")

    def test_join_with_on(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.id = b.id")
        assert isinstance(stmt.source, ast.Join)
        assert stmt.source.kind == "INNER"
        assert stmt.source.on is not None

    def test_left_join(self):
        stmt = parse_statement("SELECT * FROM a LEFT JOIN b ON a.id = b.id")
        assert stmt.source.kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_statement("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id")
        assert stmt.source.kind == "LEFT"

    def test_cross_join_comma(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert stmt.source.kind == "CROSS"

    def test_multi_join_left_deep(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.i = b.i JOIN c ON b.j = c.j")
        outer = stmt.source
        assert isinstance(outer, ast.Join)
        assert isinstance(outer.left, ast.Join)

    def test_table_alias(self):
        stmt = parse_statement("SELECT s.name FROM stadium AS s")
        assert stmt.source.alias == "s"

    def test_table_alias_without_as(self):
        stmt = parse_statement("SELECT s.name FROM stadium s")
        assert stmt.source.alias == "s"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT * FROM (SELECT 1)")

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT a FROM t) AS sub")
        assert isinstance(stmt.source, ast.SubquerySource)
        assert stmt.source.alias == "sub"

    def test_union(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT b FROM u")
        assert stmt.set_ops[0].op == "UNION"
        assert not stmt.set_ops[0].all

    def test_union_all(self):
        stmt = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.set_ops[0].all

    def test_intersect_except_left_associative(self):
        stmt = parse_statement("SELECT a FROM t INTERSECT SELECT a FROM u EXCEPT SELECT a FROM v")
        assert [s.op for s in stmt.set_ops] == ["INTERSECT", "EXCEPT"]

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 2")
        assert stmt.source is None


class TestExpressionParsing:
    def test_precedence_or_and(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_precedence_arith(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.Unary)

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in_list(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_in_subquery(self):
        expr = parse_expression("a IN (SELECT b FROM t)")
        assert isinstance(expr, ast.InSelect)

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.default is not None

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CASE END")

    def test_function_call(self):
        expr = parse_expression("UPPER(name)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "UPPER"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT a)").distinct

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT MAX(a) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_concat(self):
        expr = parse_expression("a || b")
        assert expr.op == "||"

    def test_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False

    def test_cast(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert expr.name == "CAST_INTEGER"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra extra")


class TestDMLAndDDL:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a IS NULL")
        assert isinstance(stmt, ast.Delete)

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score REAL)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null

    def test_create_if_not_exists(self):
        assert parse_statement("CREATE TABLE IF NOT EXISTS t (a INTEGER)").if_not_exists

    def test_drop(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.if_exists

    def test_transaction_statements(self):
        statements = parse_sql("BEGIN; COMMIT; ROLLBACK")
        assert [type(s) for s in statements] == [ast.Begin, ast.Commit, ast.Rollback]

    def test_multiple_statements(self):
        assert len(parse_sql("SELECT 1; SELECT 2; SELECT 3")) == 3

    def test_parse_statement_rejects_multiple(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1; SELECT 2")


class TestRoundTrip:
    """str(ast) must re-parse to an equivalent tree (generation relies on it)."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT name FROM person WHERE age > 30",
            "SELECT DISTINCT s.name FROM stadium AS s JOIN concert AS c ON s.id = c.sid WHERE c.year = 2014",
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 3",
            "SELECT a FROM t WHERE a IN (SELECT b FROM u) UNION SELECT c FROM v",
            "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
            "SELECT name FROM t WHERE name LIKE 'A%' AND age BETWEEN 10 AND 20",
            "INSERT INTO t (a, b) VALUES (1, 'two')",
            "UPDATE t SET a = a + 1 WHERE b IS NOT NULL",
            "DELETE FROM t WHERE a NOT IN (1, 2)",
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL)",
        ],
    )
    def test_round_trip(self, sql):
        first = parse_statement(sql)
        second = parse_statement(str(first))
        assert str(first) == str(second)
