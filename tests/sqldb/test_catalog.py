"""Catalog, schema and table integrity tests."""

import pytest

from repro.errors import SQLCatalogError, SQLIntegrityError
from repro.sqldb.catalog import Catalog, Column, Table, TableSchema
from repro.sqldb.types import SQLType


def person_schema():
    return TableSchema(
        name="person",
        columns=(
            Column("id", SQLType.INTEGER, primary_key=True),
            Column("name", SQLType.TEXT, not_null=True),
            Column("age", SQLType.INTEGER),
        ),
    )


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SQLCatalogError):
            TableSchema(name="t", columns=(Column("a", SQLType.TEXT), Column("A", SQLType.TEXT)))

    def test_index_of_case_insensitive(self):
        schema = person_schema()
        assert schema.index_of("NAME") == 1

    def test_index_of_unknown(self):
        with pytest.raises(SQLCatalogError):
            person_schema().index_of("missing")

    def test_primary_key_index(self):
        assert person_schema().primary_key_index == 0


class TestTable:
    def test_insert_and_len(self):
        table = Table(person_schema())
        table.insert([1, "ada", 30])
        assert len(table) == 1

    def test_insert_coerces(self):
        table = Table(person_schema())
        table.insert(["2", "bob", "40"])
        assert table.rows[0] == (2, "bob", 40)

    def test_wrong_arity(self):
        table = Table(person_schema())
        with pytest.raises(SQLIntegrityError):
            table.insert([1, "ada"])

    def test_not_null_enforced(self):
        table = Table(person_schema())
        with pytest.raises(SQLIntegrityError):
            table.insert([1, None, 30])

    def test_pk_uniqueness(self):
        table = Table(person_schema())
        table.insert([1, "ada", 30])
        with pytest.raises(SQLIntegrityError):
            table.insert([1, "bob", 31])

    def test_pk_not_null(self):
        table = Table(person_schema())
        with pytest.raises(SQLIntegrityError):
            table.insert([None, "ada", 30])

    def test_replace_rows_rechecks_pk(self):
        table = Table(person_schema())
        table.insert([1, "ada", 30])
        with pytest.raises(SQLIntegrityError):
            table.replace_rows([(1, "a", 1), (1, "b", 2)])

    def test_snapshot_is_independent(self):
        table = Table(person_schema())
        table.insert([1, "ada", 30])
        snap = table.snapshot()
        table.insert([2, "bob", 29])
        assert len(snap) == 1
        assert len(table) == 2

    def test_statistics(self):
        table = Table(person_schema())
        table.insert([1, "ada", 30])
        table.insert([2, "bob", None])
        stats = table.statistics()
        assert stats["age"]["nulls"] == 1
        assert stats["age"]["min"] == 30
        assert stats["name"]["distinct"] == 2

    def test_column_values(self):
        table = Table(person_schema(), rows=[[1, "a", 10], [2, "b", 20]])
        assert table.column_values("age") == [10, 20]


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        catalog.create(Table(person_schema()))
        assert catalog.has("PERSON")
        assert catalog.get("Person").schema.name == "person"
        catalog.drop("person")
        assert not catalog.has("person")

    def test_duplicate_create(self):
        catalog = Catalog()
        catalog.create(Table(person_schema()))
        with pytest.raises(SQLCatalogError):
            catalog.create(Table(person_schema()))

    def test_if_not_exists(self):
        catalog = Catalog()
        catalog.create(Table(person_schema()))
        catalog.create(Table(person_schema()), if_not_exists=True)  # no raise

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(SQLCatalogError):
            catalog.drop("ghost")
        catalog.drop("ghost", if_exists=True)  # no raise

    def test_snapshot_isolated(self):
        catalog = Catalog()
        catalog.create(Table(person_schema()))
        snap = catalog.snapshot()
        catalog.get("person").insert([1, "ada", 30])
        assert len(snap.get("person")) == 0
