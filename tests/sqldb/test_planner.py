"""Cost model, features and EXPLAIN tests."""

import pytest

from repro.sqldb import Database, estimate_cost, explain, query_features


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE small (id INTEGER PRIMARY KEY, v INTEGER)")
    database.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, small_id INTEGER, v INTEGER)")
    for i in range(10):
        database.execute(f"INSERT INTO small VALUES ({i}, {i * 10})")
    for i in range(200):
        database.execute(f"INSERT INTO big VALUES ({i}, {i % 10}, {i})")
    return database


class TestCostModel:
    def test_bigger_table_costs_more(self, db):
        small = estimate_cost("SELECT * FROM small", db.catalog).total_ms
        big = estimate_cost("SELECT * FROM big", db.catalog).total_ms
        assert big > small

    def test_join_costs_more_than_scan(self, db):
        scan = estimate_cost("SELECT * FROM big", db.catalog).total_ms
        join = estimate_cost(
            "SELECT * FROM big b JOIN small s ON b.small_id = s.id", db.catalog
        ).total_ms
        assert join > scan

    def test_predicates_reduce_downstream_cost(self, db):
        plain = estimate_cost("SELECT * FROM big ORDER BY v", db.catalog)
        filtered = estimate_cost("SELECT * FROM big WHERE v > 100 ORDER BY v", db.catalog)
        assert filtered.sort_rows < plain.sort_rows

    def test_subquery_cost_added(self, db):
        flat = estimate_cost("SELECT * FROM big", db.catalog)
        nested = estimate_cost(
            "SELECT * FROM big WHERE small_id IN (SELECT id FROM small)", db.catalog
        )
        assert nested.subquery_cost > 0
        assert nested.total_ms > flat.total_ms

    def test_order_by_adds_sort_cost(self, db):
        plain = estimate_cost("SELECT * FROM big", db.catalog)
        ordered = estimate_cost("SELECT * FROM big ORDER BY v", db.catalog)
        assert ordered.sort_rows > 0 and plain.sort_rows == 0

    def test_cost_rejects_non_select(self, db):
        with pytest.raises(TypeError):
            estimate_cost("DELETE FROM big", db.catalog)

    def test_cost_is_deterministic(self, db):
        sql = "SELECT v FROM big WHERE v > 5 ORDER BY v"
        assert estimate_cost(sql, db.catalog) == estimate_cost(sql, db.catalog)


class TestFeatures:
    def test_feature_extraction(self, db):
        features = query_features(
            "SELECT s.v, COUNT(*) FROM big b JOIN small s ON b.small_id = s.id "
            "WHERE b.v > 10 GROUP BY s.v ORDER BY s.v LIMIT 5",
            db.catalog,
        )
        assert features["num_tables"] == 2
        assert features["num_joins"] == 1
        assert features["num_predicates"] >= 1
        assert features["has_group_by"] == 1.0
        assert features["has_order_by"] == 1.0
        assert features["has_limit"] == 1.0
        assert features["total_input_rows"] == 210

    def test_subquery_count(self, db):
        features = query_features("SELECT 1 FROM big WHERE id IN (SELECT id FROM small)")
        assert features["num_subqueries"] == 1

    def test_aggregate_count(self, db):
        features = query_features("SELECT COUNT(*), MAX(v) FROM big")
        assert features["num_aggregates"] == 2


class TestExplain:
    def test_explain_mentions_scan_and_filter(self, db):
        text = explain("SELECT v FROM big WHERE v > 10 ORDER BY v LIMIT 3", db.catalog)
        assert "SCAN big (200 rows)" in text
        assert "FILTER" in text
        assert "ORDER BY" in text
        assert "LIMIT 3" in text

    def test_explain_join_tree(self, db):
        text = explain("SELECT * FROM big b JOIN small s ON b.small_id = s.id", db.catalog)
        assert "INNER JOIN" in text
        assert "SCAN small" in text
