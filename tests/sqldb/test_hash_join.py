"""Hash-join tests: plan detection, semantics, and nested-loop equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database
from repro.sqldb.types import SQLType


def build(pairs_a, pairs_b):
    db = Database()
    db.create_table("a", [("id", SQLType.INTEGER), ("v", SQLType.INTEGER)], primary_key="id")
    db.create_table("b", [("id", SQLType.INTEGER), ("a_id", SQLType.INTEGER)], primary_key="id")
    db.insert_rows("a", [[i, v] for i, v in enumerate(pairs_a)])
    db.insert_rows("b", [[i, a_id] for i, a_id in enumerate(pairs_b)])
    return db


class TestSemantics:
    def test_equi_join_matches_cross_filter(self):
        db = build([10, 20, 30], [0, 0, 2, 5])
        on_join = db.query("SELECT a.id, b.id FROM a JOIN b ON a.id = b.a_id ORDER BY 1, 2")
        cross = db.query("SELECT a.id, b.id FROM a, b WHERE a.id = b.a_id ORDER BY 1, 2")
        assert on_join == cross

    def test_reversed_key_order(self):
        db = build([1, 2], [0, 1, 1])
        assert db.query_scalar("SELECT COUNT(*) FROM a JOIN b ON b.a_id = a.id") == 3

    def test_null_keys_never_match(self):
        db = Database()
        db.execute(
            "CREATE TABLE a (id INTEGER PRIMARY KEY, k INTEGER);"
            "CREATE TABLE b (id INTEGER PRIMARY KEY, k INTEGER);"
            "INSERT INTO a VALUES (1, NULL), (2, 7);"
            "INSERT INTO b VALUES (1, NULL), (2, 7);"
        )
        rows = db.query("SELECT a.id, b.id FROM a JOIN b ON a.k = b.k")
        assert rows == [(2, 2)]

    def test_residual_condition_applies(self):
        db = build([10, 20, 30], [0, 1, 2])
        rows = db.query("SELECT a.id FROM a JOIN b ON a.id = b.a_id AND a.v > 15 ORDER BY 1")
        assert [r[0] for r in rows] == [1, 2]

    def test_left_join_pads_when_residual_rejects(self):
        db = build([10, 20], [0, 1])
        rows = db.query(
            "SELECT a.id, b.id FROM a LEFT JOIN b ON a.id = b.a_id AND a.v > 15 ORDER BY 1"
        )
        assert rows == [(0, None), (1, 1)]

    def test_expression_keys(self):
        db = build([10, 20, 30], [0, 2, 4])
        rows = db.query("SELECT a.id FROM a JOIN b ON a.id * 2 = b.a_id ORDER BY 1")
        assert [r[0] for r in rows] == [0, 1, 2]

    def test_numeric_type_unification(self):
        db = Database()
        db.execute(
            "CREATE TABLE a (id INTEGER PRIMARY KEY, k REAL);"
            "CREATE TABLE b (id INTEGER PRIMARY KEY, k INTEGER);"
            "INSERT INTO a VALUES (1, 2.0);"
            "INSERT INTO b VALUES (1, 2);"
        )
        assert db.query_scalar("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k") == 1

    def test_non_equi_join_still_works(self):
        db = build([10, 20, 30], [0, 1])
        rows = db.query("SELECT COUNT(*) FROM a JOIN b ON a.id > b.a_id")
        assert rows == [(3,)]  # (1,0),(2,0),(2,1)

    def test_ambiguous_unqualified_key_errors(self):
        from repro.errors import SQLCatalogError

        db = Database()
        db.execute(
            "CREATE TABLE a (k INTEGER PRIMARY KEY);"
            "CREATE TABLE b (k INTEGER PRIMARY KEY);"
            "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);"
        )
        with pytest.raises(SQLCatalogError):
            db.query("SELECT 1 FROM a JOIN b ON k = k")


@settings(max_examples=40, deadline=None)
@given(
    values_a=st.lists(st.integers(0, 9), min_size=0, max_size=10),
    keys_b=st.lists(st.integers(0, 12), min_size=0, max_size=10),
)
def test_property_hash_join_equals_cross_filter(values_a, keys_b):
    db = build(values_a, keys_b)
    on_join = sorted(db.query("SELECT a.id, b.id FROM a JOIN b ON a.id = b.a_id"))
    cross = sorted(db.query("SELECT a.id, b.id FROM a, b WHERE a.id = b.a_id"))
    assert on_join == cross


@settings(max_examples=40, deadline=None)
@given(
    values_a=st.lists(st.integers(0, 9), min_size=1, max_size=8),
    keys_b=st.lists(st.integers(0, 10), min_size=0, max_size=8),
)
def test_property_left_join_covers_all_left_rows(values_a, keys_b):
    db = build(values_a, keys_b)
    rows = db.query("SELECT a.id FROM a LEFT JOIN b ON a.id = b.a_id")
    left_ids = {r[0] for r in rows}
    assert left_ids == set(range(len(values_a)))
