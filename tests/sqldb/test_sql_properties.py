"""Property-based tests of the relational engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database

_names = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
_ints = st.integers(min_value=-1_000_000, max_value=1_000_000)


def _db_with_rows(rows):
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, v INTEGER)")
    for i, (name, v) in enumerate(rows):
        db.insert_rows("t", [[i, name, v]])
    return db


rows_strategy = st.lists(st.tuples(_names, _ints), min_size=0, max_size=25)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_count_matches_inserted(rows):
    db = _db_with_rows(rows)
    assert db.query_scalar("SELECT COUNT(*) FROM t") == len(rows)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_order_by_is_sorted(rows):
    db = _db_with_rows(rows)
    values = [r[0] for r in db.query("SELECT v FROM t ORDER BY v")]
    assert values == sorted(values)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, bound=_ints)
def test_where_partition_is_complete(rows, bound):
    """Rows matching P plus rows matching NOT P = all rows (no NULLs here)."""
    db = _db_with_rows(rows)
    matching = len(db.query(f"SELECT 1 FROM t WHERE v > {bound}"))
    complement = len(db.query(f"SELECT 1 FROM t WHERE NOT (v > {bound})"))
    assert matching + complement == len(rows)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_sum_matches_python(rows):
    db = _db_with_rows(rows)
    expected = sum(v for _n, v in rows) if rows else None
    assert db.query_scalar("SELECT SUM(v) FROM t") == expected


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_distinct_no_duplicates(rows):
    db = _db_with_rows(rows)
    values = [r[0] for r in db.query("SELECT DISTINCT name FROM t")]
    assert len(values) == len(set(values))
    assert set(values) == {n for n, _v in rows}


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_union_all_is_concatenation(rows):
    db = _db_with_rows(rows)
    doubled = db.query("SELECT v FROM t UNION ALL SELECT v FROM t")
    assert len(doubled) == 2 * len(rows)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_except_self_is_empty(rows):
    db = _db_with_rows(rows)
    assert db.query("SELECT v FROM t EXCEPT SELECT v FROM t") == []


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, limit=st.integers(min_value=0, max_value=30))
def test_limit_bounds_result(rows, limit):
    db = _db_with_rows(rows)
    result = db.query(f"SELECT id FROM t LIMIT {limit}")
    assert len(result) == min(limit, len(rows))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_group_by_counts_sum_to_total(rows):
    db = _db_with_rows(rows)
    groups = db.query("SELECT name, COUNT(*) FROM t GROUP BY name")
    assert sum(c for _n, c in groups) == len(rows)


@settings(max_examples=30, deadline=None)
@given(rows=rows_strategy, bound=_ints)
def test_update_then_select_consistent(rows, bound):
    db = _db_with_rows(rows)
    db.execute(f"UPDATE t SET v = 0 WHERE v > {bound}")
    assert db.query(f"SELECT 1 FROM t WHERE v > {max(bound, 0)}") == []
