"""SELECT execution semantics."""

import pytest

from repro.errors import SQLCatalogError, SQLError
from repro.sqldb import Database


class TestProjectionAndFilter:
    def test_select_all_rows(self, people_db):
        assert len(people_db.query("SELECT * FROM person")) == 4

    def test_where_filter(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE age > 30")
        assert sorted(r[0] for r in rows) == ["ada", "cyd"]

    def test_where_null_rejects_row(self, people_db):
        # dee has NULL city; NULL = 'london' is unknown, row filtered out.
        rows = people_db.query("SELECT name FROM person WHERE city = 'london' OR city = 'paris'")
        assert sorted(r[0] for r in rows) == ["ada", "bob", "cyd"]

    def test_is_null(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE city IS NULL")
        assert rows == [("dee",)]

    def test_expression_projection(self, people_db):
        rows = people_db.query("SELECT age * 2 FROM person WHERE id = 1")
        assert rows == [(72,)]

    def test_output_column_names(self, people_db):
        result = people_db.execute("SELECT name AS who, age FROM person LIMIT 1")
        assert result.columns == ["who", "age"]

    def test_star_expansion_names(self, people_db):
        result = people_db.execute("SELECT * FROM orders LIMIT 1")
        assert result.columns == ["order_id", "person_id", "amount"]

    def test_select_without_from(self, people_db):
        assert people_db.query("SELECT 1 + 2") == [(3,)]

    def test_like(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE name LIKE 'a%'")
        assert rows == [("ada",)]

    def test_like_underscore(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE name LIKE '_ob'")
        assert rows == [("bob",)]

    def test_between(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE age BETWEEN 29 AND 36 ORDER BY name")
        assert [r[0] for r in rows] == ["ada", "bob", "dee"]

    def test_in_list(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE id IN (1, 3) ORDER BY id")
        assert [r[0] for r in rows] == ["ada", "cyd"]

    def test_not_in_list(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE id NOT IN (1, 2, 3)")
        assert rows == [("dee",)]

    def test_case_when(self, people_db):
        rows = people_db.query(
            "SELECT name, CASE WHEN age >= 40 THEN 'senior' ELSE 'junior' END FROM person WHERE id IN (1,3) ORDER BY id"
        )
        assert rows == [("ada", "junior"), ("cyd", "senior")]

    def test_unknown_column_raises(self, people_db):
        with pytest.raises(SQLCatalogError):
            people_db.query("SELECT ghost FROM person")

    def test_unknown_table_raises(self, people_db):
        with pytest.raises(SQLCatalogError):
            people_db.query("SELECT 1 FROM ghost")

    def test_ambiguous_column_raises(self, people_db):
        with pytest.raises(SQLCatalogError):
            people_db.query("SELECT id FROM person p JOIN person q ON p.id = q.id")


class TestOrderLimitDistinct:
    def test_order_by_asc(self, people_db):
        rows = people_db.query("SELECT name FROM person ORDER BY age, name")
        assert [r[0] for r in rows] == ["bob", "dee", "ada", "cyd"]

    def test_order_by_desc(self, people_db):
        rows = people_db.query("SELECT name FROM person ORDER BY age DESC, name DESC")
        assert [r[0] for r in rows] == ["cyd", "ada", "dee", "bob"]

    def test_order_by_alias(self, people_db):
        rows = people_db.query("SELECT age * -1 AS neg FROM person ORDER BY neg")
        assert [r[0] for r in rows] == [-41, -36, -29, -29]

    def test_order_by_ordinal(self, people_db):
        rows = people_db.query("SELECT name, age FROM person ORDER BY 2 DESC LIMIT 1")
        assert rows[0][0] == "cyd"

    def test_limit(self, people_db):
        assert len(people_db.query("SELECT * FROM person LIMIT 2")) == 2

    def test_offset(self, people_db):
        rows = people_db.query("SELECT id FROM person ORDER BY id LIMIT 2 OFFSET 1")
        assert [r[0] for r in rows] == [2, 3]

    def test_distinct(self, people_db):
        rows = people_db.query("SELECT DISTINCT age FROM person WHERE age = 29")
        assert rows == [(29,)]

    def test_mixed_direction_stable(self, people_db):
        rows = people_db.query("SELECT city, name FROM person WHERE city IS NOT NULL ORDER BY city ASC, name DESC")
        assert rows == [("london", "cyd"), ("london", "ada"), ("paris", "bob")]


class TestJoins:
    def test_inner_join(self, people_db):
        rows = people_db.query(
            "SELECT p.name, o.amount FROM person p JOIN orders o ON p.id = o.person_id ORDER BY o.order_id"
        )
        assert rows[0] == ("ada", 25.0)
        assert len(rows) == 4

    def test_left_join_pads_nulls(self, people_db):
        rows = people_db.query(
            "SELECT p.name, o.amount FROM person p LEFT JOIN orders o ON p.id = o.person_id "
            "WHERE o.amount IS NULL"
        )
        assert rows == [("dee", None)]

    def test_cross_join_count(self, people_db):
        assert len(people_db.query("SELECT * FROM person, orders")) == 16

    def test_join_with_extra_condition(self, people_db):
        rows = people_db.query(
            "SELECT p.name FROM person p JOIN orders o ON p.id = o.person_id AND o.amount > 40"
        )
        assert sorted(r[0] for r in rows) == ["ada", "cyd"]

    def test_three_way_join(self, people_db):
        rows = people_db.query(
            "SELECT p.name FROM person p JOIN orders o ON p.id = o.person_id "
            "JOIN person q ON q.id = o.person_id WHERE q.name = 'ada'"
        )
        assert len(rows) == 2


class TestAggregation:
    def test_count_star(self, people_db):
        assert people_db.query_scalar("SELECT COUNT(*) FROM person") == 4

    def test_count_column_skips_nulls(self, people_db):
        assert people_db.query_scalar("SELECT COUNT(city) FROM person") == 3

    def test_count_distinct(self, people_db):
        assert people_db.query_scalar("SELECT COUNT(DISTINCT city) FROM person") == 2

    def test_sum_avg_min_max(self, people_db):
        row = people_db.query("SELECT SUM(age), AVG(age), MIN(age), MAX(age) FROM person")[0]
        assert row == (135, 33.75, 29, 41)

    def test_aggregate_on_empty_input_is_null(self, people_db):
        row = people_db.query("SELECT SUM(age), MAX(age) FROM person WHERE id > 99")[0]
        assert row == (None, None)

    def test_count_on_empty_input_is_zero(self, people_db):
        assert people_db.query_scalar("SELECT COUNT(*) FROM person WHERE id > 99") == 0

    def test_group_by(self, people_db):
        rows = people_db.query(
            "SELECT city, COUNT(*) FROM person WHERE city IS NOT NULL GROUP BY city ORDER BY city"
        )
        assert rows == [("london", 2), ("paris", 1)]

    def test_group_by_expression(self, people_db):
        rows = people_db.query("SELECT age % 2, COUNT(*) FROM person GROUP BY age % 2 ORDER BY 1")
        assert rows == [(0, 1), (1, 3)]

    def test_having(self, people_db):
        rows = people_db.query(
            "SELECT city, COUNT(*) AS c FROM person GROUP BY city HAVING COUNT(*) > 1"
        )
        assert rows == [("london", 2)]

    def test_order_by_aggregate_alias(self, people_db):
        rows = people_db.query(
            "SELECT person_id, SUM(amount) AS total FROM orders GROUP BY person_id ORDER BY total DESC"
        )
        assert rows[0] == (1, 100.0)

    def test_arithmetic_over_aggregates(self, people_db):
        assert people_db.query_scalar("SELECT MAX(age) - MIN(age) FROM person") == 12

    def test_star_with_group_by_rejected(self, people_db):
        with pytest.raises(SQLError):
            people_db.query("SELECT * FROM person GROUP BY city")


class TestSubqueries:
    def test_in_subquery(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE id IN (SELECT person_id FROM orders WHERE amount > 40)"
        )
        assert sorted(r[0] for r in rows) == ["ada", "cyd"]

    def test_not_in_subquery(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE id NOT IN (SELECT person_id FROM orders)"
        )
        assert rows == [("dee",)]

    def test_scalar_subquery(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE age > (SELECT AVG(age) FROM person)")
        assert sorted(r[0] for r in rows) == ["ada", "cyd"]

    def test_correlated_exists(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person p WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.person_id = p.id AND o.amount > 60)"
        )
        assert rows == [("ada",)]

    def test_correlated_not_exists(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person p WHERE NOT EXISTS "
            "(SELECT 1 FROM orders o WHERE o.person_id = p.id)"
        )
        assert rows == [("dee",)]

    def test_correlated_scalar(self, people_db):
        rows = people_db.query(
            "SELECT name, (SELECT SUM(amount) FROM orders o WHERE o.person_id = p.id) FROM person p ORDER BY id"
        )
        assert rows[0] == ("ada", 100.0)
        assert rows[3] == ("dee", None)

    def test_derived_table(self, people_db):
        rows = people_db.query(
            "SELECT big.name FROM (SELECT name, age FROM person WHERE age > 30) AS big ORDER BY big.age"
        )
        assert [r[0] for r in rows] == ["ada", "cyd"]

    def test_empty_scalar_subquery_is_null(self, people_db):
        assert people_db.query_scalar("SELECT (SELECT age FROM person WHERE id = 99)") is None


class TestSetOperations:
    def test_union_dedup(self, people_db):
        rows = people_db.query(
            "SELECT city FROM person WHERE city = 'london' UNION SELECT city FROM person WHERE city = 'london'"
        )
        assert rows == [("london",)]

    def test_union_all_keeps_duplicates(self, people_db):
        rows = people_db.query(
            "SELECT city FROM person WHERE city = 'london' "
            "UNION ALL SELECT city FROM person WHERE city = 'london'"
        )
        assert len(rows) == 4

    def test_intersect(self, people_db):
        rows = people_db.query(
            "SELECT id FROM person WHERE age >= 29 INTERSECT SELECT id FROM person WHERE city = 'london'"
        )
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_except(self, people_db):
        rows = people_db.query(
            "SELECT id FROM person EXCEPT SELECT person_id FROM orders"
        )
        assert rows == [(4,)]

    def test_union_column_count_mismatch(self, people_db):
        with pytest.raises(SQLError):
            people_db.query("SELECT id, name FROM person UNION SELECT id FROM person")

    def test_order_by_after_union(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE id = 2 UNION SELECT name FROM person WHERE id = 1 ORDER BY name"
        )
        assert [r[0] for r in rows] == ["ada", "bob"]


class TestFunctionsAndExpressions:
    def test_string_functions(self, people_db):
        row = people_db.query(
            "SELECT UPPER(name), LOWER('ABC'), LENGTH(name), SUBSTR(name, 1, 2) FROM person WHERE id = 1"
        )[0]
        assert row == ("ADA", "abc", 3, "ad")

    def test_replace_instr_trim(self, people_db):
        row = people_db.query("SELECT REPLACE('a-b', '-', '+'), INSTR('hello', 'll'), TRIM('  x ')")[0]
        assert row == ("a+b", 3, "x")

    def test_numeric_functions(self, people_db):
        row = people_db.query("SELECT ABS(-3), ROUND(2.567, 1), FLOOR(2.9), CEIL(2.1)")[0]
        assert row == (3, 2.6, 2, 3)

    def test_coalesce(self, people_db):
        rows = people_db.query("SELECT COALESCE(city, 'unknown') FROM person WHERE id = 4")
        assert rows == [("unknown",)]

    def test_nullif(self, people_db):
        assert people_db.query_scalar("SELECT NULLIF(1, 1)") is None
        assert people_db.query_scalar("SELECT NULLIF(1, 2)") == 1

    def test_cast(self, people_db):
        assert people_db.query_scalar("SELECT CAST('12' AS INTEGER)") == 12

    def test_concat_operator(self, people_db):
        assert people_db.query_scalar("SELECT 'a' || 'b' || 1") == "ab1"

    def test_division_by_zero_is_null(self, people_db):
        assert people_db.query_scalar("SELECT 1 / 0") is None
        assert people_db.query_scalar("SELECT 1 % 0") is None

    def test_integer_division_stays_exact(self, people_db):
        assert people_db.query_scalar("SELECT 10 / 2") == 5
        assert people_db.query_scalar("SELECT 7 / 2") == 3.5

    def test_unknown_function(self, people_db):
        with pytest.raises(SQLError):
            people_db.query("SELECT FROBNICATE(1)")

    def test_three_valued_not(self, people_db):
        # NOT NULL is NULL → row rejected.
        assert people_db.query("SELECT 1 FROM person WHERE NOT (city = 'nowhere') AND id = 4") == []
