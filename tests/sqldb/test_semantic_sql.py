"""Semantic operators through every layer: parse → plan → execute.

Covers the grammar (round-trips and error reporting), the planner (cost
model, conjunct reordering, predicate pushdown, the two cardinality-bug
regressions), the runtime (dedupe/batch/cache), and the executor's
bit-equivalence contract against the naive per-row reference evaluator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLSyntaxError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.database import Database
from repro.sqldb.parser import parse_statement
from repro.sqldb.planner import (
    estimate_cost,
    explain,
    optimize_semantic,
    query_features,
    select_contains_semantic,
)
from repro.sqldb.semantic import (
    SemanticRuntime,
    filter_prompt,
    render_value,
    truthy_answer,
)

SCRIPT = """
CREATE TABLE reviews (id INTEGER PRIMARY KEY, product_id INTEGER, title TEXT,
 body TEXT, stars INTEGER);
INSERT INTO reviews VALUES
 (1, 1, 'acme laptop review', 'asked for a refund after the battery died', 1),
 (2, 1, 'great value', 'great battery life and fast shipping', 5),
 (3, 2, 'espresso woes', 'refund requested, the machine arrived damaged', 2),
 (4, 2, 'daily driver', 'love this espresso machine, five stars', 5),
 (5, 1, 'empty', NULL, 3);
CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT, descr TEXT);
INSERT INTO products VALUES
 (1, 'Acme Laptop', 'name: Acme Laptop; category: electronics; year: 2021'),
 (2, 'Bolt Espresso Machine', 'name: Bolt Espresso Machine; category: kitchen; year: 2019');
"""


def _pair():
    """(optimized db, naive db) built from the same script."""
    return (
        Database.from_script(SCRIPT, semantic=SemanticRuntime()),
        Database.from_script(SCRIPT, semantic=SemanticRuntime.naive()),
    )


# ------------------------------------------------------------------ parsing


class TestSemanticGrammar:
    def test_semantic_filter_shape(self):
        stmt = parse_statement(
            "SELECT id FROM reviews WHERE SEMANTIC_FILTER(body, 'mentions a refund')"
        )
        assert isinstance(stmt.where, ast.SemanticFilter)
        assert stmt.where.predicate == "mentions a refund"

    def test_semantic_join_shape(self):
        stmt = parse_statement(
            "SELECT * FROM a SEMANTIC_JOIN b ON MATCHES(a.x, b.y) AND a.id = 1"
        )
        assert isinstance(stmt.source, ast.Join)
        assert stmt.source.kind == "SEMANTIC"
        assert any(
            isinstance(n, ast.SemanticMatch) for n in ast.walk_expr(stmt.source.on)
        )

    def test_llm_udf_shapes(self):
        stmt = parse_statement(
            "SELECT LLM_CLASSIFY(d, 'a', 'b') AS k, LLM_EXTRACT(d, 'year') FROM t"
        )
        classify = stmt.items[0].expr
        extract = stmt.items[1].expr
        assert isinstance(classify, ast.LLMFunc) and classify.params == ["a", "b"]
        assert isinstance(extract, ast.LLMFunc) and extract.params == ["year"]

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t WHERE SEMANTIC_FILTER(body, 'mentions a refund') AND stars > 3",
            "SELECT * FROM a SEMANTIC_JOIN b ON MATCHES(a.x, b.y)",
            "SELECT LLM_CLASSIFY(d, 'x', 'y') FROM t",
            "SELECT LLM_EXTRACT(d, 'field name') FROM t ORDER BY 1",
            "SELECT * FROM a SEMANTIC_JOIN b ON MATCHES(a.x, b.y) AND b.n < 3",
        ],
    )
    def test_round_trip(self, sql):
        once = str(parse_statement(sql))
        twice = str(parse_statement(once))
        assert once == twice

    @pytest.mark.parametrize(
        "sql, fragment",
        [
            ("SELECT SEMANTIC_FILTER(body, 42) FROM t", "string literal"),
            ("SELECT SEMANTIC_FILTER(body, '') FROM t", "must not be empty"),
            ("SELECT SEMANTIC_FILTER(body, '   ') FROM t", "must not be empty"),
            ("SELECT LLM_CLASSIFY(d, 'only') FROM t", "at least two label"),
            ("SELECT LLM_EXTRACT(d, 'a', 'b') FROM t", "exactly one field-name"),
            ("SELECT * FROM a SEMANTIC_JOIN b ON a.x = b.y", "MATCHES"),
        ],
    )
    def test_malformed_operators_raise(self, sql, fragment):
        with pytest.raises(SQLSyntaxError, match=fragment):
            parse_statement(sql)

    @settings(max_examples=40, deadline=None)
    @given(
        predicate=st.text(
            alphabet="abcdefgh '", min_size=1, max_size=20
        ).map(str.strip).filter(bool)
    )
    def test_predicate_text_round_trips(self, predicate):
        escaped = predicate.replace("'", "''")
        stmt = parse_statement(
            f"SELECT id FROM t WHERE SEMANTIC_FILTER(body, '{escaped}')"
        )
        assert stmt.where.predicate == predicate
        again = parse_statement(str(stmt))
        assert again.where.predicate == predicate


# ----------------------------------------------------------------- planning


class TestPlannerSemanticCost:
    def test_semantic_dwarfs_relational(self):
        db, _ = _pair()
        plain = estimate_cost("SELECT id FROM reviews WHERE stars > 3", db.catalog)
        semantic = estimate_cost(
            "SELECT id FROM reviews WHERE SEMANTIC_FILTER(body, 'mentions a refund')",
            db.catalog,
        )
        assert semantic.semantic_calls > 0
        assert semantic.total_ms > plain.total_ms * 100

    def test_written_conjunct_order_changes_estimate(self):
        db, _ = _pair()
        semantic_first = estimate_cost(
            "SELECT id FROM reviews WHERE SEMANTIC_FILTER(body, 'x y z') AND stars > 3",
            db.catalog,
        )
        relational_first = estimate_cost(
            "SELECT id FROM reviews WHERE stars > 3 AND SEMANTIC_FILTER(body, 'x y z')",
            db.catalog,
        )
        assert relational_first.semantic_calls < semantic_first.semantic_calls
        assert relational_first.total_ms < semantic_first.total_ms

    def test_cache_hit_rate_discounts_calls(self):
        db, _ = _pair()
        sql = "SELECT id FROM reviews WHERE SEMANTIC_FILTER(body, 'x')"
        cold = estimate_cost(sql, db.catalog, semantic_hit_rate=0.0)
        warm = estimate_cost(sql, db.catalog, semantic_hit_rate=0.8)
        assert warm.semantic_calls < cold.semantic_calls
        assert warm.total_ms < cold.total_ms

    def test_optimize_reorders_where(self):
        db, _ = _pair()
        stmt = parse_statement(
            "SELECT id FROM reviews WHERE SEMANTIC_FILTER(title, 'x') AND id < 0 + id"
        )
        rewritten = optimize_semantic(stmt, db.catalog)
        parts = [str(c) for c in ast.conjuncts(rewritten.where)]
        assert "SEMANTIC_FILTER" in parts[-1]
        # Estimated cost never goes up under the rewrite.
        assert (
            estimate_cost(rewritten, db.catalog).total_ms
            <= estimate_cost(stmt, db.catalog).total_ms
        )

    def test_optimize_pushes_single_table_predicate(self):
        db, _ = _pair()
        stmt = parse_statement(
            "SELECT p.name FROM products AS p SEMANTIC_JOIN reviews AS r "
            "ON MATCHES(p.name, r.title) WHERE r.stars >= 4"
        )
        rewritten = optimize_semantic(stmt, db.catalog)
        assert rewritten.where is None
        leaves = []
        stack = [rewritten.source]
        while stack:
            ref = stack.pop()
            if isinstance(ref, ast.Join):
                stack.extend((ref.left, ref.right))
            else:
                leaves.append(ref)
        subs = [l for l in leaves if isinstance(l, ast.SubquerySource)]
        assert len(subs) == 1
        assert subs[0].alias == "r"
        assert "stars" in str(subs[0].select.where)

    def test_no_push_into_left_join_right_side(self):
        db, _ = _pair()
        stmt = parse_statement(
            "SELECT p.name FROM products AS p LEFT JOIN reviews AS r "
            "ON p.id = r.product_id "
            "WHERE SEMANTIC_FILTER(p.name, 'laptop') AND r.stars >= 4"
        )
        rewritten = optimize_semantic(stmt, db.catalog)
        # r.stars stays in WHERE: filtering below a LEFT join's right side
        # would resurrect null-padded rows.
        assert rewritten.where is not None and "stars" in str(rewritten.where)

    def test_non_semantic_statement_untouched(self):
        db, _ = _pair()
        stmt = parse_statement("SELECT id FROM reviews WHERE stars > 3")
        assert not select_contains_semantic(stmt)
        assert optimize_semantic(stmt, db.catalog) is stmt


class TestPlannerRegressions:
    def test_from_subquery_tables_not_double_counted(self):
        db, _ = _pair()
        flat = estimate_cost("SELECT id FROM reviews", db.catalog)
        wrapped = estimate_cost(
            "SELECT id FROM (SELECT * FROM reviews) AS sub", db.catalog
        )
        # The subquery's scan is charged once (as subquery cost), not again
        # as an outer base-table scan of the same 5 rows.
        assert wrapped.subquery_cost > 0
        assert wrapped.scan_rows == flat.scan_rows
        features = query_features(
            "SELECT id FROM (SELECT * FROM reviews) AS sub", db.catalog
        )
        assert features["num_tables"] == 0.0
        assert features["num_subqueries"] == 1.0

    def test_or_branches_are_one_conjunct(self):
        one = query_features("SELECT 1 FROM t WHERE a = 1 OR b = 2")
        assert one["num_predicates"] == 1.0
        two = query_features("SELECT 1 FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert two["num_predicates"] == 2.0
        db, _ = _pair()
        disjunct = estimate_cost(
            "SELECT id FROM reviews WHERE stars = 1 OR stars = 5", db.catalog
        )
        conjunct = estimate_cost(
            "SELECT id FROM reviews WHERE stars = 1 AND id = 5", db.catalog
        )
        # An OR widens the filter; it must not be charged as two AND-ed cuts.
        assert disjunct.sort_rows == 0.0  # sanity: no ORDER BY
        assert disjunct.total_ms >= conjunct.total_ms

    def test_semantic_ops_feature(self):
        features = query_features(
            "SELECT LLM_EXTRACT(d, 'y') FROM t WHERE SEMANTIC_FILTER(d, 'x')"
        )
        assert features["num_semantic_ops"] == 2.0


class TestExplainGoldens:
    def test_reordered_filter_plan(self):
        db, _ = _pair()
        text = explain(
            "SELECT id FROM reviews "
            "WHERE SEMANTIC_FILTER(body, 'mentions a refund') AND stars <= 2 "
            "ORDER BY id",
            db.catalog,
            semantic_hit_rate=0.5,
        )
        assert "LLM COST" in text
        assert "(assuming 50% cache hits)" in text
        assert "SUBQUERY AS reviews" in text  # stars <= 2 pushed into the scan
        assert "FILTER (stars <= 2)" in text
        assert "SEMANTIC FILTER SEMANTIC_FILTER(body, 'mentions a refund')" in text
        assert "LLM calls" in text
        assert "ORDER BY id" in text

    def test_semantic_join_plan(self):
        db, _ = _pair()
        text = explain(
            "SELECT p.name FROM products AS p SEMANTIC_JOIN reviews AS r "
            "ON MATCHES(p.name, r.title) AND r.stars >= 4",
            db.catalog,
        )
        assert "SEMANTIC JOIN" in text
        assert "SCAN products (2 rows)" in text
        assert "SEMANTIC JOIN MATCHES(p.name, r.title)" in text

    def test_unoptimized_render_keeps_written_order(self):
        db, _ = _pair()
        sql = (
            "SELECT id FROM reviews "
            "WHERE SEMANTIC_FILTER(body, 'refund') AND stars <= 2"
        )
        raw = explain(sql, db.catalog, optimize=False)
        assert "SUBQUERY" not in raw
        assert "FILTER (SEMANTIC_FILTER(body, 'refund') AND (stars <= 2))" in raw


# ------------------------------------------------------------------ runtime


class TestSemanticRuntime:
    def test_render_value(self):
        assert render_value(None) == "NULL"
        assert render_value(True) == "TRUE"
        assert render_value(3.0) == "3"
        assert render_value("a\nb   c") == "a b c"

    def test_truthy_answer(self):
        assert truthy_answer(" Yes.")
        assert truthy_answer("yes")
        assert not truthy_answer("no")
        assert not truthy_answer("")

    def test_batch_dedupes_and_caches(self):
        runtime = SemanticRuntime()
        prompts = [filter_prompt("mentions a refund", f"value {i % 3}") for i in range(9)]
        first = runtime.answer_many(list(prompts))
        assert runtime.stats.provider_calls == 1
        assert runtime.stats.provider_items == 3  # deduped
        second = [runtime.answer(p) for p in prompts]
        assert second == first
        assert runtime.stats.provider_calls == 1  # all cache hits
        assert runtime.stats.cache_hits >= 9

    def test_naive_mode_pays_per_prompt(self):
        runtime = SemanticRuntime.naive()
        prompts = [filter_prompt("mentions a refund", "same value")] * 4
        runtime.answer_many(list(prompts))
        assert runtime.stats.provider_calls == 4
        assert runtime.stats.cache_hits == 0

    def test_modes_agree_bitwise(self):
        opt, naive = SemanticRuntime(), SemanticRuntime.naive()
        prompts = [filter_prompt("mentions a refund", f"text {i} refund") for i in range(6)]
        assert opt.answer_many(list(prompts)) == naive.answer_many(list(prompts))


# ---------------------------------------------------------------- execution


WORKLOAD = [
    "SELECT id FROM reviews WHERE SEMANTIC_FILTER(body, 'mentions a refund') "
    "AND stars <= 2 ORDER BY id",
    "SELECT id FROM reviews WHERE stars <= 2 AND "
    "SEMANTIC_FILTER(body, 'mentions a refund') ORDER BY id",
    "SELECT p.name, r.title FROM products AS p SEMANTIC_JOIN reviews AS r "
    "ON MATCHES(p.name, r.title) AND r.stars <= 2 ORDER BY p.name, r.title",
    "SELECT id, LLM_CLASSIFY(descr, 'electronics', 'kitchen') AS kind "
    "FROM products ORDER BY id",
    "SELECT id, LLM_EXTRACT(descr, 'year') AS year FROM products ORDER BY id",
    "SELECT COUNT(*) FROM reviews WHERE SEMANTIC_FILTER(body, 'mentions a refund')",
]


class TestExecutorEquivalence:
    @pytest.mark.parametrize("sql", WORKLOAD)
    def test_optimized_matches_naive(self, sql):
        db_opt, db_naive = _pair()
        assert db_opt.query(sql) == db_naive.query(sql)

    def test_null_operand_is_null_not_llm_call(self):
        db, _ = _pair()
        rows = db.query(
            "SELECT id, LLM_EXTRACT(body, 'year') FROM reviews WHERE id = 5"
        )
        assert rows == [(5, None)]

    def test_optimized_issues_fewer_provider_items(self):
        db_opt, db_naive = _pair()
        sql = WORKLOAD[0]
        db_opt.query(sql)
        db_naive.query(sql)
        assert (
            db_opt.semantic.stats.provider_items
            < db_naive.semantic.stats.provider_items
        )
        assert db_opt.semantic.stats.batches >= 1

    def test_rerun_is_fully_cached(self):
        db_opt, _ = _pair()
        sql = WORKLOAD[0]
        db_opt.query(sql)
        items_before = db_opt.semantic.stats.provider_items
        db_opt.query(sql)
        assert db_opt.semantic.stats.provider_items == items_before

    def test_extract_pulls_structured_field(self):
        db, naive = _pair()
        rows = db.query("SELECT LLM_EXTRACT(descr, 'year') FROM products ORDER BY id")
        assert rows == [("2021",), ("2019",)]
        assert rows == naive.query(
            "SELECT LLM_EXTRACT(descr, 'year') FROM products ORDER BY id"
        )

    def test_classify_uses_given_labels(self):
        db, _ = _pair()
        rows = db.query(
            "SELECT LLM_CLASSIFY(descr, 'electronics', 'kitchen') FROM products ORDER BY id"
        )
        assert all(value in ("electronics", "kitchen") for (value,) in rows)

    def test_clone_shares_runtime(self):
        db_opt, _ = _pair()
        db_opt.query(WORKLOAD[0])
        calls = db_opt.semantic.stats.provider_calls
        clone = db_opt.clone()
        assert clone.query(WORKLOAD[0]) == db_opt.query(WORKLOAD[0])
        # The clone reused the original's warm cache: no new provider calls.
        assert db_opt.semantic.stats.provider_calls == calls
