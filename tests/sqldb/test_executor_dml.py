"""INSERT / UPDATE / DELETE / DDL execution tests."""

import pytest

from repro.errors import SQLCatalogError, SQLError, SQLIntegrityError
from repro.sqldb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL)")
    return database


class TestInsert:
    def test_insert_values(self, db):
        result = db.execute("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5)")
        assert result.rowcount == 2
        assert db.query_scalar("SELECT COUNT(*) FROM t") == 2

    def test_insert_with_column_list(self, db):
        db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        assert db.query("SELECT score FROM t") == [(None,)]

    def test_insert_wrong_arity(self, db):
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t (id, name) VALUES (1)")

    def test_insert_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        db.execute("CREATE TABLE u (id INTEGER, name TEXT, score REAL)")
        db.execute("INSERT INTO u SELECT * FROM t")
        assert db.query("SELECT name FROM u") == [("a",)]

    def test_insert_expression_values(self, db):
        db.execute("INSERT INTO t VALUES (1 + 1, UPPER('x'), 2.0 * 3)")
        assert db.query("SELECT * FROM t") == [(2, "X", 6.0)]

    def test_pk_violation(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        with pytest.raises(SQLIntegrityError):
            db.execute("INSERT INTO t VALUES (1, 'b', 2.0)")

    def test_insert_into_missing_table(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("INSERT INTO ghost VALUES (1)")


class TestUpdate:
    def test_update_all(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
        result = db.execute("UPDATE t SET score = score + 1")
        assert result.rowcount == 2
        assert db.query("SELECT score FROM t ORDER BY id") == [(2.0,), (3.0,)]

    def test_update_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
        result = db.execute("UPDATE t SET name = 'z' WHERE id = 2")
        assert result.rowcount == 1
        assert db.query("SELECT name FROM t ORDER BY id") == [("a",), ("z",)]

    def test_update_self_reference(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10.0)")
        db.execute("UPDATE t SET score = score * 2 WHERE score = 10.0")
        assert db.query_scalar("SELECT score FROM t") == 20.0

    def test_update_coerces_type(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        db.execute("UPDATE t SET score = 5")
        value = db.query_scalar("SELECT score FROM t")
        assert value == 5.0 and isinstance(value, float)

    def test_update_pk_collision_rolls_nothing(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
        with pytest.raises(SQLIntegrityError):
            db.execute("UPDATE t SET id = 1 WHERE id = 2")


class TestDelete:
    def test_delete_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0), (3, 'c', 3.0)")
        result = db.execute("DELETE FROM t WHERE score >= 2.0")
        assert result.rowcount == 2
        assert db.query("SELECT id FROM t") == [(1,)]

    def test_delete_all(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        db.execute("DELETE FROM t")
        assert db.query_scalar("SELECT COUNT(*) FROM t") == 0

    def test_delete_then_reinsert_same_pk(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        db.execute("DELETE FROM t WHERE id = 1")
        db.execute("INSERT INTO t VALUES (1, 'again', 9.0)")  # no raise
        assert db.query_scalar("SELECT name FROM t") == "again"


class TestDDL:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE extra (x INTEGER)")
        assert db.has_table("extra")
        db.execute("DROP TABLE extra")
        assert not db.has_table("extra")

    def test_create_duplicate(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("CREATE TABLE t (x INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS t (x INTEGER)")  # no raise

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS nonexistent")  # no raise

    def test_schema_text(self, db):
        text = db.schema_text()
        assert "CREATE TABLE t" in text
        assert "id INTEGER PRIMARY KEY" in text

    def test_clone_is_isolated(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        clone = db.clone()
        clone.execute("DELETE FROM t")
        assert db.query_scalar("SELECT COUNT(*) FROM t") == 1
        assert clone.query_scalar("SELECT COUNT(*) FROM t") == 0
