"""Value typing and coercion tests."""

import pytest

from repro.errors import SQLTypeError
from repro.sqldb.types import SQLType, coerce, infer_type, sort_key


class TestTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", SQLType.INTEGER),
            ("integer", SQLType.INTEGER),
            ("BIGINT", SQLType.INTEGER),
            ("FLOAT", SQLType.REAL),
            ("DOUBLE", SQLType.REAL),
            ("varchar", SQLType.TEXT),
            ("VARCHAR(255)", SQLType.TEXT),
            ("bool", SQLType.BOOLEAN),
        ],
    )
    def test_synonyms(self, name, expected):
        assert SQLType.from_name(name) is expected

    def test_unknown_type(self):
        with pytest.raises(SQLTypeError):
            SQLType.from_name("BLOB8")


class TestCoerce:
    def test_null_passes_through(self):
        for sql_type in SQLType:
            assert coerce(None, sql_type) is None

    def test_int_from_string(self):
        assert coerce("42", SQLType.INTEGER) == 42

    def test_int_from_whole_float(self):
        assert coerce(3.0, SQLType.INTEGER) == 3

    def test_int_rejects_fractional_float(self):
        with pytest.raises(SQLTypeError):
            coerce(3.5, SQLType.INTEGER)

    def test_real_from_int(self):
        result = coerce(3, SQLType.REAL)
        assert result == 3.0
        assert isinstance(result, float)

    def test_text_from_number(self):
        assert coerce(5, SQLType.TEXT) == "5"

    def test_bool_from_string(self):
        assert coerce("true", SQLType.BOOLEAN) is True
        assert coerce("F", SQLType.BOOLEAN) is False

    def test_bool_rejects_garbage(self):
        with pytest.raises(SQLTypeError):
            coerce("maybe", SQLType.BOOLEAN)

    def test_int_rejects_garbage(self):
        with pytest.raises(SQLTypeError):
            coerce("abc", SQLType.INTEGER)


class TestInference:
    def test_bool_before_int(self):
        assert infer_type(True) is SQLType.BOOLEAN

    def test_infer(self):
        assert infer_type(1) is SQLType.INTEGER
        assert infer_type(1.5) is SQLType.REAL
        assert infer_type("x") is SQLType.TEXT

    def test_unsupported(self):
        with pytest.raises(SQLTypeError):
            infer_type([1])


class TestSortKey:
    def test_null_sorts_first(self):
        values = ["b", None, 1, "a", 2.5]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None

    def test_numbers_before_text(self):
        ordered = sorted(["z", 10], key=sort_key)
        assert ordered == [10, "z"]

    def test_mixed_numeric_compare(self):
        assert sort_key(2) < sort_key(2.5)
