"""Dataset generator tests: determinism, gold-label consistency, shapes."""

import pytest

from repro.datasets import (
    build_concert_db,
    generate_column_corpus,
    generate_er_pairs,
    generate_hotpot,
    generate_joinable_pairs,
    generate_lake,
    generate_nl2sql,
    generate_patients,
    generate_timing_workload,
    paper_queries,
)
from repro.datasets.hotpot import context_passages, paraphrase, recompose_comparison
from repro.datasets.spider import execution_match
from repro.datasets.workloads import build_analytics_db


class TestHotpot:
    def test_deterministic(self, world):
        a = generate_hotpot(world, n=20, seed=3)
        b = generate_hotpot(world, n=20, seed=3)
        assert [x.question for x in a] == [y.question for y in b]

    def test_count_and_kinds(self, world):
        examples = generate_hotpot(world, n=40, seed=1)
        assert len(examples) == 40
        kinds = {e.kind for e in examples}
        assert kinds == {"bridge", "comparison"}

    def test_bridge_fraction(self, world):
        examples = generate_hotpot(world, n=40, seed=1, bridge_fraction=1.0)
        assert all(e.kind == "bridge" for e in examples)

    def test_answers_derivable_from_kb(self, world):
        from repro.llm.engines.base import TaskContext
        from repro.llm.engines.qa import QAEngine

        engine = QAEngine()
        ctx = TaskContext(knowledge=world.kb, model_name="t")
        for example in generate_hotpot(world, n=25, seed=2):
            result = engine.try_solve("Question: " + example.question, ctx)
            assert result is not None, example.question
            assert result.answer == example.answer, example.question

    def test_sub_questions_answers_consistent(self, world):
        from repro.llm.engines.base import TaskContext
        from repro.llm.engines.qa import QAEngine

        engine = QAEngine()
        ctx = TaskContext(knowledge=world.kb, model_name="t")
        for example in generate_hotpot(world, n=15, seed=5):
            for sub_question, sub_answer in example.sub_questions:
                result = engine.try_solve("Question: " + sub_question, ctx)
                assert result.answer == sub_answer

    def test_paraphrase_changes_text_not_meaning(self, world):
        examples = generate_hotpot(world, n=10, seed=7)
        changed = 0
        for example in examples:
            alt = paraphrase(example.question)
            if alt != example.question:
                changed += 1
        assert changed == len(examples)  # all templates are covered

    def test_recompose_comparison(self, world):
        comparisons = [e for e in generate_hotpot(world, n=30, seed=2) if e.kind == "comparison"]
        assert comparisons
        example = comparisons[0]
        answers = [a for _q, a in example.sub_questions]
        assert recompose_comparison(example, answers) == example.answer

    def test_context_passages_mention_entities(self, world):
        example = generate_hotpot(world, n=5, seed=9)[0]
        passages = context_passages(world, example.question, n_distractors=4, seed=0)
        assert len(passages) >= 4
        assert any(p.split(":")[0] in example.question for p in passages)


class TestSpider:
    def test_db_deterministic(self):
        a, b = build_concert_db(seed=1), build_concert_db(seed=1)
        assert a.query("SELECT * FROM stadium") == b.query("SELECT * FROM stadium")

    def test_stadium_names_unique(self):
        db = build_concert_db()
        assert db.query_scalar("SELECT COUNT(*) FROM stadium") == db.query_scalar(
            "SELECT COUNT(DISTINCT name) FROM stadium"
        )

    def test_paper_queries_are_five(self):
        queries = paper_queries()
        assert len(queries) == 5
        assert queries[0].recompose_op == "UNION"
        assert queries[3].recompose_op == "INTERSECT"
        assert queries[4].recompose_op == "EXCEPT"

    def test_gold_sql_executes(self):
        db = build_concert_db()
        for example in generate_nl2sql(n=20, seed=3):
            result = db.execute(example.gold_sql)
            assert result.columns  # ran and produced a shape

    def test_gold_matches_itself(self):
        db = build_concert_db()
        for example in generate_nl2sql(n=10, seed=3):
            assert execution_match(db, example.gold_sql, example.gold_sql)

    def test_execution_match_rejects_broken_sql(self):
        db = build_concert_db()
        assert not execution_match(db, "SELEC nothing", "SELECT name FROM stadium")

    def test_compound_fraction(self):
        examples = generate_nl2sql(n=30, seed=1, include_paper=False, compound_fraction=1.0)
        assert all(e.category == "compound" for e in examples)

    def test_compound_sub_questions_present(self):
        for example in generate_nl2sql(n=20, seed=4):
            if example.category == "compound":
                assert len(example.sub_questions) == 2
                assert example.recompose_op in ("UNION", "INTERSECT", "EXCEPT")


class TestEntities:
    def test_count_and_balance(self):
        pairs = generate_er_pairs(n=60, seed=2)
        assert len(pairs) == 60
        positives = sum(1 for p in pairs if p.label)
        assert 25 <= positives <= 35

    def test_deterministic(self):
        a = generate_er_pairs(n=20, seed=3)
        b = generate_er_pairs(n=20, seed=3)
        assert [(p.a, p.b, p.label) for p in a] == [(p.a, p.b, p.label) for p in b]

    def test_hardness_tags(self):
        pairs = generate_er_pairs(n=80, seed=4)
        assert {p.hardness for p in pairs} == {"easy", "hard"}

    def test_positives_more_similar_than_negatives(self):
        from repro.llm.engines.match import record_similarity

        pairs = generate_er_pairs(n=60, seed=5)
        positives = [record_similarity(p.a, p.b) for p in pairs if p.label]
        negatives = [record_similarity(p.a, p.b) for p in pairs if not p.label]
        assert positives and negatives
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(positives) > mean(negatives) + 0.15


class TestColumnsDatasets:
    def test_corpus_types_covered(self, world):
        types, examples = generate_column_corpus(world, n=32, seed=1)
        assert set(e.column_type for e in examples) == set(types)

    def test_joinable_pairs_verified_transformable(self):
        from repro.apps.transform.columns import synthesize_column_transform

        for pair in generate_joinable_pairs(n=16, seed=2):
            transform = synthesize_column_transform(list(pair.source), list(pair.target))
            assert transform is not None, pair.transform_name

    def test_joinable_deterministic(self):
        a = generate_joinable_pairs(n=8, seed=3)
        b = generate_joinable_pairs(n=8, seed=3)
        assert [p.source for p in a] == [p.source for p in b]


class TestTabular:
    def test_missing_fraction(self):
        dataset = generate_patients(n=100, seed=1, missing_fraction=0.3)
        assert len(dataset.unlabeled_rows()) == 30
        assert len(dataset.labeled_rows()) == 70

    def test_hidden_labels_recorded(self):
        dataset = generate_patients(n=50, seed=2)
        assert len(dataset.hidden_labels) == len(dataset.unlabeled_rows())

    def test_serialize_row(self):
        dataset = generate_patients(n=5, seed=3, missing_fraction=0.0)
        text = dataset.serialize_row(dataset.rows[0])
        assert "age:" in text and "risk:" in text

    def test_synthesize_preserves_schema_and_ranges(self):
        dataset = generate_patients(n=60, seed=4, missing_fraction=0.1)
        synthetic = dataset.synthesize(n=30, seed=5)
        assert len(synthetic.rows) == 30
        ages = [r["age"] for r in dataset.labeled_rows()]
        for row in synthetic.rows:
            assert set(row) == set(dataset.columns)
            assert min(ages) <= row["age"] <= max(ages)
            assert row["risk"] in ("low", "medium", "high")

    def test_synthesize_requires_labels(self):
        dataset = generate_patients(n=10, seed=6, missing_fraction=1.0)
        with pytest.raises(ValueError):
            dataset.synthesize(5)


class TestLakeAndWorkloads:
    def test_lake_modalities(self, world):
        items = generate_lake(world, seed=1)
        assert {i.modality for i in items} == {"text", "table", "image"}

    def test_lake_contains_jordan_scenario(self, world):
        items = generate_lake(world, seed=1)
        jordans = [i for i in items if "Michael Jordan" in i.content]
        assert len(jordans) == 2
        assert {i.metadata["entity_type"] for i in jordans} == {"athlete", "professor"}

    def test_timing_workload(self):
        db = build_analytics_db(seed=0)
        workload = generate_timing_workload(db, n=12, seed=1)
        assert len(workload) == 12
        for example in workload:
            assert example.execution_time_ms > 0
            assert example.features["num_tables"] >= 1
            db.execute(example.sql)  # every query actually runs

    def test_timing_deterministic(self):
        db = build_analytics_db(seed=0)
        a = generate_timing_workload(db, n=6, seed=2)
        b = generate_timing_workload(db, n=6, seed=2)
        assert [x.execution_time_ms for x in a] == [y.execution_time_ms for y in b]
