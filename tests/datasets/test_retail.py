"""Retail domain tests: the NL2SQL stack is domain-pluggable."""

import pytest

from repro.core.decompose import QueryOptimizer, decompose_nl_question
from repro.datasets import build_retail_db, generate_retail_nl2sql
from repro.datasets.spider import execution_match
from repro.llm import LLMClient
from repro.llm.engines.base import TaskContext
from repro.llm.engines.nl2sql import DOMAINS, NL2SQLEngine, RETAIL_DOMAIN, STADIUM_DOMAIN


@pytest.fixture()
def retail_db():
    return build_retail_db(seed=0)


@pytest.fixture()
def ctx(world):
    return TaskContext(knowledge=world.kb, model_name="t")


class TestDomainRegistry:
    def test_two_domains_registered(self):
        assert STADIUM_DOMAIN in DOMAINS
        assert RETAIL_DOMAIN in DOMAINS

    def test_stadium_sql_unchanged_by_refactor(self, ctx):
        """Regression pin: the stadium domain must emit the exact SQL shape
        the Table II calibration was done against."""
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of stadiums that had concerts in 2014?", ctx
        )
        assert result.answer == (
            "SELECT DISTINCT s.name FROM stadium s JOIN concert c "
            "ON s.stadium_id = c.stadium_id WHERE c.year = 2014"
        )

    def test_event_alias_collision_resolved(self):
        # sports_meeting starts with 's' like stadium: alias falls back to 'e'.
        event = STADIUM_DOMAIN.event_by_phrase("sports meetings")
        assert STADIUM_DOMAIN.event_alias(event) == "e"


class TestRetailEngine:
    def test_atomic_translation(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of customers that placed orders in 2021?", ctx
        )
        assert "JOIN orders" in result.answer
        assert "2021" in result.answer

    def test_compound_union(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of customers that placed orders in 2021 "
            "or filed returns in 2022?",
            ctx,
        )
        assert " UNION " in result.answer
        assert "JOIN orders" in result.answer and "JOIN returns" in result.answer

    def test_compound_except(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: Show the names of customers that placed orders in 2020 "
            "but did not file returns in 2020?",
            ctx,
        )
        assert " EXCEPT " in result.answer

    def test_superlative(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of customers that placed the most number of "
            "orders in 2022?",
            ctx,
        )
        assert "ORDER BY COUNT(*) DESC LIMIT 1" in result.answer

    def test_count_question(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: How many returns were filed in 2021?", ctx
        )
        assert result.answer == "SELECT COUNT(*) FROM returns WHERE year = 2021"


class TestRetailDataset:
    def test_db_deterministic(self):
        a, b = build_retail_db(seed=2), build_retail_db(seed=2)
        assert a.query("SELECT * FROM customer") == b.query("SELECT * FROM customer")

    def test_gold_sql_executes_and_self_matches(self, retail_db):
        for example in generate_retail_nl2sql(n=16, seed=1):
            assert execution_match(retail_db, example.gold_sql, example.gold_sql)

    def test_engine_translates_workload(self, retail_db, gpt4):
        workload = generate_retail_nl2sql(n=16, seed=2)
        hits = sum(
            execution_match(retail_db, gpt4.complete("Question: " + ex.question).text, ex.gold_sql)
            for ex in workload
        )
        assert hits / len(workload) >= 0.7


class TestRetailDecomposition:
    def test_compound_decomposes_with_correct_verbs(self):
        d = decompose_nl_question(
            "What are the names of customers that placed orders in 2021 "
            "but did not file returns in 2022?"
        )
        assert d.recompose_op == "EXCEPT"
        assert d.sub_questions[0] == (
            "What are the names of customers that placed orders in 2021?"
        )
        assert d.sub_questions[1] == (
            "What are the names of customers that filed returns in 2022?"
        )

    def test_atomic_retail_passthrough(self):
        d = decompose_nl_question("What are the names of customers that placed orders in 2021?")
        assert not d.is_compound

    def test_decomposed_regime_works_cross_domain(self, retail_db):
        workload = generate_retail_nl2sql(n=12, seed=3, compound_fraction=0.9)
        client = LLMClient(model="gpt-4")
        optimizer = QueryOptimizer(client, retail_db.schema_text())
        predictions = optimizer.translate_decomposed([e.question for e in workload])
        hits = sum(
            execution_match(retail_db, p, e.gold_sql)
            for p, e in zip(predictions, workload)
        )
        assert hits / len(workload) >= 0.75

    def test_stadium_decomposition_unchanged(self):
        d = decompose_nl_question(
            "What are the names of stadiums that had concerts in 2014 "
            "or had sports meetings in 2015?"
        )
        assert d.recompose_op == "UNION"
        assert d.sub_questions == (
            "What are the names of stadiums that had concerts in 2014?",
            "What are the names of stadiums that had sports meetings in 2015?",
        )
