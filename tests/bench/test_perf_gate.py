"""The perf gate must fail loudly and legibly — never with a traceback.

check_perf_gate.py is a standalone script (no package), so load it via
importlib and drive ``check_report``/``main`` directly against synthetic
artifacts: missing files, pre-schema payloads, and gateway reports on both
sides of the goodput floor.
"""

import importlib.util
import json
import pathlib

import pytest

GATE_PATH = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "check_perf_gate.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_perf_gate", GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _gateway_report(
    *,
    smoke=False,
    top_load="2",
    gateway_goodput=0.95,
    baseline_goodput=0.10,
    diverged=0,
):
    return {
        "schema": "repro.bench.gateway/v1",
        "smoke": smoke,
        "high_priority_class": "interactive",
        "equivalence": {"diverged": diverged},
        "cells": {
            top_load: {
                "gateway": {
                    "classes": {"interactive": {"goodput": gateway_goodput}}
                },
                "baseline": {
                    "classes": {"interactive": {"goodput": baseline_goodput}}
                },
            }
        },
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload) if isinstance(payload, dict) else payload)
    return str(path)


class TestArtifactHygiene:
    def test_missing_file_is_one_clear_line(self, gate):
        problems = gate.check_report("BENCH_does_not_exist.json")
        assert len(problems) == 1
        assert "missing bench artifact" in problems[0]
        assert "regenerate" in problems[0]

    def test_invalid_json_named_not_raised(self, gate, tmp_path):
        path = _write(tmp_path, "BENCH_bad.json", "{not json")
        problems = gate.check_report(path)
        assert len(problems) == 1
        assert "not valid JSON" in problems[0]

    def test_non_object_report(self, gate, tmp_path):
        path = _write(tmp_path, "BENCH_list.json", "[1, 2, 3]")
        problems = gate.check_report(path)
        assert "not a JSON object" in problems[0]

    def test_pre_gate_artifact_without_schema(self, gate, tmp_path):
        path = _write(tmp_path, "BENCH_old.json", {"cells": {}, "diverged": 0})
        problems = gate.check_report(path)
        assert len(problems) == 1
        assert "older schema" in problems[0]

    def test_main_never_tracebacks_on_malformed_report(self, gate, tmp_path, capsys):
        # A shape main()'s per-file try/except has to absorb: schema claims
        # cluster but cells is a list, so .items() raises deep inside.
        path = _write(
            tmp_path,
            "BENCH_malformed.json",
            {"schema": "repro.bench.cluster/v1", "cells": [1, 2]},
        )
        rc = gate.main([path])
        err = capsys.readouterr().err
        assert rc == 1
        assert "malformed report" in err
        assert "Traceback" not in err


class TestGatewayBranch:
    def test_good_full_report_passes(self, gate, tmp_path):
        path = _write(tmp_path, "BENCH_gateway.json", _gateway_report())
        assert gate.check_report(path) == []

    def test_goodput_below_floor_fails(self, gate, tmp_path):
        report = _gateway_report(gateway_goodput=0.50)
        path = _write(tmp_path, "BENCH_gateway.json", report)
        problems = gate.check_report(path)
        assert any("below the 0.90 floor" in p for p in problems)

    def test_smoke_floor_is_lower(self, gate, tmp_path):
        report = _gateway_report(smoke=True, gateway_goodput=0.80)
        path = _write(tmp_path, "BENCH_gateway.smoke.json", report)
        assert gate.check_report(path) == []

    def test_baseline_not_worse_fails(self, gate, tmp_path):
        report = _gateway_report(gateway_goodput=0.95, baseline_goodput=0.97)
        path = _write(tmp_path, "BENCH_gateway.json", report)
        problems = gate.check_report(path)
        assert any("admission control is buying nothing" in p for p in problems)

    def test_full_sweep_baseline_above_floor_fails(self, gate, tmp_path):
        # Full sweep only: if FIFO also holds the floor, the "overload"
        # cell is not actually overloaded.
        report = _gateway_report(gateway_goodput=0.99, baseline_goodput=0.92)
        path = _write(tmp_path, "BENCH_gateway.json", report)
        problems = gate.check_report(path)
        assert any("not actually overloaded" in p for p in problems)

    def test_under_2x_top_cell_flagged(self, gate, tmp_path):
        report = _gateway_report(top_load="1")
        path = _write(tmp_path, "BENCH_gateway.json", report)
        problems = gate.check_report(path)
        assert any("only meaningful at >= 2x" in p for p in problems)

    def test_diverged_nonzero_fails(self, gate, tmp_path):
        report = _gateway_report(diverged=3)
        path = _write(tmp_path, "BENCH_gateway.json", report)
        problems = gate.check_report(path)
        assert any("= 3 (must be 0)" in p for p in problems)

    def test_gateway_schema_without_cells_is_older_schema(self, gate, tmp_path):
        path = _write(
            tmp_path, "BENCH_gateway.json", {"schema": "repro.bench.gateway/v1"}
        )
        problems = gate.check_report(path)
        assert any("older gateway schema" in p for p in problems)

    def test_cells_without_goodput_is_older_schema(self, gate, tmp_path):
        report = {
            "schema": "repro.bench.gateway/v1",
            "cells": {"2": {"gateway": {}, "baseline": {}}},
        }
        path = _write(tmp_path, "BENCH_gateway.json", report)
        problems = gate.check_report(path)
        assert any("no per-class goodput" in p for p in problems)


class TestCommittedArtifacts:
    def test_committed_reports_still_pass_the_gate(self, gate):
        repo = GATE_PATH.parents[1]
        artifacts = sorted(repo.glob("BENCH_*.json"))
        assert artifacts, "no committed BENCH_*.json artifacts found"
        for artifact in artifacts:
            assert gate.check_report(str(artifact)) == [], artifact.name
