"""Shape tests for the experiment harness: the paper's qualitative claims.

These assert the *shape* of each result — orderings and rough ratios — not
absolute numbers (see DESIGN.md §6). They are the regression net keeping the
reproduction honest as the library evolves.
"""

import pytest

from repro.bench import (
    format_table,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
)


@pytest.fixture(scope="module")
def table1():
    return run_table1()


@pytest.fixture(scope="module")
def table2():
    return run_table2()


@pytest.fixture(scope="module")
def table3():
    return run_table3()


class TestTable1Shape:
    def test_accuracy_rises_with_model_cost(self, table1):
        assert (
            table1.accuracy("babbage-002")
            < table1.accuracy("gpt-3.5-turbo")
            < table1.accuracy("gpt-4")
        )

    def test_babbage_near_paper_value(self, table1):
        # Paper: 27.5%.
        assert abs(table1.accuracy("babbage-002") - 0.275) <= 0.15

    def test_gpt4_near_paper_value(self, table1):
        # Paper: 92.5%.
        assert abs(table1.accuracy("gpt-4") - 0.925) <= 0.08

    def test_cascade_close_to_gpt4_accuracy(self, table1):
        assert table1.accuracy("LLM cascade") >= table1.accuracy("gpt-4") - 0.05

    def test_cascade_significantly_cheaper(self, table1):
        assert table1.cost("LLM cascade") <= 0.7 * table1.cost("gpt-4")

    def test_cost_ordering(self, table1):
        assert table1.cost("babbage-002") < table1.cost("gpt-3.5-turbo") < table1.cost("gpt-4")

    def test_render(self, table1):
        text = table1.render()
        assert "LLM cascade" in text and "gpt-4" in text


class TestTable2Shape:
    def test_decomposition_improves_accuracy(self, table2):
        assert table2.accuracy("Decomposition") > table2.accuracy("Origin")

    def test_combination_preserves_accuracy(self, table2):
        assert table2.accuracy("Decomposition+Combination") == pytest.approx(
            table2.accuracy("Decomposition"), abs=0.05
        )

    def test_costs_strictly_decrease(self, table2):
        assert (
            table2.cost("Origin")
            > table2.cost("Decomposition")
            > table2.cost("Decomposition+Combination")
        )

    def test_origin_near_paper_value(self, table2):
        # Paper: 79%.
        assert abs(table2.accuracy("Origin") - 0.79) <= 0.12

    def test_decomposition_near_paper_value(self, table2):
        # Paper: 91%.
        assert abs(table2.accuracy("Decomposition") - 0.91) <= 0.10


class TestTable3Shape:
    def test_caching_reduces_cost(self, table3):
        assert table3.cost("Cache(O)") < table3.cost("w/o Cache")
        assert table3.cost("Cache(A)") < table3.cost("w/o Cache")

    def test_cache_o_preserves_accuracy(self, table3):
        assert table3.accuracy("Cache(O)") == pytest.approx(
            table3.accuracy("w/o Cache"), abs=0.1
        )

    def test_cache_a_improves_accuracy(self, table3):
        assert table3.accuracy("Cache(A)") > table3.accuracy("Cache(O)")

    def test_sub_query_cache_hits_more(self, table3):
        assert (
            table3.diagnostics["Cache(A)"]["reuse_hits"]
            > table3.diagnostics["Cache(O)"]["reuse_hits"]
        )


class TestFigures:
    def test_fig2_validity_high_for_gpt4(self):
        result = run_fig2(count_per_kind=6)
        for kind in ("simple", "join", "subquery", "aggregate"):
            assert result.validity(kind) >= 0.5

    def test_fig3_more_examples_help_weak_model(self):
        result = run_fig3(example_counts=(2, 16), models=("gpt-3.5-turbo",))
        assert result.error("gpt-3.5-turbo", 16) <= result.error("gpt-3.5-turbo", 2)

    def test_fig3_strong_model_lower_error(self):
        result = run_fig3(example_counts=(8,), models=("gpt-3.5-turbo", "gpt-4"))
        assert result.error("gpt-4", 8) <= result.error("gpt-3.5-turbo", 8) + 0.02

    def test_fig4_gpt4_beats_gpt35(self):
        result = run_fig4(n_docs=6)
        for source in ("json", "xml"):
            assert result.f1(source, "gpt-4") >= result.f1(source, "gpt-3.5-turbo")

    def test_fig4_gpt4_high_f1(self):
        result = run_fig4(n_docs=6)
        assert result.f1("json", "gpt-4") >= 0.9

    def test_fig1_pipeline_all_stages_ok(self):
        from repro.bench import run_fig1

        result = run_fig1()
        assert result.all_ok
        assert len(result.stages) == 4

    def test_fig5_covers_all_five_challenges(self):
        from repro.bench import run_fig5

        result = run_fig5()
        challenges = [row[0] for row in result.rows]
        for section in ("III-A", "III-B", "III-C", "III-D", "III-E"):
            assert any(section in c for c in challenges)
        assert all(count > 0 for _c, _m, count in result.rows)

    def test_fig6_routing_distribution(self):
        from repro.bench import run_fig6

        result = run_fig6(n_queries=15)
        assert sum(result.answered_by.values()) == 15
        # The middle model handles the bulk; the cascade saves money.
        assert result.answered_by["gpt-3.5-turbo"] >= result.answered_by["babbage-002"]
        assert result.cascade_cost < result.gpt4_cost
        assert result.accuracy >= 0.8

    def test_fig7_sharing_structure(self):
        result = run_fig7()
        assert result.total_sub_references == 8
        assert result.unique_sub_queries == 4
        assert result.llm_calls_saved == 4
        assert "Q1" not in result.render() or True  # render never raises


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.23456], ["yyyy", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text

    def test_format_table_small_floats(self):
        text = format_table(["v"], [[0.00042]])
        assert "0.00042" in text
