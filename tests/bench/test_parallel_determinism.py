"""Determinism of the parallel table harness paths (scheduler-backed).

The contract: ``run_table1/3(parallel=True)`` feeds the batching scheduler
from N submitter threads but executes with one dispatch worker in strict
submission-index order, so every rendered table — accuracy, cost, and the
cache diagnostics — is byte-identical to the serial loop at any worker
count.
"""

import pytest

from repro.bench.experiments import run_table1, run_table3
from repro.bench.perf import SimulatedServiceProvider, run_parallel_equivalence, run_serving


class TestParallelTables:
    @pytest.fixture(scope="class")
    def serial_table1(self):
        return run_table1(n_queries=6)

    @pytest.fixture(scope="class")
    def serial_table3(self):
        return run_table3(n_queries=3)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_table1_parallel_is_byte_identical(self, serial_table1, workers):
        parallel = run_table1(n_queries=6, parallel=True, workers=workers)
        assert parallel.render() == serial_table1.render()
        assert parallel.rows == serial_table1.rows

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_table3_parallel_is_byte_identical(self, serial_table3, workers):
        parallel = run_table3(n_queries=3, parallel=True, workers=workers)
        assert parallel.render() == serial_table3.render()
        assert parallel.rows == serial_table3.rows
        assert parallel.diagnostics == serial_table3.diagnostics

    def test_equivalence_harness_reports_zero_divergence(self):
        result = run_parallel_equivalence(
            worker_counts=(2,), table1_queries=4, table3_queries=2
        )
        assert result["diverged"] == 0
        assert result["divergent"] == []


class TestRunServingSmoke:
    def test_report_shape_and_speedup_keys(self, tmp_path):
        report = run_serving(
            n_requests=16,
            n_queries=8,
            overhead_ms=2.0,
            worker_counts=(2,),
            batch_sizes=(1, 4),
            submitters=4,
            check_equivalence=False,
            write_path=str(tmp_path / "BENCH_serving.json"),
        )
        assert set(report.configs) == {"w2_b1", "w2_b4_combined"}
        for cell in report.configs.values():
            assert cell["requests"] == 16
            assert cell["qps"] > 0
            assert cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"]
        assert report.baseline["requests"] == 16
        assert report.speedup("w2_b1") > 0
        payload = report.payload()
        assert payload["schema"] == "repro.bench.serving/v1"
        assert (tmp_path / "BENCH_serving.json").exists()
        assert "Concurrent serving" in report.render()

    def test_simulated_provider_delegates(self):
        from repro.llm.client import LLMClient

        provider = SimulatedServiceProvider(LLMClient(), overhead_ms=0.0, per_item_ms=0.0)
        completion = provider.complete("Question: delegate?")
        assert completion.text == LLMClient().complete("Question: delegate?").text
        batch = provider.complete_batch("Question: ", ["a?", "b?"])
        assert len(batch) == 2
        resown = provider.reseeded(5)
        assert isinstance(resown, SimulatedServiceProvider)
        assert provider.embed("x").shape == (64,)
