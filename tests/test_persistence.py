"""Persistence tests: SQL dump/restore and vector collection save/load."""

import os

import numpy as np
import pytest

from repro.datasets import build_concert_db
from repro.sqldb import Database
from repro.vectordb import Collection, Metric


class TestDatabaseDump:
    def test_roundtrip_preserves_data(self, concert_db):
        script = concert_db.dump()
        restored = Database.from_script(script)
        assert restored.table_names() == concert_db.table_names()
        for name in concert_db.table_names():
            original = sorted(map(repr, concert_db.query(f"SELECT * FROM {name}")))
            copied = sorted(map(repr, restored.query(f"SELECT * FROM {name}")))
            assert original == copied

    def test_roundtrip_preserves_constraints(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL)")
        db.execute("INSERT INTO t VALUES (1, 'a')")
        restored = Database.from_script(db.dump())
        from repro.errors import SQLIntegrityError

        with pytest.raises(SQLIntegrityError):
            restored.execute("INSERT INTO t VALUES (1, 'dup')")

    def test_dump_escapes_quotes_and_nulls(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, note TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'it''s fine'), (2, NULL)")
        restored = Database.from_script(db.dump())
        assert restored.query("SELECT note FROM t ORDER BY id") == [("it's fine",), (None,)]

    def test_dump_preserves_floats_and_bools(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL, flag BOOLEAN)")
        db.execute("INSERT INTO t VALUES (1, 2.5, TRUE), (2, 0.1, FALSE)")
        restored = Database.from_script(db.dump())
        assert restored.query("SELECT x, flag FROM t ORDER BY id") == [(2.5, True), (0.1, False)]

    def test_dump_is_idempotent(self, concert_db):
        once = concert_db.dump()
        twice = Database.from_script(once).dump()
        assert once == twice


class TestCollectionPersistence:
    def _collection(self):
        rng = np.random.default_rng(0)
        c = Collection(dim=6, metric=Metric.COSINE)
        for i in range(25):
            c.add(
                f"i{i}",
                rng.normal(size=6),
                metadata={"group": i % 5},
                payload={"rank": i},
            )
        return c

    def test_dict_roundtrip_preserves_search(self):
        original = self._collection()
        restored = Collection.from_dict(original.to_dict())
        query = original.get_vector("i7")
        assert [h.id for h in original.search(query, k=5)] == [
            h.id for h in restored.search(query, k=5)
        ]

    def test_roundtrip_preserves_metadata_and_payload(self):
        restored = Collection.from_dict(self._collection().to_dict())
        assert restored.get_metadata("i3") == {"group": 3}
        assert restored.get_payload("i3") == {"rank": 3}

    def test_save_load_file(self, tmp_path):
        original = self._collection()
        path = str(tmp_path / "collection.json")
        original.save(path)
        restored = Collection.load(path)
        assert len(restored) == len(original)
        query = original.get_vector("i11")
        assert restored.search(query, k=1).hits[0].id == "i11"

    def test_filtered_search_after_restore(self, tmp_path):
        original = self._collection()
        path = str(tmp_path / "c.json")
        original.save(path)
        restored = Collection.load(path)
        report = restored.search(np.ones(6), k=3, where={"group": 2})
        assert all(h.metadata["group"] == 2 for h in report.hits)

    def test_save_is_atomic_failed_write_preserves_original(self, tmp_path):
        # The seed bug: save() opened the target for writing directly, so
        # a crash (or unserializable payload) mid-write left a torn file.
        # Now the payload lands in a temp file renamed over the target.
        original = self._collection()
        path = str(tmp_path / "c.json")
        original.save(path)
        poisoned = self._collection()
        poisoned.add("bad", np.ones(6), payload=object())  # not JSON-serializable
        with pytest.raises(TypeError):
            poisoned.save(path)
        restored = Collection.load(path)  # previous save still intact
        assert len(restored) == len(original)
        assert sorted(os.listdir(tmp_path)) == ["c.json"]  # no temp litter
