"""Unit tests for the shared helpers in repro._util."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    chunked,
    cosine,
    jaccard,
    levenshtein,
    levenshtein_ratio,
    normalize_text,
    rng_from,
    softmax,
    stable_hash,
    words,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_bits_bound(self):
        assert 0 <= stable_hash("x", bits=16) < (1 << 16)


class TestRngFrom:
    def test_int_seed_reproducible(self):
        assert rng_from(7).random() == rng_from(7).random()

    def test_string_seed_reproducible(self):
        assert rng_from("seed").random() == rng_from("seed").random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert rng_from(rng) is rng


class TestTextHelpers:
    def test_normalize(self):
        assert normalize_text("  Hello\t WORLD ") == "hello world"

    def test_words(self):
        assert words("it's a test-case 42") == ["it's", "a", "test", "case", "42"]

    def test_jaccard(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0
        assert jaccard(["a"], []) == 0.0

    def test_levenshtein(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("same", "same") == 0

    def test_levenshtein_ratio(self):
        assert levenshtein_ratio("", "") == 1.0
        assert levenshtein_ratio("ab", "ab") == 1.0
        assert 0.0 <= levenshtein_ratio("abcd", "wxyz") <= 1.0


class TestNumericHelpers:
    def test_cosine_bounds(self):
        assert cosine([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine([1, 1], [1, 1]) == pytest.approx(1.0)
        assert cosine([0, 0], [1, 1]) == 0.0

    def test_softmax_sums_to_one(self):
        out = softmax([1.0, 2.0, 3.0])
        assert sum(out) == pytest.approx(1.0)
        assert out == sorted(out)

    def test_softmax_empty(self):
        assert softmax([]) == []

    def test_softmax_stability(self):
        out = softmax([1e5, 1e5 + 1])
        assert all(np.isfinite(out))

    def test_chunked(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert chunked([], 3) == []
        with pytest.raises(ValueError):
            chunked([1], 0)


@settings(max_examples=50, deadline=None)
@given(a=st.text(max_size=15), b=st.text(max_size=15))
def test_levenshtein_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@settings(max_examples=50, deadline=None)
@given(a=st.text(max_size=10), b=st.text(max_size=10), c=st.text(max_size=10))
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@settings(max_examples=50, deadline=None)
@given(xs=st.lists(st.sampled_from("abcdef"), max_size=12), ys=st.lists(st.sampled_from("abcdef"), max_size=12))
def test_jaccard_bounds_and_symmetry(xs, ys):
    value = jaccard(xs, ys)
    assert 0.0 <= value <= 1.0
    assert value == jaccard(ys, xs)
