"""ANN knob auto-tuning tests (refs [72, 73])."""

import numpy as np
import pytest

from repro.vectordb import (
    FlatIndex,
    HNSWIndex,
    IVFIndex,
    measure_recall,
    tune_ef_search,
    tune_nprobe,
)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(13)
    data = rng.normal(size=(400, 16))
    flat = FlatIndex(16)
    for i, v in enumerate(data):
        flat.add(f"v{i}", v)
    queries = [data[int(i)] + rng.normal(scale=0.05, size=16) for i in rng.integers(0, 400, 15)]
    return data, flat, queries


def build_ivf(data, nprobe=1):
    ivf = IVFIndex(16, nlist=20, nprobe=nprobe, seed=1)
    for i, v in enumerate(data):
        ivf.add(f"v{i}", v)
    ivf.train()
    return ivf


class TestMeasureRecall:
    def test_reference_against_itself(self, corpus):
        _data, flat, queries = corpus
        assert measure_recall(flat, flat, queries) == 1.0

    def test_requires_queries(self, corpus):
        _data, flat, _queries = corpus
        with pytest.raises(ValueError):
            measure_recall(flat, flat, [])

    def test_narrow_probe_lower_recall(self, corpus):
        data, flat, queries = corpus
        narrow = build_ivf(data, nprobe=1)
        wide = build_ivf(data, nprobe=20)
        assert measure_recall(narrow, flat, queries) <= measure_recall(wide, flat, queries)


class TestTuneNprobe:
    def test_meets_target(self, corpus):
        data, flat, queries = corpus
        ivf = build_ivf(data)
        result = tune_nprobe(ivf, flat, queries, target_recall=0.9)
        assert result.met_target
        assert 1 <= result.value <= 20
        assert ivf.nprobe == result.value

    def test_minimality(self, corpus):
        data, flat, queries = corpus
        ivf = build_ivf(data)
        result = tune_nprobe(ivf, flat, queries, target_recall=0.9)
        if result.value > 1:
            ivf.nprobe = result.value - 1
            assert measure_recall(ivf, flat, queries) < 0.9
            ivf.nprobe = result.value

    def test_binary_search_cheaper_than_sweep(self, corpus):
        data, flat, queries = corpus
        ivf = build_ivf(data)
        result = tune_nprobe(ivf, flat, queries, target_recall=0.9)
        assert result.evaluations <= 6  # log2(20) rounds, not 20

    def test_loose_target_small_knob(self, corpus):
        data, flat, queries = corpus
        ivf = build_ivf(data)
        loose = tune_nprobe(ivf, flat, queries, target_recall=0.3)
        ivf2 = build_ivf(data)
        strict = tune_nprobe(ivf2, flat, queries, target_recall=0.97)
        assert loose.value <= strict.value


class TestTuneEfSearch:
    def test_meets_target(self, corpus):
        data, flat, queries = corpus
        hnsw = HNSWIndex(16, m=8, ef_search=4, seed=1)
        for i, v in enumerate(data):
            hnsw.add(f"v{i}", v)
        result = tune_ef_search(hnsw, flat, queries, target_recall=0.9)
        assert result.met_target
        assert hnsw.ef_search == result.value
