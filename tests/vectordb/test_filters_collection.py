"""Metadata filters, hybrid search strategies, and distance metrics."""

import numpy as np
import pytest

from repro.errors import CollectionError
from repro.vectordb import Collection, FilterStrategy, Metric, MetadataFilter
from repro.vectordb.distance import pairwise_similarity, similarity_matrix


class TestMetadataFilter:
    def test_equality(self):
        f = MetadataFilter({"kind": "text"})
        assert f.matches({"kind": "text"})
        assert not f.matches({"kind": "table"})

    def test_missing_field_fails(self):
        assert not MetadataFilter({"kind": "text"}).matches({})

    def test_empty_filter_matches_all(self):
        f = MetadataFilter()
        assert f.matches({"anything": 1})
        assert not f  # falsy

    def test_range_operators(self):
        f = MetadataFilter({"year": {"gte": 2000, "lt": 2010}})
        assert f.matches({"year": 2005})
        assert not f.matches({"year": 2010})
        assert not f.matches({"year": 1999})

    def test_in_operator(self):
        f = MetadataFilter({"tag": {"in": ["a", "b"]}})
        assert f.matches({"tag": "a"})
        assert not f.matches({"tag": "c"})

    def test_contains(self):
        f = MetadataFilter({"title": {"contains": "jordan"}})
        assert f.matches({"title": "Michael Jordan bio"})
        assert not f.matches({"title": "unrelated"})

    def test_ne(self):
        f = MetadataFilter({"kind": {"ne": "image"}})
        assert f.matches({"kind": "text"})
        assert not f.matches({"kind": "image"})

    def test_conjunction(self):
        f = MetadataFilter({"kind": "text", "year": {"gt": 2000}})
        assert f.matches({"kind": "text", "year": 2001})
        assert not f.matches({"kind": "text", "year": 1999})

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            MetadataFilter({"x": {"weird": 1}})

    def test_selectivity(self):
        f = MetadataFilter({"kind": "a"})
        metas = [{"kind": "a"}, {"kind": "b"}, {"kind": "a"}, {"kind": "c"}]
        assert f.selectivity(metas) == 0.5

    def test_null_comparison_safe(self):
        f = MetadataFilter({"year": {"lt": 5}})
        assert not f.matches({"year": None})


class TestDistance:
    def test_cosine_identity(self):
        v = np.array([1.0, 2.0, 3.0])
        assert pairwise_similarity(v, v, Metric.COSINE) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert pairwise_similarity(a, b, Metric.COSINE) == pytest.approx(0.0)

    def test_cosine_zero_vector(self):
        assert pairwise_similarity(np.zeros(3), np.ones(3), Metric.COSINE) == 0.0

    def test_l2_negated(self):
        a, b = np.zeros(2), np.array([3.0, 4.0])
        assert pairwise_similarity(a, b, Metric.L2) == pytest.approx(-5.0)

    def test_dot(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        assert pairwise_similarity(a, b, Metric.DOT) == pytest.approx(11.0)

    def test_matrix_shape(self):
        sims = similarity_matrix(np.ones(4), np.ones((7, 4)), Metric.COSINE)
        assert sims.shape == (7,)

    def test_empty_matrix(self):
        assert similarity_matrix(np.ones(4), np.zeros((0, 4)), Metric.COSINE).shape == (0,)


@pytest.fixture()
def collection():
    rng = np.random.default_rng(0)
    c = Collection(dim=8)
    for i in range(100):
        c.add(
            f"i{i}",
            rng.normal(size=8),
            metadata={"group": i % 10, "even": i % 2 == 0},
            payload={"index": i},
        )
    return c


class TestCollection:
    def test_len_contains(self, collection):
        assert len(collection) == 100
        assert "i3" in collection

    def test_payload_roundtrip(self, collection):
        assert collection.get_payload("i5") == {"index": 5}

    def test_metadata_roundtrip(self, collection):
        assert collection.get_metadata("i4")["group"] == 4

    def test_unknown_id(self, collection):
        with pytest.raises(CollectionError):
            collection.get_metadata("ghost")

    def test_unfiltered_search(self, collection):
        report = collection.search(collection.get_vector("i7"), k=5)
        assert report.hits[0].id == "i7"
        assert len(report) == 5
        assert report.satisfied

    def test_pre_filter_strategy(self, collection):
        query = collection.get_vector("i13")
        report = collection.search(query, k=5, where={"group": 3}, strategy=FilterStrategy.PRE)
        assert report.strategy is FilterStrategy.PRE
        assert all(h.metadata["group"] == 3 for h in report.hits)
        assert "i13" in [h.id for h in report.hits]

    def test_post_filter_strategy(self, collection):
        query = collection.get_vector("i13")
        report = collection.search(query, k=5, where={"group": 3}, strategy=FilterStrategy.POST)
        assert report.strategy is FilterStrategy.POST
        assert all(h.metadata["group"] == 3 for h in report.hits)

    def test_adaptive_picks_pre_for_selective(self, collection):
        report = collection.search(np.ones(8), k=3, where={"group": 3})
        assert report.strategy is FilterStrategy.PRE  # selectivity 0.1 <= 0.25

    def test_adaptive_picks_post_for_broad(self, collection):
        report = collection.search(np.ones(8), k=3, where={"even": True})
        assert report.strategy is FilterStrategy.POST  # selectivity 0.5

    def test_post_filter_can_underfill_without_overfetch(self):
        rng = np.random.default_rng(1)
        c = Collection(dim=4, overfetch=1.0)  # no widening
        for i in range(50):
            c.add(f"i{i}", rng.normal(size=4), metadata={"rare": i == 49})
        report = c.search(rng.normal(size=4), k=5, where={"rare": True}, strategy=FilterStrategy.POST)
        # Only one item matches; satisfied only if it surfaced in top-5 scan.
        assert len(report.hits) <= 1
        if len(report.hits) < 1:
            assert not report.satisfied

    def test_remove(self, collection):
        collection.remove("i0")
        assert "i0" not in collection
        assert len(collection) == 99

    def test_duplicate_add_rejected(self, collection):
        with pytest.raises(CollectionError):
            collection.add("i1", np.ones(8))

    def test_report_selectivity_estimate(self, collection):
        report = collection.search(np.ones(8), k=3, where={"group": 2})
        assert report.estimated_selectivity == pytest.approx(0.1)

    def test_invalid_index_type(self):
        with pytest.raises(ValueError):
            Collection(dim=4, index="btree")

    def test_ivf_backed_collection(self):
        rng = np.random.default_rng(2)
        c = Collection(dim=8, index="ivf", nlist=4, nprobe=4)
        for i in range(60):
            c.add(f"i{i}", rng.normal(size=8))
        report = c.search(c.get_vector("i10"), k=1)
        assert report.hits[0].id == "i10"

    def test_hnsw_backed_collection(self):
        rng = np.random.default_rng(3)
        c = Collection(dim=8, index="hnsw")
        for i in range(60):
            c.add(f"i{i}", rng.normal(size=8))
        report = c.search(c.get_vector("i10"), k=1)
        assert report.hits[0].id == "i10"
