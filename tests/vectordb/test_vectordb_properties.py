"""Property-based tests for the vector database (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vectordb import Collection, FlatIndex, MetadataFilter

DIM = 6

vector_strategy = arrays(
    np.float64,
    (DIM,),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
)

vectors_strategy = st.lists(vector_strategy, min_size=1, max_size=20)


@settings(max_examples=30, deadline=None)
@given(vectors=vectors_strategy, k=st.integers(min_value=1, max_value=25))
def test_flat_topk_size_and_order(vectors, k):
    index = FlatIndex(DIM)
    for i, v in enumerate(vectors):
        index.add(f"v{i}", v)
    hits = index.search(vectors[0], k=k)
    assert len(hits) == min(k, len(vectors))
    scores = [s for _i, s in hits]
    assert scores == sorted(scores, reverse=True)


@settings(max_examples=30, deadline=None)
@given(vectors=vectors_strategy)
def test_flat_search_is_exact_argmax(vectors):
    index = FlatIndex(DIM)
    for i, v in enumerate(vectors):
        index.add(f"v{i}", v)
    query = vectors[-1]
    top = index.search(query, k=1)[0]
    # Brute-force recompute: the returned score must equal the max score.
    from repro.vectordb.distance import Metric, similarity_matrix

    sims = similarity_matrix(query, np.stack(vectors), Metric.COSINE)
    assert top[1] == max(sims)


@settings(max_examples=30, deadline=None)
@given(
    groups=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20),
    target=st.integers(min_value=0, max_value=3),
)
def test_filtered_search_never_leaks(groups, target):
    rng = np.random.default_rng(0)
    c = Collection(dim=DIM, overfetch=100.0)
    for i, g in enumerate(groups):
        c.add(f"v{i}", rng.normal(size=DIM), metadata={"g": g})
    report = c.search(rng.normal(size=DIM), k=len(groups), where={"g": target})
    assert all(h.metadata["g"] == target for h in report.hits)
    assert len(report.hits) == sum(1 for g in groups if g == target)


@settings(max_examples=50, deadline=None)
@given(
    value=st.integers(min_value=-100, max_value=100),
    low=st.integers(min_value=-100, max_value=100),
    high=st.integers(min_value=-100, max_value=100),
)
def test_filter_range_consistency(value, low, high):
    f = MetadataFilter({"x": {"gte": low, "lte": high}})
    assert f.matches({"x": value}) == (low <= value <= high)
