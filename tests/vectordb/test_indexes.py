"""Vector index tests: flat (exact), IVF and HNSW (approximate)."""

import numpy as np
import pytest

from repro.errors import CollectionError, DimensionMismatchError
from repro.vectordb import FlatIndex, HNSWIndex, IVFIndex, Metric


def make_data(n=200, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


@pytest.fixture(params=["flat", "ivf", "hnsw"])
def index_factory(request):
    def factory(dim=16):
        if request.param == "flat":
            return FlatIndex(dim)
        if request.param == "ivf":
            return IVFIndex(dim, nlist=8, nprobe=8)  # full probe = near exact
        return HNSWIndex(dim, m=8, ef_search=64)

    factory.kind = request.param
    return factory


class TestCommonBehavior:
    def test_add_and_len(self, index_factory):
        index = index_factory()
        index.add("a", np.ones(16))
        assert len(index) == 1
        assert "a" in index

    def test_duplicate_id_rejected(self, index_factory):
        index = index_factory()
        index.add("a", np.ones(16))
        with pytest.raises(CollectionError):
            index.add("a", np.zeros(16))

    def test_dimension_mismatch(self, index_factory):
        index = index_factory()
        with pytest.raises(DimensionMismatchError):
            index.add("a", np.ones(8))

    def test_get_roundtrip(self, index_factory):
        index = index_factory()
        vector = np.arange(16, dtype=float)
        index.add("a", vector)
        assert np.allclose(index.get("a"), vector)

    def test_get_unknown(self, index_factory):
        index = index_factory()
        with pytest.raises(CollectionError):
            index.get("ghost")

    def test_remove(self, index_factory):
        index = index_factory()
        index.add("a", np.ones(16))
        index.remove("a")
        assert "a" not in index
        with pytest.raises(CollectionError):
            index.remove("a")

    def test_search_empty(self, index_factory):
        index = index_factory()
        assert index.search(np.ones(16), k=3) == []

    def test_search_k_zero(self, index_factory):
        index = index_factory()
        index.add("a", np.ones(16))
        assert index.search(np.ones(16), k=0) == []

    def test_self_query_returns_self_first(self, index_factory):
        index = index_factory()
        data = make_data(50)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        hits = index.search(data[7], k=1)
        assert hits[0][0] == "v7"

    def test_scores_descend(self, index_factory):
        index = index_factory()
        for i, v in enumerate(make_data(60)):
            index.add(f"v{i}", v)
        hits = index.search(make_data(1, seed=9)[0], k=10)
        scores = [s for _i, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_allowed_ids_restrict(self, index_factory):
        index = index_factory()
        data = make_data(40)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        allowed = [f"v{i}" for i in range(5)]
        hits = index.search(data[30], k=10, allowed_ids=allowed)
        assert all(h[0] in allowed for h in hits)


class TestRecall:
    @pytest.mark.parametrize("kind", ["ivf", "hnsw"])
    def test_ann_recall_against_flat(self, kind):
        data = make_data(300, seed=3)
        flat = FlatIndex(16)
        ann = (
            IVFIndex(16, nlist=10, nprobe=5, seed=1)
            if kind == "ivf"
            else HNSWIndex(16, m=8, ef_search=48, seed=1)
        )
        for i, v in enumerate(data):
            flat.add(f"v{i}", v)
            ann.add(f"v{i}", v)
        rng = np.random.default_rng(5)
        recalls = []
        for _q in range(20):
            query = data[rng.integers(0, 300)] + rng.normal(scale=0.05, size=16)
            truth = {h[0] for h in flat.search(query, 10)}
            got = {h[0] for h in ann.search(query, 10)}
            recalls.append(len(truth & got) / 10)
        assert sum(recalls) / len(recalls) >= 0.8

    def test_ivf_nprobe_improves_recall(self):
        data = make_data(400, seed=7)
        flat = FlatIndex(16)
        narrow = IVFIndex(16, nlist=16, nprobe=1, seed=1)
        wide = IVFIndex(16, nlist=16, nprobe=16, seed=1)
        for i, v in enumerate(data):
            flat.add(f"v{i}", v)
            narrow.add(f"v{i}", v)
            wide.add(f"v{i}", v)
        rng = np.random.default_rng(11)
        narrow_recall = wide_recall = 0
        for _q in range(15):
            query = rng.normal(size=16)
            truth = {h[0] for h in flat.search(query, 10)}
            narrow_recall += len(truth & {h[0] for h in narrow.search(query, 10)})
            wide_recall += len(truth & {h[0] for h in wide.search(query, 10)})
        assert wide_recall >= narrow_recall
        assert wide_recall == 150  # full probe = exact


class TestFlatSpecifics:
    def test_compaction_preserves_results(self):
        index = FlatIndex(4)
        data = make_data(100, dim=4)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        for i in range(0, 80):
            index.remove(f"v{i}")
        assert len(index) == 20
        hits = index.search(data[90], k=1)
        assert hits[0][0] == "v90"

    def test_l2_metric(self):
        index = FlatIndex(2, metric=Metric.L2)
        index.add("near", np.array([1.0, 1.0]))
        index.add("far", np.array([10.0, 10.0]))
        hits = index.search(np.array([0.0, 0.0]), k=2)
        assert hits[0][0] == "near"

    def test_dot_metric(self):
        index = FlatIndex(2, metric=Metric.DOT)
        index.add("big", np.array([5.0, 5.0]))
        index.add("small", np.array([1.0, 1.0]))
        hits = index.search(np.array([1.0, 1.0]), k=2)
        assert hits[0][0] == "big"


class TestFlatTop1:
    def test_agrees_with_search_k1(self):
        index = FlatIndex(16)
        data = make_data(300, dim=16)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        for probe in make_data(25, dim=16, seed=3):
            (hit_id, hit_sim) = index.search(probe, k=1)[0]
            top = index.search_top1(probe)
            assert top[0] == hit_id
            assert top[1] == pytest.approx(hit_sim, abs=1e-9)

    def test_refine_exact_matches_scalar_linear_scan(self):
        from repro._util import cosine

        index = FlatIndex(16)
        data = make_data(200, dim=16, seed=5)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        for probe in make_data(10, dim=16, seed=7):
            best_id, best_sim = None, -1.0
            for i, v in enumerate(data):  # the reference Python loop
                sim = cosine(probe, v)
                if sim > best_sim:
                    best_sim, best_id = sim, f"v{i}"
            got_id, got_sim = index.search_top1(probe, refine_exact=True)
            assert got_id == best_id
            assert got_sim == best_sim  # bitwise, not approx

    def test_respects_tombstones(self):
        index = FlatIndex(4)
        index.add("a", np.array([1.0, 0, 0, 0]))
        index.add("b", np.array([0.9, 0.1, 0, 0]))
        assert index.search_top1(np.array([1.0, 0, 0, 0]))[0] == "a"
        index.remove("a")
        assert index.search_top1(np.array([1.0, 0, 0, 0]))[0] == "b"

    def test_empty_index_returns_none(self):
        assert FlatIndex(4).search_top1(np.ones(4)) is None

    def test_growth_preserves_vectors(self):
        # Force many doublings past the initial capacity.
        index = FlatIndex(8)
        data = make_data(67, dim=8, seed=9)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        for i, v in enumerate(data):
            assert np.array_equal(index.get(f"v{i}"), v)
        assert index.search_top1(data[66])[0] == "v66"

    def test_growth_after_compaction(self):
        index = FlatIndex(4)
        data = make_data(120, dim=4, seed=11)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        for i in range(100):
            index.remove(f"v{i}")
        for i in range(200, 240):
            index.add(f"v{i}", data[i - 200])
        assert len(index) == 60
        assert index.search_top1(data[119])[0] == "v119"


class TestIVFSpecifics:
    def test_train_on_empty_raises(self):
        with pytest.raises(CollectionError):
            IVFIndex(4).train()

    def test_lazy_training_on_search(self):
        index = IVFIndex(4, nlist=2)
        for i, v in enumerate(make_data(20, dim=4)):
            index.add(f"v{i}", v)
        assert not index.is_trained
        index.search(np.ones(4), k=1)
        assert index.is_trained

    def test_add_after_training_assigns(self):
        index = IVFIndex(4, nlist=2, nprobe=2)
        for i, v in enumerate(make_data(20, dim=4)):
            index.add(f"v{i}", v)
        index.train()
        index.add("late", np.ones(4) * 0.1)
        hits = index.search(np.ones(4) * 0.1, k=1)
        assert hits[0][0] == "late"


class TestHNSWSpecifics:
    def test_entry_point_survives_removal(self):
        index = HNSWIndex(4, seed=2)
        data = make_data(30, dim=4)
        for i, v in enumerate(data):
            index.add(f"v{i}", v)
        # Remove the current entry point, whatever it is.
        entry = index._entry
        index.remove(entry)
        hits = index.search(data[3], k=3)
        assert len(hits) == 3
        assert entry not in [h[0] for h in hits]

    def test_single_element(self):
        index = HNSWIndex(4)
        index.add("only", np.ones(4))
        assert index.search(np.ones(4), k=5) == [("only", pytest.approx(1.0))]
