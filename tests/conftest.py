"""Shared fixtures: expensive deterministic objects built once per session."""

from __future__ import annotations

import pytest

from repro.datasets.spider import build_concert_db
from repro.llm.client import LLMClient, default_world
from repro.sqldb import Database


@pytest.fixture(scope="session")
def world():
    """The shared synthetic world (also the default client knowledge)."""
    return default_world()


@pytest.fixture(scope="session")
def kb(world):
    return world.kb


@pytest.fixture()
def gpt4():
    """A fresh gpt-4-class client (strongest simulated model)."""
    return LLMClient(model="gpt-4")


@pytest.fixture()
def gpt35():
    return LLMClient(model="gpt-3.5-turbo")


@pytest.fixture()
def babbage():
    return LLMClient(model="babbage-002")


@pytest.fixture()
def concert_db():
    """A freshly built stadium/concert database (mutable per test)."""
    return build_concert_db(seed=0)


@pytest.fixture()
def people_db():
    """A small hand-built relational database for executor tests."""
    db = Database()
    db.execute(
        """
        CREATE TABLE person (id INTEGER PRIMARY KEY, name TEXT, age INTEGER, city TEXT);
        CREATE TABLE orders (order_id INTEGER PRIMARY KEY, person_id INTEGER, amount REAL);
        INSERT INTO person VALUES
            (1, 'ada', 36, 'london'),
            (2, 'bob', 29, 'paris'),
            (3, 'cyd', 41, 'london'),
            (4, 'dee', 29, NULL);
        INSERT INTO orders VALUES
            (10, 1, 25.0), (11, 1, 75.0), (12, 2, 10.0), (13, 3, 50.0);
        """
    )
    return db
