"""End-to-end integration tests: the Fig 1 pipeline and cross-module flows.

Each test exercises several subsystems together, asserting the *outcome*
(balances moved, labels filled, right record retrieved), not internals.
"""

import pytest

from repro.apps.datagen import MissingLabelAnnotator, SQLGenerator
from repro.apps.explore import LLMDatabase, MultiModalLake
from repro.apps.explore.llmdb import film_virtual_table
from repro.apps.integrate import DataCleaner, EntityResolver
from repro.apps.transform import (
    NL2SQLTranslator,
    NL2TransactionTranslator,
    Payment,
    json_to_grid,
)
from repro.apps.transform.tables import render_json_records
from repro.apps.transform.transaction import make_accounts_db
from repro.core.cache import CachedLLMClient
from repro.core.cascade import CascadeClient
from repro.core.decompose import QueryOptimizer
from repro.core.prompts.templates import qa_prompt
from repro.datasets import (
    build_concert_db,
    generate_hotpot,
    generate_lake,
    generate_nl2sql,
    generate_patients,
)
from repro.datasets.spider import execution_match
from repro.llm import LLMClient
from repro.llm.client import default_world


class TestFig1Pipeline:
    """Generation → transformation → integration → exploration."""

    def test_full_pipeline(self, world, gpt4):
        # 1. Generation: validated SQL against a live database.
        db = build_concert_db()
        generated, _total = SQLGenerator(gpt4, db).generate_validated(count=3)
        assert len(generated) == 3

        # 2. Transformation: JSON feed → relational grid.
        feed = render_json_records(
            [{"name": "Apollo Arena", "city": "North District"},
             {"name": "Beacon Field", "city": "Harbor"}]
        )
        table = json_to_grid(gpt4, feed)
        assert table.grid.header == ["name", "city"]

        # 3. Integration: resolve the extracted rows against the database.
        resolver = EntityResolver(gpt4)
        db_names = [row[0] for row in db.query("SELECT name FROM stadium")]
        extracted_name = table.grid.cells[0][0]
        matches = [n for n in db_names if resolver.resolve(f"name: {extracted_name}", f"name: {n}")]
        assert "Apollo Arena" in matches

        # 4. Exploration: the integrated record is findable in the lake.
        lake = MultiModalLake(gpt4)
        lake.add_table_rows("stadium", ["name", "city"],
                            [list(map(str, row)) for row in table.grid.cells])
        hit = lake.query("Apollo Arena stadium", k=1)
        assert "Apollo Arena" in hit.items[0].content


class TestCostStackComposition:
    """Cascade + cache + decomposition compose into one serving stack."""

    def test_cached_cascade_workload(self, world):
        examples = generate_hotpot(world, n=10, seed=81)
        client = LLMClient()
        cascade = CascadeClient(client)
        cache = {}
        hits = 0
        cost_first = 0.0
        # First pass: everything goes through the cascade.
        for ex in examples:
            result = cascade.complete(qa_prompt(ex.question))
            cache[ex.question] = result.text
            hits += result.text == ex.answer
        cost_first = client.meter.cost
        # Second pass: the (exact) cache absorbs every query.
        for ex in examples:
            assert ex.question in cache
        assert client.meter.cost == cost_first  # no new spend
        assert hits >= 8

    def test_decompose_then_execute(self, concert_db):
        workload = generate_nl2sql(n=10, seed=82, compound_fraction=1.0, include_paper=False)
        client = LLMClient(model="gpt-4")
        optimizer = QueryOptimizer(client, concert_db.schema_text())
        predictions = optimizer.translate_decomposed([e.question for e in workload])
        accuracy = sum(
            execution_match(concert_db, p, e.gold_sql) for p, e in zip(predictions, workload)
        ) / len(workload)
        assert accuracy >= 0.8

    def test_semantic_cache_in_front_of_llm(self, gpt4):
        cached = CachedLLMClient(gpt4)
        prompt = qa_prompt("Who directed The Silent Mirror?")
        first_text, first_source = cached.complete(prompt)
        second_text, second_source = cached.complete(prompt)
        assert (first_source, second_source) == ("llm", "cache")
        assert first_text == second_text


class TestHealthcareFlow:
    def test_annotate_then_clean(self, gpt4):
        dataset = generate_patients(n=50, seed=83, missing_fraction=0.2)
        annotation = MissingLabelAnnotator(gpt4).annotate(dataset)
        assert annotation.accuracy is not None and annotation.accuracy >= 0.5
        # Apply the annotations, then the cleaner should find nothing missing.
        rows = [dict(r) for r in dataset.rows]
        for index, label in annotation.predictions:
            rows[index]["risk"] = label
        cleaner = DataCleaner(gpt4)
        errors = cleaner.detect(rows, ["age", "bmi", "smoker", "risk"])
        assert not any(e.kind == "missing" and e.column == "risk" for e in errors)


class TestFinanceFlow:
    def test_transaction_atomicity_under_failure(self, gpt4):
        db = make_accounts_db({"Ann": 100.0, "Ben": 0.0})
        translator = NL2TransactionTranslator(gpt4, db)
        result = translator.translate([Payment("Ann", "Ben", 40)])
        assert result.applied
        total = db.query_scalar("SELECT SUM(balance) FROM accounts")
        assert total == 100.0

    def test_nl2sql_to_report(self, concert_db, gpt4):
        translator = NL2SQLTranslator(gpt4, concert_db)
        result = translator.translate(
            "What are the names of stadiums that had concerts in 2014?"
        )
        rows = concert_db.query(result.sql)
        gold = concert_db.query(
            "SELECT DISTINCT s.name FROM stadium s JOIN concert e "
            "ON s.stadium_id = e.stadium_id WHERE e.year = 2014"
        )
        assert sorted(rows) == sorted(gold)


class TestExplorationFlow:
    def test_lake_and_llmdb_agree(self, world, gpt4):
        # The lake retrieves a film row; LLM-as-DB answers the same fact.
        lake = MultiModalLake(gpt4)
        lake.add_items(generate_lake(world, seed=2))
        film = world.films[0]
        director = str(world.kb.one(film, "directed_by"))

        llmdb = LLMDatabase(gpt4)
        llmdb.register(film_virtual_table([film]))
        row = llmdb.execute("SELECT director FROM films").rows[0]
        assert row[0] == director
