"""Task engine tests: each engine derives the genuinely correct answer."""

import pytest

from repro.llm.engines import default_engines
from repro.llm.engines.base import GenericEngine, TaskContext, count_examples
from repro.llm.engines.classify import ColumnTypeEngine, LabelInferEngine
from repro.llm.engines.codegen import SNIPPET_LIBRARY, CodegenEngine
from repro.llm.engines.generate import SQLGenEngine
from repro.llm.engines.match import EntityMatchEngine, SchemaMatchEngine, record_similarity
from repro.llm.engines.nl2sql import NL2SQLEngine
from repro.llm.engines.patterns import PatternMineEngine, mine_pattern, pattern_matches
from repro.llm.engines.qa import QAEngine
from repro.llm.engines.regress import ValuePredictEngine
from repro.llm.engines.summarize import SummarizeEngine, describe_sql, serialize_row
from repro.llm.engines.transform import TableExtractEngine, parse_rendered_table, render_table


@pytest.fixture()
def ctx(world):
    return TaskContext(knowledge=world.kb, model_name="test")


class TestQAEngine:
    def test_one_hop_director(self, ctx, world):
        film = world.films[0]
        gold = world.kb.one(film, "directed_by")
        result = QAEngine().try_solve(f"Question: Who directed {film}?", ctx)
        assert result is not None
        assert result.answer == gold

    def test_two_hop_country_of_birth(self, ctx, world):
        person = world.people[0]
        city = world.kb.one(person, "born_in")
        country = world.kb.one(str(city), "located_in")
        result = QAEngine().try_solve(
            f"In which country is the city where {person} was born located?", ctx
        )
        assert result.answer == str(country)

    def test_two_hop_harder_than_one_hop(self, ctx, world):
        person = world.people[0]
        one_hop = QAEngine().try_solve(f"In which city was {person} born?", ctx)
        two_hop = QAEngine().try_solve(
            f"In which country is the city where {person} was born located?", ctx
        )
        assert two_hop.difficulty > one_hop.difficulty

    def test_comparison(self, ctx, world):
        a, b = world.people[0], world.people[1]
        ya, yb = world.kb.one(a, "born_year"), world.kb.one(b, "born_year")
        result = QAEngine().try_solve(f"Who was born earlier, {a} or {b}?", ctx)
        assert result.answer == (a if ya <= yb else b)

    def test_paraphrase_same_answer(self, ctx, world):
        a, b = world.people[2], world.people[3]
        canonical = QAEngine().try_solve(f"Who was born earlier, {a} or {b}?", ctx)
        rephrased = QAEngine().try_solve(f"Between {a} and {b}, who was born earlier?", ctx)
        assert canonical.answer == rephrased.answer

    def test_unknown_entity_answers_unknown(self, ctx):
        result = QAEngine().try_solve("Question: Who directed Completely Fake Film?", ctx)
        assert result.answer == "unknown"

    def test_distractors_same_type(self, ctx, world):
        film = world.films[0]
        result = QAEngine().try_solve(f"Who directed {film}?", ctx)
        for wrong in result.wrong_answers:
            assert wrong != result.answer
            assert world.kb.entity_types.get(wrong) == "person"

    def test_unmatched_prompt_returns_none(self, ctx):
        assert QAEngine().try_solve("please write a poem", ctx) is None


class TestNL2SQLEngine:
    def test_atomic(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of stadiums that had concerts in 2014?", ctx
        )
        assert "JOIN concert" in result.answer
        assert "2014" in result.answer

    def test_compound_ops(self, ctx):
        for connector, op in [("or had", "UNION"), ("and had", "INTERSECT"), ("but did not have", "EXCEPT")]:
            question = (
                "Question: Show the names of stadiums that had concerts in 2014 "
                f"{connector} sports meetings in 2015?"
            )
            result = NL2SQLEngine().try_solve(question, ctx)
            assert f" {op} " in result.answer

    def test_superlative(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of stadiums that had the most number of concerts in 2014?",
            ctx,
        )
        assert "ORDER BY COUNT(*) DESC LIMIT 1" in result.answer

    def test_compound_harder_than_atomic(self, ctx):
        atomic = NL2SQLEngine().try_solve(
            "Question: What are the names of stadiums that had concerts in 2014?", ctx
        )
        compound = NL2SQLEngine().try_solve(
            "Question: What are the names of stadiums that had concerts in 2014 "
            "or had sports meetings in 2015?",
            ctx,
        )
        assert compound.difficulty > atomic.difficulty

    def test_wrong_answers_differ_from_answer(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: Show the names of stadiums that had concerts in 2014 and had sports meetings in 2015?",
            ctx,
        )
        assert result.wrong_answers
        assert all(w != result.answer for w in result.wrong_answers)

    def test_capacity_filter(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Question: What are the names of stadiums with a capacity greater than 50000?", ctx
        )
        assert "capacity > 50000" in result.answer

    def test_count_question(self, ctx):
        result = NL2SQLEngine().try_solve("Question: How many concerts were held in 2015?", ctx)
        assert result.answer == "SELECT COUNT(*) FROM concert WHERE year = 2015"

    def test_transaction_scenario(self, ctx):
        result = NL2SQLEngine().try_solve(
            "Translate the scenario into an atomic SQL transaction over the schema.\n"
            "CREATE TABLE accounts (owner TEXT PRIMARY KEY, balance REAL);\n"
            "Scenario: Alice pays Bob $1000. Bob pays Express $5.",
            ctx,
        )
        assert result.answer.startswith("BEGIN")
        assert result.answer.rstrip().endswith("COMMIT;")
        assert result.answer.count("UPDATE accounts") == 4

    def test_uses_last_question_line(self, ctx):
        prompt = (
            "Example 1: Question: What are the names of stadiums that had concerts in 2013?\n"
            "SQL: SELECT 1\n"
            "Question: What are the names of stadiums that had concerts in 2016?"
        )
        result = NL2SQLEngine().try_solve(prompt, ctx)
        assert "2016" in result.answer
        assert "2013" not in result.answer


class TestMatchEngines:
    def test_clear_match(self, ctx):
        prompt = (
            "Are the following entity descriptions the same real-world entity?\n"
            "Entity A: name: Summit Bakery, street: 12 Main Street, city: Riverford\n"
            "Entity B: name: Summit Bakery, street: 12 Main St, city: Riverford\n"
            "Answer:"
        )
        result = EntityMatchEngine().try_solve(prompt, ctx)
        assert result.answer == "yes"

    def test_clear_non_match(self, ctx):
        prompt = (
            "Are the following entity descriptions the same real-world entity?\n"
            "Entity A: name: Summit Bakery, street: 12 Main Street, city: Riverford\n"
            "Entity B: name: Lakeside Robotics, street: 900 Harbor Road, city: Westdale\n"
            "Answer:"
        )
        result = EntityMatchEngine().try_solve(prompt, ctx)
        assert result.answer == "no"

    def test_borderline_is_harder(self, ctx):
        clear = EntityMatchEngine().try_solve(
            "Are the following entity descriptions the same real-world entity?\n"
            "Entity A: name: Summit Bakery\nEntity B: name: Summit Bakery\nAnswer:",
            ctx,
        )
        border = EntityMatchEngine().try_solve(
            "Are the following entity descriptions the same real-world entity?\n"
            "Entity A: name: Summit Bakery Riverford branch\n"
            "Entity B: name: Summit Bakehouse, city: Riverford\nAnswer:",
            ctx,
        )
        assert border.difficulty > clear.difficulty

    def test_abbreviation_expansion(self):
        assert record_similarity("12 Main Street", "12 Main St") > 0.9

    def test_schema_match(self, ctx):
        prompt = (
            "Do the following two columns refer to the same attribute? Answer yes or no.\n"
            "Column A (phone): 555-1234||555-9876\n"
            "Column B (phone_number): 555-1234||555-0000\n"
            "Answer:"
        )
        result = SchemaMatchEngine().try_solve(prompt, ctx)
        assert result.answer == "yes"

    def test_schema_mismatch(self, ctx):
        prompt = (
            "Do the following two columns refer to the same attribute? Answer yes or no.\n"
            "Column A (city): Riverford||Westdale\n"
            "Column B (price): 12.5||99.0\n"
            "Answer:"
        )
        result = SchemaMatchEngine().try_solve(prompt, ctx)
        assert result.answer == "no"


class TestClassifyEngines:
    def test_paper_example(self, ctx):
        prompt = (
            "Given the following column types: country, person, date, movie, sports.\n"
            "You need to predict the column type according to the column values.\n"
            "(1) USA||UK||France, this column type is country.\n"
            "(2) Michael Jackson||Beckham||Michael Jordan, this column type is person.\n"
            "Basketball||Badminton||Table Tennis, this column type is __."
        )
        result = ColumnTypeEngine().try_solve(prompt, ctx)
        assert result.answer == "sports"
        assert result.n_examples == 2

    def test_date_detection(self, ctx):
        prompt = (
            "Given the following column types: date, person.\n"
            "You need to predict the column type according to the column values.\n"
            "2021-03-04||1999-12-31||2010-07-15, this column type is __."
        )
        assert ColumnTypeEngine().try_solve(prompt, ctx).answer == "date"

    def test_gazetteer_country(self, ctx, world):
        values = "||".join(world.countries[:3])
        prompt = (
            "Given the following column types: country, city, team.\n"
            "You need to predict the column type according to the column values.\n"
            f"{values}, this column type is __."
        )
        assert ColumnTypeEngine().try_solve(prompt, ctx).answer == "country"

    def test_label_infer_majority(self, ctx):
        prompt = (
            "Predict the value of 'risk' for the last row.\n"
            "Row: age: 70; smoker: yes; risk: high\n"
            "Row: age: 65; smoker: yes; risk: high\n"
            "Row: age: 20; smoker: no; risk: low\n"
            "Row: age: 68; smoker: yes; risk: ?"
        )
        result = LabelInferEngine().try_solve(prompt, ctx)
        assert result.answer == "high"

    def test_label_infer_needs_examples(self, ctx):
        prompt = "Predict the value of 'risk' for the last row.\nRow: age: 68; risk: ?"
        assert LabelInferEngine().try_solve(prompt, ctx) is None


class TestValuePredict:
    def test_interpolates_neighbors(self, ctx):
        prompt = (
            "Predict the execution time in milliseconds.\n"
            "features: a=1 -> execution_time: 10.0\n"
            "features: a=3 -> execution_time: 30.0\n"
            "features: a=2 -> execution_time: ?"
        )
        result = ValuePredictEngine().try_solve(prompt, ctx)
        assert result.numeric
        assert 10.0 <= float(result.answer) <= 30.0

    def test_exact_neighbor_dominates(self, ctx):
        prompt = (
            "Predict the execution time in milliseconds.\n"
            "features: a=1, b=1 -> execution_time: 5.0\n"
            "features: a=9, b=9 -> execution_time: 90.0\n"
            "features: a=1, b=1 -> execution_time: ?"
        )
        result = ValuePredictEngine().try_solve(prompt, ctx)
        assert float(result.answer) == pytest.approx(5.0, rel=0.05)

    def test_more_examples_lower_difficulty(self, ctx):
        few = (
            "Predict the execution time in milliseconds.\n"
            "features: a=1 -> execution_time: 1.0\n"
            "features: a=2 -> execution_time: ?"
        )
        many = few.replace(
            "features: a=2 -> execution_time: ?",
            "features: a=3 -> execution_time: 3.0\n"
            "features: a=4 -> execution_time: 4.0\n"
            "features: a=5 -> execution_time: 5.0\n"
            "features: a=2 -> execution_time: ?",
        )
        assert (
            ValuePredictEngine().try_solve(many, ctx).difficulty
            < ValuePredictEngine().try_solve(few, ctx).difficulty
        )


class TestTransformEngine:
    def test_json_extraction(self, ctx):
        prompt = (
            "Extract a relational table from the following document.\n"
            '[{"name": "a", "qty": 1}, {"name": "b", "qty": 2}]'
        )
        result = TableExtractEngine().try_solve(prompt, ctx)
        columns, rows = parse_rendered_table(result.answer)
        assert columns == ["name", "qty"]
        assert rows == [["a", "1"], ["b", "2"]]

    def test_nested_json_flattened(self, ctx):
        prompt = (
            "Extract a relational table from the following document.\n"
            '[{"name": "a", "address": {"city": "X", "zip": "1"}}]'
        )
        result = TableExtractEngine().try_solve(prompt, ctx)
        columns, _rows = parse_rendered_table(result.answer)
        assert "address_city" in columns

    def test_xml_extraction(self, ctx):
        prompt = (
            "Extract a relational table from the following document.\n"
            "<items><item><name>a</name><qty>1</qty></item>"
            "<item><name>b</name><qty>2</qty></item></items>"
        )
        result = TableExtractEngine().try_solve(prompt, ctx)
        columns, rows = parse_rendered_table(result.answer)
        assert columns == ["name", "qty"]
        assert len(rows) == 2

    def test_render_parse_roundtrip(self):
        text = render_table(["a", "b"], [[1, "x"], [2, "y"]])
        columns, rows = parse_rendered_table(text)
        assert columns == ["a", "b"]
        assert rows == [["1", "x"], ["2", "y"]]

    def test_no_document_returns_none(self, ctx):
        assert TableExtractEngine().try_solve("Extract a relational table from this.", ctx) is None


class TestPatternEngine:
    def test_paper_date_pattern(self):
        # The tightest pattern keeps the constant "Aug" literal.
        assert mine_pattern(["Aug 14 2023", "Aug 02 2021"]) == "Aug <digit>{2} <digit>{4}"

    def test_varying_month(self):
        assert mine_pattern(["Aug 14 2023", "Sep 02 2021"]) == "<letter>{3} <digit>{2} <digit>{4}"

    def test_variable_length_digits(self):
        assert mine_pattern(["a1", "a22"]) == "a<digit>+"

    def test_shape_disagreement(self):
        assert mine_pattern(["a-b", "abc"]) is None

    def test_pattern_matches(self):
        pattern = "<letter>{3} <digit>{2} <digit>{4}"
        assert pattern_matches(pattern, "Oct 31 1999")
        assert not pattern_matches(pattern, "2023-10-31")

    def test_engine_end_to_end(self, ctx):
        prompt = "Mine the pattern of the following column values.\nValues: 555-1234||555-9999"
        result = PatternMineEngine().try_solve(prompt, ctx)
        assert result.answer == "555-<digit>{4}"


class TestCodegenEngine:
    def test_snippet_compiles_and_runs(self, ctx):
        for operation in SNIPPET_LIBRARY:
            prompt = f"Write Python code for the data preparation operation: {operation}"
            result = CodegenEngine().try_solve(prompt, ctx)
            namespace = {}
            exec(result.answer, namespace)
            assert operation in namespace

    def test_normalize_snippet_behavior(self, ctx):
        result = CodegenEngine().try_solve(
            "Write Python code for the data preparation operation: normalize", ctx
        )
        namespace = {}
        exec(result.answer, namespace)
        assert namespace["normalize"]([0.0, 5.0, 10.0]) == [0.0, 0.5, 1.0]

    def test_operator_synthesis(self, ctx):
        prompt = (
            "Synthesize the operator sequence to relationalize the following table.\n"
            "Has header: no\n"
            "Table:\n"
            "name | qty\n"
            "a | 1\n"
            "b | 2\n"
        )
        result = CodegenEngine().try_solve(prompt, ctx)
        assert "promote_header" in result.answer


class TestSummarizeEngine:
    def test_paper_example(self, ctx):
        prompt = (
            "Describe the following SQL query and its result in one sentence.\n"
            "SQL: SELECT AVG(salary) FROM employee\n"
            "Result: 500"
        )
        result = SummarizeEngine().try_solve(prompt, ctx)
        assert "average salary" in result.answer
        assert "employee" in result.answer
        assert "500" in result.answer

    def test_describe_sql_unsupported(self):
        assert describe_sql("not sql at all !!") is None

    def test_serialize_row(self):
        sentence = serialize_row("patients", "age: 40; smoker: no")
        assert "patients" in sentence
        assert "the age is 40" in sentence


class TestSQLGenEngine:
    def test_generates_requested_count(self, ctx):
        prompt = (
            "Generate 4 SQL queries over the following schema.\n"
            "CREATE TABLE customer (customer_id INTEGER PRIMARY KEY, name TEXT, age INTEGER);\n"
            "CREATE TABLE orders (order_id INTEGER PRIMARY KEY, customer_id INTEGER, amount REAL);\n"
            "Constraints: kinds=simple,join"
        )
        result = SQLGenEngine().try_solve(prompt, ctx)
        queries = [q for q in result.answer.split(";") if q.strip()]
        assert len(queries) == 4

    def test_generated_sql_parses(self, ctx):
        from repro.sqldb.parser import parse_sql

        prompt = (
            "Generate 6 SQL queries over the following schema.\n"
            "CREATE TABLE customer (customer_id INTEGER PRIMARY KEY, name TEXT, age INTEGER);\n"
            "CREATE TABLE orders (order_id INTEGER PRIMARY KEY, customer_id INTEGER, amount REAL);\n"
            "Constraints: kinds=simple,join,subquery,aggregate"
        )
        result = SQLGenEngine().try_solve(prompt, ctx)
        statements = parse_sql(result.answer)
        assert len(statements) == 6

    def test_no_schema_returns_none(self, ctx):
        assert SQLGenEngine().try_solve("Generate 3 SQL queries please", ctx) is None


class TestRoutingAndFallback:
    def test_chain_ends_with_generic(self):
        engines = default_engines()
        assert isinstance(engines[-1], GenericEngine)

    def test_generic_always_answers(self, ctx):
        result = GenericEngine().try_solve("anything at all", ctx)
        assert result is not None

    def test_count_examples(self):
        prompt = "Example 1: foo\nExample 2: bar\nQuestion: baz"
        assert count_examples(prompt) == 2
