"""Tokenizer, embedding model and knowledge base tests."""

import numpy as np
import pytest

from repro.llm import EmbeddingModel, count_tokens, embed_text, tokenize_text
from repro.llm.knowledge import KnowledgeBase, build_world


class TestTokenizer:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_single_word(self):
        assert count_tokens("cat") == 1

    def test_long_word_costs_more(self):
        assert count_tokens("internationalization") > count_tokens("cat")

    def test_monotone_in_length(self):
        short = "select name from stadium"
        assert count_tokens(short + " where year = 2014") > count_tokens(short)

    def test_punctuation_counted(self):
        assert count_tokens("a,b;c") == 5

    def test_numbers(self):
        assert count_tokens("2014") >= 1
        assert count_tokens("123456789") > count_tokens("12")

    def test_tokenize_pieces(self):
        assert tokenize_text("SELECT a, 12") == ["SELECT", "a", ",", "12"]

    def test_deterministic(self):
        text = "Question: Who directed the film?"
        assert count_tokens(text) == count_tokens(text)


class TestEmbeddings:
    def test_deterministic(self):
        assert np.allclose(embed_text("hello world"), embed_text("hello world"))

    def test_dimension(self):
        assert embed_text("x", dim=32).shape == (32,)

    def test_empty_text_zero_vector(self):
        assert np.allclose(embed_text(""), np.zeros(64))

    def test_unit_norm(self):
        assert np.linalg.norm(embed_text("some interesting words")) == pytest.approx(1.0)

    def test_paraphrase_closer_than_unrelated(self):
        a = embed_text("Who was born earlier, Alice or Bob?")
        b = embed_text("Between Alice and Bob, who was born earlier?")
        c = embed_text("transpose the spreadsheet and promote the header")
        assert float(a @ b) > float(a @ c) + 0.2

    def test_batch_shape(self):
        model = EmbeddingModel(dim=16)
        out = model.embed_batch(["a b", "c d", "e f"])
        assert out.shape == (3, 16)

    def test_batch_empty(self):
        assert EmbeddingModel(dim=16).embed_batch([]).shape == (0, 16)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            EmbeddingModel(dim=0)

    def test_memo_returns_identical_values(self):
        model = EmbeddingModel(dim=32)
        first = model.embed("repeated query about stadium concerts")
        second = model.embed("repeated query about stadium concerts")
        assert np.array_equal(first, embed_text("repeated query about stadium concerts", dim=32))
        assert second is first  # memo hit: no recompute, no copy

    def test_memo_is_bounded_lru(self):
        model = EmbeddingModel(dim=16, memo_size=4)
        for i in range(10):
            model.embed(f"query number {i}")
        assert len(model._memo) == 4
        assert "query number 9" in model._memo
        assert "query number 0" not in model._memo

    def test_memo_vectors_are_read_only(self):
        model = EmbeddingModel(dim=16)
        vec = model.embed("some words here")
        with pytest.raises(ValueError):
            vec[0] = 99.0

    def test_memo_disabled(self):
        model = EmbeddingModel(dim=16, memo_size=0)
        a = model.embed("hello there")
        b = model.embed("hello there")
        assert a is not b
        assert np.array_equal(a, b)

    def test_invalid_memo_size(self):
        with pytest.raises(ValueError):
            EmbeddingModel(dim=16, memo_size=-1)


class TestKnowledgeBase:
    def test_add_and_query(self):
        kb = KnowledgeBase()
        kb.add("A", "likes", "B")
        kb.add("A", "likes", "C")
        kb.add("B", "likes", "C")
        assert len(kb.query(subject="A")) == 2
        assert len(kb.query(relation="likes")) == 3
        assert len(kb.query(subject="A", obj="C")) == 1

    def test_one(self):
        kb = KnowledgeBase()
        kb.add("film", "directed_by", "person")
        assert kb.one("film", "directed_by") == "person"
        assert kb.one("film", "starred") is None

    def test_subject_lookup_case_insensitive(self):
        kb = KnowledgeBase()
        kb.add("The Film", "released_in", 1999)
        assert kb.one("the film", "released_in") == 1999

    def test_subjects_with(self):
        kb = KnowledgeBase()
        kb.add("f1", "starred", "actor")
        kb.add("f2", "starred", "actor")
        kb.add("f3", "starred", "other")
        assert sorted(kb.subjects_with("starred", "actor")) == ["f1", "f2"]

    def test_entity_types(self):
        kb = KnowledgeBase()
        kb.add("Paris", "located_in", "France", subject_type="city")
        assert kb.entities_of_type("city") == ["Paris"]


class TestWorldGeneration:
    def test_deterministic(self):
        w1, w2 = build_world(seed=5), build_world(seed=5)
        assert w1.people == w2.people
        assert w1.films == w2.films
        assert [str(f) for f in w1.kb.facts] == [str(f) for f in w2.kb.facts]

    def test_different_seeds_differ(self):
        assert build_world(seed=1).people != build_world(seed=2).people

    def test_sizes(self):
        world = build_world(seed=0, n_people=30, n_films=10, n_teams=5, n_cities=8)
        assert len(world.people) == 30
        assert len(world.films) == 10
        assert len(world.teams) == 5
        assert len(world.cities) == 8

    def test_relational_integrity(self, world):
        kb = world.kb
        for film in world.films:
            director = kb.one(film, "directed_by")
            assert director in world.people
            assert kb.one(director, "profession") == "director"
        for city in world.cities:
            assert kb.one(city, "located_in") in world.countries

    def test_every_person_has_birth_facts(self, world):
        for person in world.people:
            assert world.kb.one(person, "born_in") in world.cities
            assert isinstance(world.kb.one(person, "born_year"), int)

    def test_athletes_have_teams(self, world):
        athletes = [p for p in world.people if world.kb.one(p, "profession") == "athlete"]
        assert athletes
        for athlete in athletes:
            assert world.kb.one(athlete, "plays_for") in world.teams
