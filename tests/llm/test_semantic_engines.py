"""Engines backing the SQL semantic operators (SEMANTIC_FILTER / LLM_EXTRACT)."""

import pytest

from repro.llm.engines.base import TaskContext, default_engines
from repro.llm.engines.semantic_ops import (
    FieldExtractEngine,
    SemanticPredicateEngine,
    predicate_coverage,
)
from repro.sqldb.semantic import extract_prompt, filter_prompt


@pytest.fixture
def ctx(world):
    return TaskContext(knowledge=world.kb, model_name="test")


class TestSemanticPredicateEngine:
    def test_registered_by_default(self):
        names = [engine.name for engine in default_engines()]
        assert "semantic_predicate" in names
        assert "field_extract" in names

    def test_ignores_unrelated_prompts(self, ctx):
        engine = SemanticPredicateEngine()
        assert engine.try_solve("What is the capital of France?", ctx) is None

    def test_covered_predicate_is_yes(self, ctx):
        engine = SemanticPredicateEngine()
        prompt = filter_prompt("mentions a refund", "I asked for a refund twice")
        result = engine.try_solve(prompt, ctx)
        assert result is not None
        assert result.answer == "yes"
        assert "no" in result.wrong_answers

    def test_uncovered_predicate_is_no(self, ctx):
        engine = SemanticPredicateEngine()
        prompt = filter_prompt("mentions a refund", "great battery and fast shipping")
        assert engine.try_solve(prompt, ctx).answer == "no"

    def test_negated_predicate_flips(self, ctx):
        engine = SemanticPredicateEngine()
        covered = filter_prompt("does not mention a refund", "great battery life")
        assert engine.try_solve(covered, ctx).answer == "yes"
        uncovered = filter_prompt("does not mention a refund", "refund please")
        assert engine.try_solve(uncovered, ctx).answer == "no"

    def test_deterministic(self, ctx):
        engine = SemanticPredicateEngine()
        prompt = filter_prompt("mentions a refund", "refund refund refund")
        assert engine.try_solve(prompt, ctx).answer == engine.try_solve(prompt, ctx).answer

    def test_coverage_ignores_stopwords(self):
        full = predicate_coverage("mentions a refund", "refund refund")
        assert full == predicate_coverage("refund", "refund refund")
        assert predicate_coverage("mentions a refund", "nothing here") == 0.0


class TestFieldExtractEngine:
    def test_ignores_unrelated_prompts(self, ctx):
        engine = FieldExtractEngine()
        assert engine.try_solve("Summarize this document.", ctx) is None

    def test_pulls_field_from_pairs(self, ctx):
        engine = FieldExtractEngine()
        record = "name: Acme Laptop; category: electronics; year: 2021"
        assert engine.try_solve(extract_prompt(record, "year"), ctx).answer == "2021"
        assert (
            engine.try_solve(extract_prompt(record, "category"), ctx).answer
            == "electronics"
        )

    def test_shape_fallback_year(self, ctx):
        engine = FieldExtractEngine()
        prompt = extract_prompt("released back in 2019 to great acclaim", "year")
        assert engine.try_solve(prompt, ctx).answer == "2019"

    def test_missing_field_is_unknown(self, ctx):
        engine = FieldExtractEngine()
        prompt = extract_prompt("name: Acme; category: electronics", "warranty")
        assert engine.try_solve(prompt, ctx).answer == "unknown"
