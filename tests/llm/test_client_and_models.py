"""LLM client contract: determinism, metering, budgets, capability."""

import numpy as np
import pytest

from repro.errors import BudgetExceededError, ContextLengthExceededError, UnknownModelError
from repro.llm import LLMClient, MODEL_REGISTRY, count_tokens, get_model, list_models
from repro.llm.client import Usage, UsageMeter


class TestModelRegistry:
    def test_known_models(self):
        for name in ("babbage-002", "gpt-3.5-turbo", "gpt-4", "local-7b"):
            assert name in MODEL_REGISTRY

    def test_unknown_model(self):
        with pytest.raises(UnknownModelError):
            get_model("gpt-99")

    def test_paper_prices(self):
        # Section III-B1 quotes these input prices verbatim.
        assert get_model("gpt-3.5-turbo").input_price_per_1k == 0.001
        assert get_model("gpt-4").input_price_per_1k == 0.03

    def test_capability_ordering_matches_price_ordering(self):
        cheap_to_pricey = list_models()
        paid = [m for m in cheap_to_pricey if m.input_price_per_1k > 0]
        capabilities = [m.capability for m in paid]
        assert capabilities == sorted(capabilities)

    def test_cost_formula(self):
        spec = get_model("gpt-4")
        assert spec.cost(1000, 1000) == pytest.approx(0.03 + 0.06)

    def test_latency_positive(self):
        assert get_model("gpt-4").latency_ms(100, 50) > 0


class TestDeterminism:
    def test_same_prompt_same_output(self):
        a = LLMClient(model="gpt-3.5-turbo").complete("Question: Who directed The Silent Mirror?")
        b = LLMClient(model="gpt-3.5-turbo").complete("Question: Who directed The Silent Mirror?")
        assert a.text == b.text
        assert a.confidence == b.confidence

    def test_different_seeds_can_differ(self):
        prompt = "Question: Who directed the film that starred Torus Nashgate?"
        texts = {
            LLMClient(model="babbage-002", seed=s).complete(prompt).text for s in range(8)
        }
        assert len(texts) > 1  # weak model on a hard query: seeds disagree

    def test_different_models_metered_separately(self):
        client = LLMClient()
        client.complete("Question: test one", model="gpt-4")
        client.complete("Question: test two", model="babbage-002")
        assert set(client.meter.per_model) == {"gpt-4", "babbage-002"}


class TestMetering:
    def test_cost_accrues(self):
        client = LLMClient(model="gpt-4")
        before = client.meter.cost
        completion = client.complete("Question: what is the capital?")
        assert completion.cost > 0
        assert client.meter.cost == pytest.approx(before + completion.cost)

    def test_usage_tokens_match_texts(self):
        client = LLMClient(model="gpt-4")
        prompt = "Question: Who directed The Silent Mirror?"
        completion = client.complete(prompt)
        assert completion.usage.prompt_tokens == count_tokens(prompt)
        assert completion.usage.completion_tokens == count_tokens(completion.text)

    def test_meter_reset(self):
        client = LLMClient()
        client.complete("Question: anything")
        client.meter.reset()
        assert client.meter.calls == 0
        assert client.meter.cost == 0.0

    def test_usage_meter_totals(self):
        meter = UsageMeter()
        meter.record("m", Usage(10, 5), 0.01)
        meter.record("m", Usage(20, 5), 0.02)
        assert meter.calls == 2
        assert meter.prompt_tokens == 30
        assert meter.per_model["m"]["calls"] == 2


class TestLimits:
    def test_context_window_enforced(self):
        client = LLMClient(model="babbage-002")
        huge = "word " * 10_000
        with pytest.raises(ContextLengthExceededError):
            client.complete(huge)

    def test_budget_enforced_before_spending(self):
        client = LLMClient(model="gpt-4", budget_usd=0.000001)
        with pytest.raises(BudgetExceededError):
            client.complete("Question: too expensive?")
        assert client.meter.calls == 0  # nothing was recorded


class TestCapabilityModel:
    def test_capability_monotone_accuracy(self, world):
        from repro.datasets import generate_hotpot

        examples = generate_hotpot(world, n=30, seed=4)
        accuracies = []
        for model in ("babbage-002", "gpt-3.5-turbo", "gpt-4"):
            client = LLMClient(model=model)
            hits = sum(
                1 for ex in examples if client.complete("Question: " + ex.question).text == ex.answer
            )
            accuracies.append(hits / len(examples))
        assert accuracies[0] < accuracies[1] < accuracies[2]

    def test_confidence_in_range(self):
        client = LLMClient()
        completion = client.complete("Question: Who directed The Silent Mirror?")
        assert 0.0 < completion.confidence < 1.0

    def test_engine_attribution(self):
        client = LLMClient()
        assert client.complete("Question: Who directed The Silent Mirror?").engine == "qa"
        assert client.complete("unrelated rambling text with no task").engine == "generic"


class TestBatch:
    def test_batch_refunds_shared_prefix(self):
        prefix = "Shared schema context. " * 30
        items = [f"Question: Who directed The Silent Mirror? v{i}" for i in range(3)]

        separate = LLMClient(model="gpt-4")
        for item in items:
            separate.complete(prefix + item)

        batched = LLMClient(model="gpt-4")
        completions = batched.complete_batch(prefix, items)

        assert len(completions) == 3
        prefix_tokens = count_tokens(prefix)
        expected_savings = get_model("gpt-4").cost(prefix_tokens, 0) * 2
        assert batched.meter.cost == pytest.approx(separate.meter.cost - expected_savings)

    def test_batch_answers_match_individual(self):
        prefix = "Answer the question with a single name or value.\n"
        item = "Question: Who directed The Silent Mirror?"
        single = LLMClient(model="gpt-4").complete(prefix + item)
        batch = LLMClient(model="gpt-4").complete_batch(prefix, [item])
        assert batch[0].text == single.text


class TestEmbedding:
    def test_embed_unit_norm(self):
        client = LLMClient()
        vec = client.embed("some text about stadium concerts")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_similar_texts_closer(self):
        client = LLMClient()
        a = client.embed("stadiums that had concerts in 2014")
        b = client.embed("stadiums that had concerts in 2015")
        c = client.embed("differential privacy noise calibration")
        assert float(a @ b) > float(a @ c)
