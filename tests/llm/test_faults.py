"""Deterministic fault injection: seeded draws, per-model rates, reseeding."""

import pytest

from repro.errors import (
    RateLimitError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    TransientLLMError,
)
from repro.llm import FAULT_KINDS, FaultInjectingProvider, LLMClient, resolve_model_name

PROMPTS = [f"Question: what is item {i}?" for i in range(60)]


def failing_prompts(provider):
    failed = []
    for prompt in PROMPTS:
        try:
            provider.complete(prompt)
        except TransientLLMError:
            failed.append(prompt)
    return failed


class TestDeterminism:
    def test_same_seed_replays_identical_faults(self):
        first = FaultInjectingProvider(LLMClient(), default_rate=0.2, seed=9)
        second = FaultInjectingProvider(LLMClient(), default_rate=0.2, seed=9)
        assert failing_prompts(first) == failing_prompts(second)
        assert first.injected == second.injected
        assert first.total_injected > 0

    def test_fault_kind_and_latency_are_stable(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=1.0, seed=3)
        kinds = dict(FAULT_KINDS)
        with pytest.raises(TransientLLMError) as excinfo:
            provider.complete(PROMPTS[0])
        first = excinfo.value
        assert first.latency_ms == kinds[type(first)]
        assert first.model == "gpt-3.5-turbo"  # the client's default model
        with pytest.raises(type(first)):  # same prompt, same kind, every time
            provider.complete(PROMPTS[0])

    def test_different_seeds_draw_different_fault_sets(self):
        a = FaultInjectingProvider(LLMClient(), default_rate=0.2, seed=1)
        b = FaultInjectingProvider(LLMClient(), default_rate=0.2, seed=2)
        assert failing_prompts(a) != failing_prompts(b)

    def test_rate_zero_is_invisible(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=0.0, seed=5)
        bare = LLMClient()
        for prompt in PROMPTS[:5]:
            assert provider.complete(prompt) == bare.complete(prompt)
        assert provider.total_injected == 0

    def test_observed_rate_tracks_configured_rate(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=0.15, seed=11)
        observed = len(failing_prompts(provider)) / len(PROMPTS)
        assert abs(observed - 0.15) < 0.1


class TestPerModelRates:
    def test_only_the_listed_model_faults(self):
        provider = FaultInjectingProvider(
            LLMClient(), rates={"gpt-4": 1.0}, default_rate=0.0, seed=0
        )
        provider.complete(PROMPTS[0], model="babbage-002")  # fine
        with pytest.raises(TransientLLMError) as excinfo:
            provider.complete(PROMPTS[0], model="gpt-4")
        assert excinfo.value.model == "gpt-4"
        assert provider.rate_for("gpt-4") == 1.0
        assert provider.rate_for("babbage-002") == 0.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjectingProvider(LLMClient(), default_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingProvider(LLMClient(), rates={"gpt-4": -0.1})


class TestBatches:
    def test_batch_faults_as_a_unit(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=1.0, seed=0)
        with pytest.raises(TransientLLMError):
            provider.complete_batch("Prefix.\n", ["Question: A?", "Question: B?"])
        assert provider.total_injected == 1  # one draw for the whole batch

    def test_surviving_batch_is_untouched(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=0.0, seed=0)
        bare = LLMClient()
        items = ["Question: A?", "Question: B?"]
        assert provider.complete_batch("P.\n", items) == bare.complete_batch("P.\n", items)


class TestReseeded:
    def test_reseeded_shifts_the_fault_stream(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=0.25, seed=7)
        sibling = provider.reseeded(1)
        assert sibling.seed == provider.seed + 1
        assert failing_prompts(provider) != failing_prompts(sibling)

    def test_reseeded_sibling_shares_the_tally(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=1.0, seed=7)
        sibling = provider.reseeded(1)
        with pytest.raises(TransientLLMError):
            provider.complete(PROMPTS[0])
        with pytest.raises(TransientLLMError):
            sibling.complete(PROMPTS[0])
        assert provider.total_injected == 2
        assert provider.injected is sibling.injected

    def test_reseeded_shifts_the_inner_provider_too(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=0.0, seed=0)
        sibling = provider.reseeded(3)
        assert sibling.inner.seed == provider.inner.seed + 3

    def test_embed_passes_through(self):
        provider = FaultInjectingProvider(LLMClient(), default_rate=1.0, seed=0)
        assert (provider.embed("hello") == LLMClient().embed("hello")).all()


class TestResolveModelName:
    def test_explicit_model_wins(self):
        assert resolve_model_name(LLMClient(), "gpt-4") == "gpt-4"

    def test_walks_the_middleware_chain_to_the_client_default(self):
        from repro.serving import MetricsMiddleware, ServiceStats

        stats = ServiceStats()
        stacked = MetricsMiddleware(
            LLMClient(model="babbage-002"), stats=stats
        )
        assert resolve_model_name(stacked, None) == "babbage-002"

    def test_no_default_anywhere_falls_back(self):
        assert resolve_model_name(object(), None) == "default"


def test_error_hierarchy():
    for cls in (RateLimitError, ServiceTimeoutError, ServiceUnavailableError):
        assert issubclass(cls, TransientLLMError)
    error = RateLimitError("429", model="gpt-4", latency_ms=5.0)
    assert (error.model, error.latency_ms) == ("gpt-4", 5.0)
