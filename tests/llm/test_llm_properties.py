"""Property-based tests for LLM substrate invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import cosine
from repro.llm import LLMClient, count_tokens, embed_text
from repro.llm.engines.patterns import mine_pattern, pattern_matches

printable_text = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Zs"), whitelist_characters="-/.,"),
    min_size=0,
    max_size=60,
)

value_text = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="-/ ."),
    min_size=1,
    max_size=20,
)


@settings(max_examples=50, deadline=None)
@given(a=printable_text, b=printable_text)
def test_token_count_subadditive_and_monotone(a, b):
    combined = count_tokens(a + " " + b)
    assert combined >= max(count_tokens(a), count_tokens(b))
    assert combined <= count_tokens(a) + count_tokens(b) + 1


@settings(max_examples=50, deadline=None)
@given(text=printable_text)
def test_token_count_deterministic_and_nonnegative(text):
    assert count_tokens(text) == count_tokens(text)
    assert count_tokens(text) >= 0


@settings(max_examples=30, deadline=None)
@given(text=printable_text)
def test_embedding_self_similarity(text):
    vec = embed_text(text)
    if vec.any():
        assert cosine(vec, vec) > 0.999


@settings(max_examples=30, deadline=None)
@given(values=st.lists(value_text, min_size=1, max_size=8))
def test_mined_pattern_matches_every_input(values):
    pattern = mine_pattern(values)
    if pattern is None or pattern == "no common pattern":
        return
    for value in values:
        assert pattern_matches(pattern, value), (pattern, value)


@settings(max_examples=15, deadline=None)
@given(seedling=st.integers(min_value=0, max_value=10_000))
def test_completion_determinism_across_instances(seedling):
    prompt = f"Question: Who directed The Silent Mirror? (case {seedling})"
    a = LLMClient(model="gpt-3.5-turbo").complete(prompt)
    b = LLMClient(model="gpt-3.5-turbo").complete(prompt)
    assert a.text == b.text
    assert a.cost == b.cost
    assert a.confidence == b.confidence
