"""Determinism of the simulated LLM's randomness source.

The serving stack (semantic cache, cascade, retry-with-reseed) only
reproduces the paper's tables because `LLMClient._draws` is a pure
function of (seed, model, prompt). These properties pin that contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import LLMClient

MODELS = ["babbage-002", "gpt-3.5-turbo", "gpt-4"]

prompt_text = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Zs"), whitelist_characters="?:.-"),
    min_size=1,
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), model=st.sampled_from(MODELS), prompt=prompt_text)
def test_draws_identical_across_fresh_instances(seed, model, prompt):
    a = LLMClient(model=model, seed=seed)
    b = LLMClient(model=model, seed=seed)
    assert a._draws(model, prompt) == b._draws(model, prompt)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    delta=st.integers(min_value=1, max_value=1_000),
    model=st.sampled_from(MODELS),
    prompt=prompt_text,
)
def test_draws_differ_across_seeds(seed, delta, model, prompt):
    a = LLMClient(model=model, seed=seed)
    b = LLMClient(model=model, seed=seed + delta)
    assert a._draws(model, prompt) != b._draws(model, prompt)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), model=st.sampled_from(MODELS))
def test_completions_identical_across_fresh_instances(seed, model):
    prompt = "Question: Who directed The Silent Mirror?"
    a = LLMClient(model=model, seed=seed).complete(prompt)
    b = LLMClient(model=model, seed=seed).complete(prompt)
    assert (a.text, a.confidence, a.cost, a.usage) == (b.text, b.confidence, b.cost, b.usage)


def test_reseeded_shifts_the_seed_and_shares_the_meter():
    client = LLMClient(model="gpt-3.5-turbo", seed=7)
    sibling = client.reseeded(3)
    assert sibling.seed == 10
    assert sibling.meter is client.meter
    assert sibling.default_model is client.default_model
    prompt = "Question: Who directed The Glass Harbor?"
    assert sibling._draws("gpt-3.5-turbo", prompt) == LLMClient(
        model="gpt-3.5-turbo", seed=10
    )._draws("gpt-3.5-turbo", prompt)
    # offset 0 reproduces the original draws exactly
    assert client.reseeded(0)._draws("gpt-3.5-turbo", prompt) == client._draws(
        "gpt-3.5-turbo", prompt
    )
