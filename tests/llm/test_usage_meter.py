"""UsageMeter accounting and the shared-prefix refund in batched calls."""

import dataclasses

import pytest

from repro.errors import BudgetExceededError
from repro.llm.client import Completion, LLMClient, Usage, UsageMeter
from repro.llm.models import get_model
from repro.llm.tokenizer import count_tokens


class TestUsageMeter:
    def test_record_accumulates_totals_and_per_model(self):
        meter = UsageMeter()
        meter.record("gpt-4", Usage(prompt_tokens=100, completion_tokens=10), 0.5)
        meter.record("gpt-4", Usage(prompt_tokens=50, completion_tokens=5), 0.25)
        meter.record("babbage-002", Usage(prompt_tokens=10, completion_tokens=1), 0.01)
        assert meter.calls == 3
        assert meter.prompt_tokens == 160
        assert meter.completion_tokens == 16
        assert meter.cost == pytest.approx(0.76)
        assert meter.per_model["gpt-4"]["calls"] == 2
        assert meter.per_model["gpt-4"]["prompt_tokens"] == 150

    def test_refund_reverses_prompt_tokens_and_cost(self):
        meter = UsageMeter()
        meter.record("gpt-4", Usage(prompt_tokens=100, completion_tokens=10), 0.5)
        meter.refund("gpt-4", 40, 0.2)
        assert meter.calls == 1  # refunds never change call counts
        assert meter.prompt_tokens == 60
        assert meter.completion_tokens == 10
        assert meter.cost == pytest.approx(0.3)
        assert meter.per_model["gpt-4"]["prompt_tokens"] == 60
        assert meter.per_model["gpt-4"]["cost"] == pytest.approx(0.3)

    def test_record_refund_round_trip_is_identity(self):
        meter = UsageMeter()
        meter.record("gpt-4", Usage(prompt_tokens=80, completion_tokens=8), 0.4)
        before = (meter.prompt_tokens, meter.cost, dict(meter.per_model["gpt-4"]))
        meter.record("gpt-4", Usage(prompt_tokens=30, completion_tokens=0), 0.1)
        meter.refund("gpt-4", 30, 0.1)
        meter.calls -= 1  # undo the extra call to compare pure token/cost state
        assert meter.prompt_tokens == before[0]
        assert meter.cost == pytest.approx(before[1])
        assert meter.per_model["gpt-4"]["prompt_tokens"] == before[2]["prompt_tokens"]
        assert meter.per_model["gpt-4"]["cost"] == pytest.approx(before[2]["cost"])

    def test_refund_unknown_model_raises_and_leaves_ledger_clean(self):
        # The seed bug: refunding a never-recorded model silently *created*
        # a per-model entry with negative totals. The contract now: a
        # refund must reverse an earlier record, anything else is an error.
        meter = UsageMeter()
        meter.record("gpt-4", Usage(prompt_tokens=100, completion_tokens=10), 0.5)
        with pytest.raises(ValueError, match="no recorded usage"):
            meter.refund("babbage-002", 40, 0.2)
        assert "babbage-002" not in meter.per_model  # no phantom entry
        assert meter.prompt_tokens == 100  # totals untouched
        assert meter.cost == pytest.approx(0.5)

    def test_refund_unknown_model_on_empty_meter_raises(self):
        with pytest.raises(ValueError):
            UsageMeter().refund("gpt-4", 1, 0.01)

    def test_report_contains_totals_and_models(self):
        meter = UsageMeter()
        meter.record("gpt-4", Usage(prompt_tokens=100, completion_tokens=10), 0.5)
        meter.refund("gpt-4", 40, 0.2)
        report = meter.report()
        assert "TOTAL" in report and "gpt-4" in report
        assert "60" in report  # refunded prompt tokens

    def test_reset_zeroes_everything(self):
        meter = UsageMeter()
        meter.record("gpt-4", Usage(prompt_tokens=100, completion_tokens=10), 0.5)
        meter.reset()
        assert meter.calls == 0
        assert meter.prompt_tokens == 0
        assert meter.cost == 0.0
        assert not meter.per_model


class TestCompletionHelpers:
    def test_with_usage_rewrites_metering_only(self):
        completion = Completion(
            text="42",
            model="gpt-4",
            usage=Usage(prompt_tokens=10, completion_tokens=2),
            cost=0.1,
            latency_ms=5.0,
            confidence=0.9,
            engine="qa",
        )
        rewritten = completion.with_usage(Usage(prompt_tokens=4, completion_tokens=2), 0.04)
        assert rewritten.text == completion.text
        assert rewritten.usage.prompt_tokens == 4
        assert rewritten.cost == pytest.approx(0.04)
        assert rewritten.latency_ms == completion.latency_ms
        # extra fields pass through dataclasses.replace
        relabelled = completion.with_usage(completion.usage, 0.0, latency_ms=0.0)
        assert relabelled.latency_ms == 0.0
        assert dataclasses.is_dataclass(relabelled)


class TestBatchBudget:
    WORKLOAD = dict(
        shared_prefix="Answer the question with a single name or value.\n"
        "Context: stadium capacity figures for the 2014 season are listed below.\n",
        items=[
            "Question: Who directed The Silent Mirror?",
            "Question: Who directed The Glass Harbor?",
            "Question: Who directed The Paper Sky?",
        ],
    )

    def _net_and_gross(self):
        client = LLMClient(model="gpt-3.5-turbo")
        completions = client.complete_batch(**self.WORKLOAD)
        net = client.meter.cost
        spec = get_model("gpt-3.5-turbo")
        prefix_cost = spec.cost(count_tokens(self.WORKLOAD["shared_prefix"]), 0)
        gross = net + (len(self.WORKLOAD["items"]) - 1) * prefix_cost
        return completions, net, gross

    def test_net_budget_batch_does_not_raise(self):
        # The seed bug: the per-call budget check ran before the refund, so
        # a batch whose *net* cost fits the budget still raised.
        completions, net, gross = self._net_and_gross()
        assert gross > net  # the refund is real money on this workload
        budgeted = LLMClient(model="gpt-3.5-turbo", budget_usd=net * 1.001)
        result = budgeted.complete_batch(**self.WORKLOAD)
        assert [c.text for c in result] == [c.text for c in completions]
        assert budgeted.meter.cost == pytest.approx(net)

    def test_budget_below_net_still_raises(self):
        _completions, net, _gross = self._net_and_gross()
        budgeted = LLMClient(model="gpt-3.5-turbo", budget_usd=net * 0.5)
        with pytest.raises(BudgetExceededError):
            budgeted.complete_batch(**self.WORKLOAD)

    def test_batch_completions_carry_net_metering(self):
        completions, net, _gross = self._net_and_gross()
        assert sum(c.cost for c in completions) == pytest.approx(net)
        prefix_tokens = count_tokens(self.WORKLOAD["shared_prefix"])
        # Item 0 pays for the shared prefix; the rest are metered net of it.
        full = [
            count_tokens(self.WORKLOAD["shared_prefix"] + item)
            for item in self.WORKLOAD["items"]
        ]
        assert completions[0].usage.prompt_tokens == full[0]
        for completion, full_tokens in zip(completions[1:], full[1:]):
            assert completion.usage.prompt_tokens == full_tokens - prefix_tokens
