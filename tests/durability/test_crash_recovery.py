"""Kill the stack at every crash index; recovery must be bit-identical.

The reference is an uncrashed run. Every sweep run dies mid-stream via
:class:`~repro.llm.faults.CrashPoint`, is recovered from its durable
directory into a freshly built stack (snapshot restore + journal replay),
resumes the remaining prompts, and must end with the reference's exact
completions and state.
"""

import pytest

from repro.core.cache import SemanticCache
from repro.durability import comparable_state, snapshot_stack_state
from repro.errors import SimulatedCrashError
from repro.llm.client import LLMClient
from repro.llm.faults import CrashPoint
from repro.serving import build_stack

PROMPTS = [f"Question: who directed film number {i}?" for i in range(6)]
PROMPTS = PROMPTS + PROMPTS[:3]  # repeats exercise cache reuse across recovery


def build(client, durable_dir=None, **kwargs):
    return build_stack(
        client,
        cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
        chain=("babbage-002", "gpt-3.5-turbo", "gpt-4"),
        budget_usd=50.0,
        durable_dir=durable_dir,
        **kwargs,
    )


@pytest.fixture(scope="module")
def reference():
    stack = build(LLMClient())
    completions = [stack.complete(prompt) for prompt in PROMPTS]
    return completions, comparable_state(snapshot_stack_state(stack))


@pytest.fixture(scope="module")
def provider_requests():
    """Provider-level request count of the uncrashed stream (the cascade
    makes several client calls per stack request, cache hits make none)."""
    probe = CrashPoint(LLMClient(), crash_at=None)
    stack = build(probe)
    for prompt in PROMPTS:
        stack.complete(prompt)
    return probe.requests_seen


class TestCrashPointFault:
    def test_fires_at_exact_index_and_only_once(self):
        crash = CrashPoint(LLMClient(), crash_at=2)
        crash.complete("Question: alpha?")
        crash.complete("Question: beta?")
        with pytest.raises(SimulatedCrashError):
            crash.complete("Question: gamma?")
        assert crash.crashed
        # The driver keeps the same client after recovery; no re-fire.
        crash.complete("Question: gamma?")
        assert crash.requests_seen == 4

    def test_crash_precedes_inner_call(self):
        client = LLMClient()
        crash = CrashPoint(client, crash_at=0)
        with pytest.raises(SimulatedCrashError):
            crash.complete("Question: alpha?")
        assert client.meter.calls == 0  # the process died before the call

    def test_batch_counts_as_one_request(self):
        crash = CrashPoint(LLMClient(), crash_at=1)
        crash.complete_batch("Context: ", ["a?", "b?", "c?"])
        with pytest.raises(SimulatedCrashError):
            crash.complete_batch("Context: ", ["d?"])

    def test_disarmed_never_crashes(self):
        crash = CrashPoint(LLMClient(), crash_at=None)
        for i in range(10):
            crash.complete(f"Question: item {i}?")
        assert not crash.crashed
        assert crash.requests_seen == 10

    def test_seeded_is_deterministic_and_in_range(self):
        first = CrashPoint.seeded(LLMClient(), n_requests=20, seed=7)
        second = CrashPoint.seeded(LLMClient(), n_requests=20, seed=7)
        other = CrashPoint.seeded(LLMClient(), n_requests=20, seed=8)
        assert first.crash_at == second.crash_at
        assert 0 <= first.crash_at < 20
        assert any(
            CrashPoint.seeded(LLMClient(), 20, seed=s).crash_at != first.crash_at
            for s in range(1, 10)
        ) or other.crash_at != first.crash_at

    def test_reseeded_sibling_shares_counter_and_fire(self):
        crash = CrashPoint(LLMClient(), crash_at=1)
        sibling = crash.reseeded(3)
        crash.complete("Question: alpha?")
        with pytest.raises(SimulatedCrashError):
            sibling.complete("Question: beta?")
        assert crash.crashed and sibling.crashed
        assert crash.requests_seen == sibling.requests_seen == 2

    def test_negative_crash_at_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint(LLMClient(), crash_at=-1)


class TestCrashRecoverySweep:
    def test_every_crash_index_recovers_bit_identically(
        self, reference, provider_requests, tmp_path
    ):
        ref_completions, ref_state = reference
        assert provider_requests > len(PROMPTS)  # cascade escalations happen
        for crash_at in range(provider_requests):
            directory = str(tmp_path / f"crash{crash_at}")
            crashing = build(
                CrashPoint(LLMClient(), crash_at=crash_at),
                durable_dir=directory,
                checkpoint_every=3,
            )
            completions, crashed_at = [], None
            for index, prompt in enumerate(PROMPTS):
                try:
                    completions.append(crashing.complete(prompt))
                except SimulatedCrashError:
                    crashed_at = index
                    break
            assert crashed_at is not None

            recovered = build(LLMClient(), durable_dir=directory, checkpoint_every=3)
            for prompt in PROMPTS[crashed_at:]:
                completions.append(recovered.complete(prompt))

            assert completions == ref_completions, f"crash_at={crash_at}"
            state = comparable_state(snapshot_stack_state(recovered))
            assert state == ref_state, f"crash_at={crash_at}"

    def test_crash_mid_stream_loses_only_unacknowledged_request(self, tmp_path):
        directory = str(tmp_path / "mid")
        crashing = build(
            CrashPoint(LLMClient(), crash_at=4), durable_dir=directory
        )
        done = 0
        for prompt in PROMPTS:
            try:
                crashing.complete(prompt)
                done += 1
            except SimulatedCrashError:
                break
        # Only acknowledged (returned) requests are journaled.
        assert len(crashing.durability.store.journal) == done

    def test_recover_replays_journal_count(self, tmp_path):
        directory = str(tmp_path / "replay")
        writer = build(LLMClient(), durable_dir=directory)
        for prompt in PROMPTS[:4]:
            writer.complete(prompt)
        reader = build(LLMClient())
        reader.durability = None  # plain stack: recover() must refuse
        with pytest.raises(ValueError):
            reader.recover()
        from repro.durability import StackDurability

        fresh = build(LLMClient())
        fresh.durability = StackDurability(fresh, directory)
        assert fresh.recover() == 4


class TestWarmStart:
    def test_recovered_cache_answers_repeats_without_provider(self, reference, tmp_path):
        ref_completions, _ref_state = reference
        directory = str(tmp_path / "warm")
        first = build(LLMClient(), durable_dir=directory)
        for prompt in PROMPTS:
            first.complete(prompt)
        first.checkpoint()

        warm = build(LLMClient(), durable_dir=directory)
        calls_before = warm.stats.llm_calls
        answers = [warm.complete(prompt) for prompt in PROMPTS[:6]]
        assert warm.stats.llm_calls == calls_before  # zero new provider calls
        assert [a.text for a in answers] == [c.text for c in ref_completions[:6]]

    def test_checkpoint_requires_durable_dir(self):
        stack = build(LLMClient())
        with pytest.raises(ValueError):
            stack.checkpoint()

    def test_checkpoint_every_without_dir_rejected(self):
        with pytest.raises(ValueError):
            build(LLMClient(), checkpoint_every=5)
