"""Journal semantics: append order, sequence numbers, torn tails, clear."""

from repro.durability.journal import Journal


class TestAppendAndRead:
    def test_records_come_back_in_append_order(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        for i in range(5):
            journal.append({"op": "complete", "i": i})
        assert [r["i"] for r in journal.records()] == [0, 1, 2, 3, 4]

    def test_sequence_numbers_are_contiguous(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        seqs = [journal.append({"op": "x"}) for _ in range(4)]
        assert seqs == [0, 1, 2, 3]
        assert [r["seq"] for r in journal.records()] == [0, 1, 2, 3]
        assert journal.last_seq() == 3
        assert len(journal) == 4

    def test_empty_journal(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        assert journal.records() == []
        assert journal.last_seq() is None
        assert len(journal) == 0

    def test_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "j.log")
        first = Journal(path)
        first.append({"op": "a"})
        first.append({"op": "b"})
        first.close()
        second = Journal(path)
        assert second.append({"op": "c"}) == 2
        assert [r["op"] for r in second.records()] == ["a", "b", "c"]

    def test_sync_mode_appends(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"), sync=True)
        journal.append({"op": "a"})
        assert [r["op"] for r in journal.records()] == ["a"]


class TestTornTail:
    def test_partial_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.log")
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.append({"op": "b"})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "c", "seq"')  # crash mid-append
        assert [r["op"] for r in Journal(path).records()] == ["a", "b"]

    def test_non_dict_line_ends_replay(self, tmp_path):
        path = str(tmp_path / "j.log")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"op": "a", "seq": 0}\n[1, 2]\n{"op": "b", "seq": 2}\n')
        assert [r["op"] for r in Journal(path).records()] == ["a"]

    def test_reopen_after_torn_tail_resumes_from_intact_count(self, tmp_path):
        path = str(tmp_path / "j.log")
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        reopened = Journal(path)
        assert len(reopened) == 1
        assert reopened.append({"op": "b"}) == 1


class TestClear:
    def test_clear_removes_file_and_resets_seq(self, tmp_path):
        path = str(tmp_path / "j.log")
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.clear()
        assert journal.records() == []
        assert len(journal) == 0
        assert journal.append({"op": "b"}) == 0
