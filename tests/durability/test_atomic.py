"""Atomic file writes: readers see the old file or the new one, never a torn mix."""

import json
import os

import pytest

from repro.durability.atomic import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "second"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "payload")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_nosync_mode_still_writes(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "payload", sync=False)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "payload"


class TestAtomicWriteJson:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.json")
        payload = {"a": 1, "b": [1.5, "x"], "nested": {"k": None}}
        atomic_write_json(path, payload)
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == payload

    def test_unserializable_payload_preserves_original(self, tmp_path):
        # Serialization happens before any file is touched, so a bad
        # payload can never clobber (or tear) the previous good file.
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"good": True})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == {"good": True}
        assert os.listdir(tmp_path) == ["out.json"]
