"""Property tests: recover(checkpoint(x)) is bit-identical to x.

Each component codec is driven with hypothesis-generated workloads, the
snapshot is forced through a real JSON round-trip (exactly what the
durable files see), restored into a freshly constructed component, and
the restored component must be indistinguishable — snapshot-for-snapshot
*and* behavior-for-behavior — from the original.
"""

import dataclasses
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import EvictionPolicy, SemanticCache
from repro.durability import (
    restore_cache_into,
    restore_meter_into,
    restore_stats_into,
    snapshot_cache,
    snapshot_meter,
    snapshot_stats,
)
from repro.llm.client import Usage, UsageMeter
from repro.serving.stats import ServiceStats

_words = st.sampled_from(
    ["stadium", "concert", "privacy", "cache", "query", "film", "director",
     "patient", "table", "column", "vector", "index"]
)
query_strategy = st.lists(_words, min_size=2, max_size=6).map(" ".join)


def json_roundtrip(payload):
    """The exact transformation a snapshot file applies to the payload."""
    return json.loads(json.dumps(payload))


def fresh_like(cache: SemanticCache) -> SemanticCache:
    return SemanticCache(
        capacity=cache.capacity,
        reuse_threshold=cache.reuse_threshold,
        augment_threshold=cache.augment_threshold,
        policy=cache.policy,
        embedding_dim=cache.embedder.dim,
        lrfu_lambda=cache.lrfu_lambda,
    )


class TestCacheRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(
        queries=st.lists(query_strategy, min_size=0, max_size=30),
        capacity=st.integers(min_value=1, max_value=8),
        policy=st.sampled_from(list(EvictionPolicy)),
    )
    def test_roundtrip_is_bit_identical(self, queries, capacity, policy):
        cache = SemanticCache(capacity=capacity, policy=policy)
        for query in queries:
            if cache.lookup(query).tier != "reuse":
                cache.put(query, f"answer for {query}")
        snapshot = snapshot_cache(cache)

        restored = fresh_like(cache)
        restore_cache_into(restored, json_roundtrip(snapshot))

        assert snapshot_cache(restored) == snapshot
        assert list(restored.entries) == list(cache.entries)  # insertion order too
        assert restored._clock == cache._clock
        assert restored.stats == cache.stats
        for key, entry in cache.entries.items():
            other = restored.entries[key]
            mine, theirs = dataclasses.asdict(entry), dataclasses.asdict(other)
            # Embeddings are re-derived on restore (pure function of the
            # key), so they must come back element-for-element identical.
            assert np.array_equal(mine.pop("embedding"), theirs.pop("embedding"))
            assert mine == theirs

    @settings(max_examples=15, deadline=None)
    @given(
        queries=st.lists(query_strategy, min_size=1, max_size=20, unique=True),
        probes=st.lists(query_strategy, min_size=1, max_size=10),
        policy=st.sampled_from(list(EvictionPolicy)),
    )
    def test_restored_cache_behaves_identically(self, queries, probes, policy):
        # Not just equal state: the same future must unfold from it. Every
        # probe must land in the same tier with the same response, and any
        # evictions it causes must pick the same victims.
        cache = SemanticCache(capacity=4, policy=policy)
        for query in queries:
            if cache.lookup(query).tier != "reuse":
                cache.put(query, f"answer for {query}")
        restored = fresh_like(cache)
        restore_cache_into(restored, json_roundtrip(snapshot_cache(cache)))

        for probe in probes:
            mine, theirs = cache.lookup(probe), restored.lookup(probe)
            assert mine.tier == theirs.tier
            assert (mine.entry.response if mine.entry else None) == (
                theirs.entry.response if theirs.entry else None
            )
            if mine.tier != "reuse":
                cache.put(probe, "fresh")
                restored.put(probe, "fresh")
        assert snapshot_cache(restored) == snapshot_cache(cache)

    def test_empty_cache_roundtrip(self):
        cache = SemanticCache(capacity=3)
        restored = fresh_like(cache)
        restore_cache_into(restored, json_roundtrip(snapshot_cache(cache)))
        assert snapshot_cache(restored) == snapshot_cache(cache)
        assert len(restored) == 0

    def test_single_entry_roundtrip(self):
        cache = SemanticCache(capacity=3, policy=EvictionPolicy.LRFU)
        cache.lookup("who directed the film")
        cache.put("who directed the film", "the director")
        restored = fresh_like(cache)
        restore_cache_into(restored, json_roundtrip(snapshot_cache(cache)))
        assert snapshot_cache(restored) == snapshot_cache(cache)
        assert restored.lookup("who directed the film").tier == "reuse"

    def test_mismatched_config_is_rejected(self):
        cache = SemanticCache(capacity=4)
        snapshot = snapshot_cache(cache)
        other = SemanticCache(capacity=8)
        try:
            restore_cache_into(other, snapshot)
        except ValueError:
            pass
        else:
            raise AssertionError("capacity mismatch must raise")


class TestMeterRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["gpt-4", "gpt-3.5-turbo", "babbage-002"]),
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=0,
            max_size=20,
        )
    )
    def test_roundtrip_is_bit_identical(self, events):
        meter = UsageMeter()
        for model, prompt_tokens, completion_tokens in events:
            meter.record(
                model,
                Usage(prompt_tokens=prompt_tokens, completion_tokens=completion_tokens),
                prompt_tokens * 1.5e-6 + completion_tokens * 2e-6,
            )
        snapshot = snapshot_meter(meter)
        restored = UsageMeter()
        restore_meter_into(restored, json_roundtrip(snapshot))
        assert snapshot_meter(restored) == snapshot
        assert restored.calls == meter.calls
        assert restored.cost == meter.cost  # bit-identical, not approx
        assert restored.per_model == meter.per_model

    def test_empty_meter_roundtrip(self):
        restored = UsageMeter()
        restore_meter_into(restored, json_roundtrip(snapshot_meter(UsageMeter())))
        assert restored.calls == 0
        assert restored.per_model == {}


class TestStatsRoundtrip:
    def _busy_stats(self) -> ServiceStats:
        from repro.llm.client import LLMClient
        from repro.serving import build_stack

        stats = ServiceStats()
        stack = build_stack(
            LLMClient(),
            cache=SemanticCache(reuse_threshold=0.9),
            chain=("babbage-002", "gpt-4"),
            budget_usd=10.0,
            stats=stats,
        )
        for i in range(8):
            stack.complete(f"Question: who directed film number {i % 5}?")
        return stats

    def test_roundtrip_is_bit_identical(self):
        stats = self._busy_stats()
        snapshot = snapshot_stats(stats)
        restored = ServiceStats()
        restore_stats_into(restored, json_roundtrip(snapshot))
        assert snapshot_stats(restored) == snapshot

    def test_int_keyed_histograms_survive_json(self):
        # JSON stringifies dict keys; the codec must bring them back as ints.
        stats = ServiceStats()
        stats.scheduler_batch_sizes[4] = 2
        stats.scheduler_queue_depths[0] = 7
        restored = ServiceStats()
        restore_stats_into(restored, json_roundtrip(snapshot_stats(stats)))
        assert restored.scheduler_batch_sizes == {4: 2}
        assert restored.scheduler_queue_depths == {0: 7}

    def test_empty_stats_roundtrip(self):
        restored = ServiceStats()
        restore_stats_into(restored, json_roundtrip(snapshot_stats(ServiceStats())))
        assert snapshot_stats(restored) == snapshot_stats(ServiceStats())
