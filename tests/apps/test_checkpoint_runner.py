"""Checkpointed batch runner: resume instead of restart, at every crash index."""

import pytest

from repro.apps import CheckpointedRunner, workload_fingerprint
from repro.errors import SimulatedCrashError
from repro.llm.client import LLMClient
from repro.llm.faults import CrashPoint

ROWS = [f"Question: who directed film number {i}?" for i in range(8)]


class TestFreshRun:
    def test_processes_all_rows_in_order(self, tmp_path):
        runner = CheckpointedRunner(LLMClient(), str(tmp_path / "job"))
        report = runner.run(ROWS)
        assert report.total_rows == len(ROWS)
        assert report.fresh_rows == len(ROWS)
        assert report.resumed_rows == 0
        assert [r.index for r in report.results] == list(range(len(ROWS)))
        assert all(not r.replayed for r in report.results)

    def test_prompt_fn_applied(self, tmp_path):
        runner = CheckpointedRunner(
            LLMClient(),
            str(tmp_path / "job"),
            prompt_fn=lambda row: f"Question: {row}?",
        )
        report = runner.run(["who directed casablanca"])
        assert report.results[0].prompt == "Question: who directed casablanca?"


class TestResume:
    def test_rerun_replays_everything_provider_free(self, tmp_path):
        directory = str(tmp_path / "job")
        first_client = LLMClient()
        first = CheckpointedRunner(first_client, directory).run(ROWS)

        second_client = LLMClient()
        second = CheckpointedRunner(second_client, directory).run(ROWS)
        assert second.resumed_rows == len(ROWS)
        assert second.fresh_rows == 0
        assert second_client.meter.calls == 0  # no provider touched
        assert second.texts() == first.texts()
        assert all(r.replayed for r in second.results)

    def test_crash_at_every_row_resumes_exactly(self, tmp_path):
        reference = CheckpointedRunner(LLMClient(), str(tmp_path / "ref")).run(ROWS)
        # Each row costs one provider request here (bare client, no cache),
        # so crashing at provider index i kills the run mid-row i.
        for crash_at in range(len(ROWS)):
            directory = str(tmp_path / f"crash{crash_at}")
            crashing = CheckpointedRunner(
                CrashPoint(LLMClient(), crash_at=crash_at), directory
            )
            with pytest.raises(SimulatedCrashError):
                crashing.run(ROWS)
            assert len(crashing.completed_indices()) == crash_at

            resumed_client = LLMClient()
            report = CheckpointedRunner(resumed_client, directory).run(ROWS)
            assert report.resumed_rows == crash_at
            assert report.fresh_rows == len(ROWS) - crash_at
            assert resumed_client.meter.calls == len(ROWS) - crash_at
            assert report.texts() == reference.texts()

    def test_torn_final_record_reruns_that_row(self, tmp_path):
        directory = str(tmp_path / "job")
        runner = CheckpointedRunner(CrashPoint(LLMClient(), crash_at=3), directory)
        with pytest.raises(SimulatedCrashError):
            runner.run(ROWS)
        runner.close()
        with open(runner.journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "row", "index": 3')  # crash mid-append

        resumed = CheckpointedRunner(LLMClient(), directory)
        report = resumed.run(ROWS)
        assert report.resumed_rows == 3
        assert report.fresh_rows == len(ROWS) - 3


class TestManifest:
    def test_different_workload_rejected(self, tmp_path):
        directory = str(tmp_path / "job")
        CheckpointedRunner(LLMClient(), directory).run(ROWS[:4])
        other_rows = ["Question: a completely different job?"]
        with pytest.raises(ValueError, match="different workload"):
            CheckpointedRunner(LLMClient(), directory).run(other_rows)

    def test_fingerprint_depends_on_rows_and_count(self):
        assert workload_fingerprint(ROWS) == workload_fingerprint(list(ROWS))
        assert workload_fingerprint(ROWS) != workload_fingerprint(ROWS[:-1])
        assert workload_fingerprint(["a", "b"]) != workload_fingerprint(["b", "a"])

    def test_fingerprint_unambiguous_on_separator_collisions(self):
        # Joining rows must not conflate ["a", "b"] with ["a\x1fb"].
        assert workload_fingerprint(["a", "b"]) != workload_fingerprint(["a\x1fb"])
