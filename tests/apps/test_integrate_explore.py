"""Integration and exploration app tests (Sections II-C, II-D)."""

import pytest

from repro.apps.explore import LLMDatabase, MultiModalLake
from repro.apps.explore.llmdb import VirtualColumn, VirtualTable, film_virtual_table
from repro.apps.integrate import (
    ColumnTypeAnnotator,
    DataCleaner,
    EntityResolver,
    SchemaMatcher,
    TableUnderstanding,
    similarity_baseline,
)
from repro.apps.integrate.schema_matching import ColumnSpec
from repro.datasets import generate_column_corpus, generate_er_pairs, generate_lake
from repro.llm import LLMClient
from repro.sqldb.types import SQLType


class TestEntityResolution:
    def test_high_accuracy_with_strong_model(self, gpt4):
        pairs = generate_er_pairs(n=40, seed=1)
        metrics = EntityResolver(gpt4).evaluate(pairs)
        assert metrics.accuracy >= 0.8
        assert metrics.f1 >= 0.75

    def test_weak_model_worse(self, gpt4, babbage):
        pairs = generate_er_pairs(n=40, seed=1)
        strong = EntityResolver(gpt4).evaluate(pairs)
        weak = EntityResolver(babbage).evaluate(pairs)
        assert weak.accuracy < strong.accuracy

    def test_hardness_stratification(self, gpt4):
        pairs = generate_er_pairs(n=60, seed=2)
        by_hardness = EntityResolver(gpt4).evaluate_by_hardness(pairs)
        assert set(by_hardness) == {"easy", "hard"}
        assert by_hardness["easy"].accuracy >= by_hardness["hard"].accuracy

    def test_similarity_baseline_reasonable(self):
        pairs = generate_er_pairs(n=60, seed=3)
        metrics = similarity_baseline(pairs)
        assert metrics.accuracy > 0.6

    def test_resolve_single_pair(self, gpt4):
        assert EntityResolver(gpt4).resolve(
            "name: Summit Bakery, city: Riverford", "name: Summit Bakery, city: Riverford"
        )


class TestSchemaMatching:
    def _left(self):
        return [
            ColumnSpec("phone", ("555-1234", "555-9876")),
            ColumnSpec("city", ("Riverford", "Westdale")),
        ]

    def _right(self):
        return [
            ColumnSpec("city_name", ("Riverford", "Stoneport")),
            ColumnSpec("phone_number", ("555-1234", "555-0000")),
        ]

    def test_match_produces_correct_mapping(self, gpt4):
        mapping = SchemaMatcher(gpt4).match(self._left(), self._right())
        assert mapping.get("phone") == "phone_number"
        assert mapping.get("city") == "city_name"

    def test_mapping_is_one_to_one(self, gpt4):
        mapping = SchemaMatcher(gpt4).match(self._left(), self._right())
        assert len(set(mapping.values())) == len(mapping)

    def test_evaluate_f1(self, gpt4):
        gold = {"phone": "phone_number", "city": "city_name"}
        metrics = SchemaMatcher(gpt4).evaluate(self._left(), self._right(), gold)
        assert metrics["f1"] == 1.0


class TestColumnTyping:
    def test_corpus_accuracy(self, world, gpt4):
        types, corpus = generate_column_corpus(world, n=24, seed=1)
        examples = [(list(corpus[0].values), corpus[0].column_type)]
        annotator = ColumnTypeAnnotator(gpt4, types, examples=examples)
        metrics = annotator.evaluate(corpus[1:])
        assert metrics["accuracy"] >= 0.7

    def test_candidate_types_required(self, gpt4):
        with pytest.raises(ValueError):
            ColumnTypeAnnotator(gpt4, [])

    def test_paper_prompt_example(self, gpt4):
        annotator = ColumnTypeAnnotator(
            gpt4,
            ["country", "person", "date", "movie", "sports"],
            examples=[
                (["USA", "UK", "France"], "country"),
                (["Michael Jackson", "Beckham", "Michael Jordan"], "person"),
            ],
        )
        assert annotator.annotate(["Basketball", "Badminton", "Table Tennis"]) == "sports"


class TestCleaning:
    def _rows(self):
        rows = [
            {"id": i, "date": f"Aug {10 + i:02d} 2023", "phone": f"555-12{i:02d}"}
            for i in range(8)
        ]
        rows.append({"id": 8, "date": "2023-08-30", "phone": "555-1299"})  # format deviant
        rows.append({"id": 9, "date": None, "phone": "555-1300"})  # missing
        return rows

    def test_detection_finds_both_error_kinds(self, gpt4):
        errors = DataCleaner(gpt4).detect(self._rows(), ["id", "date", "phone"])
        kinds = {e.kind for e in errors}
        assert kinds == {"missing", "pattern_violation"}

    def test_format_repair_rewrites_to_pattern(self, gpt4):
        cleaner = DataCleaner(gpt4)
        rows = self._rows()
        report = cleaner.repair(rows, ["id", "date", "phone"])
        repaired_value = report.repairs.get((8, "date"))
        assert repaired_value == "Aug 30 2023"

    def test_apply_returns_copies(self, gpt4):
        cleaner = DataCleaner(gpt4)
        rows = self._rows()
        report = cleaner.repair(rows, ["id", "date", "phone"])
        fixed = cleaner.apply(rows, report)
        assert rows[8]["date"] == "2023-08-30"  # original untouched
        assert fixed[8]["date"] == "Aug 30 2023"


class TestTableUnderstanding:
    @pytest.fixture()
    def understanding(self, concert_db, gpt4):
        return TableUnderstanding(gpt4, concert_db)

    def test_serialize_rows(self, understanding):
        sentences = understanding.serialize_rows("stadium", limit=3)
        assert len(sentences) == 3
        assert all("stadium" in s for s in sentences)

    def test_statistics_sentences_contain_numbers(self, understanding, concert_db):
        sentences = understanding.statistics_sentences("stadium")
        count = concert_db.query_scalar("SELECT COUNT(*) FROM stadium")
        assert any(str(count) in s for s in sentences)

    def test_chunk_plan_covers_all_rows(self, understanding, concert_db):
        plan = understanding.chunk_plan("concert", max_tokens_per_chunk=64)
        total_rows = concert_db.query_scalar("SELECT COUNT(*) FROM concert")
        covered = sum(end - start for start, end in plan.ranges)
        assert covered == total_rows
        assert plan.n_chunks > 1

    def test_chunk_plan_respects_budget(self, understanding):
        plan = understanding.chunk_plan("concert", max_tokens_per_chunk=64)
        # Every chunk except possibly overflow-forced singletons fits.
        assert max(plan.tokens_per_chunk) <= 64 * 2

    def test_representative_tuples(self, understanding, concert_db):
        reps = understanding.representative_tuples("stadium", k=4)
        assert len(reps) == 4
        assert len(set(reps)) == 4
        all_rows = set(concert_db.table("stadium").rows)
        assert all(r in all_rows for r in reps)


class TestMultiModalLake:
    @pytest.fixture()
    def lake(self, world, gpt4):
        lake = MultiModalLake(gpt4)
        lake.add_items(generate_lake(world, seed=1))
        return lake

    def test_jordan_disambiguation(self, lake):
        query = "Could Prof. Michael Jordan play basketball"
        unfiltered = lake.query(query, k=2)
        filtered = lake.query(query, k=1, where={"entity_type": "professor"})
        assert len(filtered.items) == 1
        assert filtered.items[0].item_id == "row-jordan-professor"
        # Unfiltered vector search surfaces the athlete doc among top hits.
        assert any("basketball" in item.content for item in unfiltered.items)

    def test_modality_filter(self, lake):
        result = lake.query_by_modality("a city skyline photograph", "image", k=3)
        assert all(item.modality == "image" for item in result.items)

    def test_row_vs_table_granularity(self, gpt4):
        lake = MultiModalLake(gpt4)
        header = ["name", "dept"]
        rows = [["Ada", "CS"], ["Bob", "Math"]]
        row_ids = lake.add_table_rows("staff", header, rows, granularity="row")
        table_ids = lake.add_table_rows("staff2", header, rows, granularity="table")
        assert len(row_ids) == 2
        assert len(table_ids) == 1

    def test_semantic_query_finds_relevant_doc(self, lake, world):
        athletes = [p for p in world.people if world.kb.one(p, "profession") == "athlete"]
        target = athletes[0]
        team = world.kb.one(target, "plays_for")
        result = lake.query(f"{target} {team}", k=5)
        assert any(target in item.content for item in result.items)


class TestLLMDatabase:
    def test_materialize_and_query(self, world, gpt4):
        llmdb = LLMDatabase(gpt4)
        llmdb.register(film_virtual_table(world.films[:6]))
        result = llmdb.execute("SELECT title, director FROM films ORDER BY title")
        assert len(result.rows) == 6

    def test_extraction_is_cached(self, world, gpt4):
        llmdb = LLMDatabase(gpt4)
        llmdb.register(film_virtual_table(world.films[:4]))
        llmdb.execute("SELECT COUNT(*) FROM films")
        calls_first = gpt4.meter.calls
        llmdb.execute("SELECT director FROM films")
        assert gpt4.meter.calls == calls_first  # no re-extraction

    def test_strong_model_extracts_correctly(self, world, gpt4):
        llmdb = LLMDatabase(gpt4)
        films = world.films[:5]
        llmdb.register(film_virtual_table(films))
        rows = llmdb.execute("SELECT title, director FROM films").rows
        gold = {f: world.kb.one(f, "directed_by") for f in films}
        correct = sum(1 for title, director in rows if gold[title] == director)
        assert correct >= 4

    def test_weak_model_builds_wrong_database(self, world, babbage, gpt4):
        films = world.films[:6]
        gold = {f: world.kb.one(f, "directed_by") for f in films}

        def correct_count(client):
            llmdb = LLMDatabase(client)
            llmdb.register(film_virtual_table(films))
            rows = llmdb.execute("SELECT title, director FROM films").rows
            return sum(1 for title, director in rows if gold[title] == director)

        assert correct_count(babbage) < correct_count(gpt4)

    def test_duplicate_registration_rejected(self, world, gpt4):
        llmdb = LLMDatabase(gpt4)
        llmdb.register(film_virtual_table(world.films[:2]))
        with pytest.raises(ValueError):
            llmdb.register(film_virtual_table(world.films[:2]))

    def test_numeric_column_coercion(self, world, gpt4):
        llmdb = LLMDatabase(gpt4)
        llmdb.register(film_virtual_table(world.films[:3]))
        rows = llmdb.execute("SELECT released FROM films").rows
        assert all(isinstance(r[0], int) for r in rows)

    def test_unknown_table_passthrough_error(self, gpt4):
        from repro.errors import SQLCatalogError

        llmdb = LLMDatabase(gpt4)
        with pytest.raises(SQLCatalogError):
            llmdb.execute("SELECT * FROM never_registered")

    def test_join_virtual_with_real_table(self, world, gpt4):
        """External knowledge (LLM-extracted) joins relational data."""
        films = world.films[:4]
        llmdb = LLMDatabase(gpt4)
        llmdb.register(film_virtual_table(films))
        llmdb.import_table(
            "box_office",
            [("title", SQLType.TEXT), ("gross", SQLType.INTEGER)],
            [[films[0], 500], [films[1], 900], ["Unknown Film", 100]],
            primary_key="title",
        )
        rows = llmdb.execute(
            "SELECT b.title, f.director, b.gross FROM box_office b "
            "JOIN films f ON b.title = f.title ORDER BY b.gross DESC"
        ).rows
        assert len(rows) == 2
        assert rows[0][2] == 900
        # Directors come from the LLM side of the join.
        gold = {f: world.kb.one(f, "directed_by") for f in films}
        assert sum(1 for title, director, _g in rows if gold[title] == director) >= 1
