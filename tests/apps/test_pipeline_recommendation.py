"""Tests: LLM-routed pipeline recommendation (II-B4) and usage reporting."""

import numpy as np
import pytest

from repro.apps.transform import PipelineSearcher
from repro.apps.transform.pipeline import profile_dataset, recommendation_prompt, recommend_operations
from repro.llm import LLMClient


def dataset():
    rng = np.random.default_rng(9)
    n = 32
    col_a = [float(v) if i % 4 else None for i, v in enumerate(rng.normal(100, 15, n))]
    col_b = list(rng.normal(0, 1, n) * 400)
    labels = [int(v > 0) for v in col_b]
    return [col_a, col_b], labels


class TestRecommendationEngine:
    def test_engine_answers_recommendation_prompt(self, gpt4):
        profile = {"has_missing": True, "skewed": False, "outliers": False, "scale_spread": True}
        completion = gpt4.complete(recommendation_prompt(profile))
        assert completion.engine == "codegen"
        ops = [op.strip() for op in completion.text.split(",")]
        assert "impute_mean" in ops
        assert "standardize" in ops or "normalize" in ops

    def test_engine_agrees_with_direct_mapping(self, gpt4):
        profile = {"has_missing": True, "skewed": True, "outliers": True, "scale_spread": False}
        completion = gpt4.complete(recommendation_prompt(profile))
        assert completion.text == ", ".join(recommend_operations(profile))

    def test_empty_profile_defaults(self, gpt4):
        completion = gpt4.complete(recommendation_prompt({"has_missing": False}))
        assert "standardize" in completion.text


class TestLLMRecommendedSearch:
    def test_llm_recommendation_path(self, gpt4):
        columns, labels = dataset()
        searcher = PipelineSearcher(gpt4, llm_recommendation=True)
        calls_before = gpt4.meter.calls
        pipeline = searcher.search(columns, labels)
        assert gpt4.meter.calls > calls_before  # the recommendation was an LLM call
        assert pipeline.score >= pipeline.baseline_score
        assert "impute_mean" in pipeline.operations

    def test_llm_and_direct_agree_for_strong_model(self, gpt4):
        columns, labels = dataset()
        direct = PipelineSearcher(LLMClient(model="gpt-4")).search(columns, labels)
        routed = PipelineSearcher(LLMClient(model="gpt-4"), llm_recommendation=True).search(
            columns, labels
        )
        assert routed.operations == direct.operations

    def test_profile_detects_missing(self):
        columns, _labels = dataset()
        profile = profile_dataset(columns)
        assert profile["has_missing"]


class TestUsageReport:
    def test_report_contains_models_and_total(self, gpt4):
        gpt4.complete("Question: Who directed The Silent Mirror?")
        gpt4.complete("Question: Who directed The Hidden Meridian?", model="babbage-002")
        report = gpt4.meter.report()
        assert "gpt-4" in report
        assert "babbage-002" in report
        assert "TOTAL" in report
        assert report.splitlines()[-1].split()[1] == "2"
