"""Data generation app tests (Section II-A)."""

import pytest

from repro.apps.datagen import (
    ExecutionTimePredictor,
    MissingLabelAnnotator,
    SQLGenerator,
    equivalence_check,
    logic_bug_test,
)
from repro.datasets import generate_patients, generate_timing_workload
from repro.datasets.workloads import build_analytics_db
from repro.llm import LLMClient


@pytest.fixture()
def analytics_db():
    return build_analytics_db(seed=0, n_customers=60, n_orders=150)


class TestSQLGenerator:
    def test_generate_produces_validated_queries(self, analytics_db, gpt4):
        generator = SQLGenerator(gpt4, analytics_db)
        results = generator.generate(count=6)
        assert len(results) == 6
        assert all(r.report is not None for r in results)

    def test_generate_validated_reaches_count(self, analytics_db, gpt4):
        generator = SQLGenerator(gpt4, analytics_db)
        valid, total = generator.generate_validated(count=5)
        assert len(valid) == 5
        assert total >= 5
        for generated in valid:
            analytics_db.execute(generated.sql)  # actually runs

    def test_weak_model_emits_more_invalid(self, analytics_db, babbage, gpt4):
        strong_valid = sum(g.valid for g in SQLGenerator(gpt4, analytics_db).generate(8))
        weak_valid = sum(g.valid for g in SQLGenerator(babbage, analytics_db).generate(8))
        assert weak_valid <= strong_valid

    def test_equivalence_check(self, analytics_db):
        assert equivalence_check(
            analytics_db,
            "SELECT name FROM customer WHERE age > 30",
            "SELECT name FROM customer WHERE NOT (age <= 30) AND age IS NOT NULL",
        )
        assert equivalence_check(
            analytics_db,
            "SELECT name FROM customer WHERE age > 30",
            "SELECT name FROM customer WHERE age > 60",
        ) is False
        assert equivalence_check(analytics_db, "garbage", "SELECT 1") is None

    def test_logic_bug_test_clean_engine(self, analytics_db, gpt4):
        report = logic_bug_test(gpt4, analytics_db, n_pairs=4)
        assert report.pairs_tested == 4
        assert not report.bug_found  # our engine has no planted logic bugs


class TestExecutionTimePredictor:
    @pytest.fixture()
    def workload(self, analytics_db):
        return generate_timing_workload(analytics_db, n=40, seed=1)

    def test_prediction_close_to_truth(self, workload, gpt4):
        predictor = ExecutionTimePredictor(gpt4, workload[:30], n_examples=8)
        metrics = predictor.evaluate(workload[30:])
        assert metrics["mean_relative_error"] < 0.25

    def test_weak_model_predicts_worse(self, workload, gpt4, babbage):
        strong = ExecutionTimePredictor(gpt4, workload[:30]).evaluate(workload[30:])
        weak = ExecutionTimePredictor(babbage, workload[:30]).evaluate(workload[30:])
        assert weak["mean_relative_error"] > strong["mean_relative_error"]

    def test_empty_pool_rejected(self, gpt4):
        with pytest.raises(ValueError):
            ExecutionTimePredictor(gpt4, [])

    def test_predict_returns_float(self, workload, gpt4):
        predictor = ExecutionTimePredictor(gpt4, workload[:20])
        value = predictor.predict(workload[25].features)
        assert isinstance(value, float)
        assert value > 0


class TestMissingLabelAnnotator:
    def test_annotates_all_missing(self, gpt4):
        dataset = generate_patients(n=50, seed=3, missing_fraction=0.2)
        result = MissingLabelAnnotator(gpt4).annotate(dataset)
        assert len(result.predictions) == len(dataset.unlabeled_rows())

    def test_accuracy_beats_majority_baseline(self, gpt4):
        dataset = generate_patients(n=80, seed=4, missing_fraction=0.25)
        result = MissingLabelAnnotator(gpt4, n_examples=10).annotate(dataset)
        from collections import Counter

        labels = [r["risk"] for r in dataset.labeled_rows()]
        majority = Counter(labels).most_common(1)[0][0]
        gold = dataset.hidden_labels
        baseline = sum(1 for v in gold.values() if v == majority) / len(gold)
        assert result.accuracy is not None
        assert result.accuracy >= baseline

    def test_requires_labeled_rows(self, gpt4):
        dataset = generate_patients(n=10, seed=5, missing_fraction=1.0)
        with pytest.raises(ValueError):
            MissingLabelAnnotator(gpt4).annotate(dataset)
