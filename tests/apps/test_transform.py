"""Transformation app tests (Section II-B)."""

import pytest

from repro.apps.transform import (
    NL2SQLTranslator,
    NL2TransactionTranslator,
    PatternValidator,
    Payment,
    PipelineSearcher,
    json_to_grid,
    mine_column_pattern,
    relationalize,
    relationalize_direct,
    synthesize_column_transform,
    xml_to_grid,
)
from repro.apps.transform.columns import columns_joinable
from repro.apps.transform.tables import render_json_records, render_xml_records
from repro.apps.transform.transaction import make_accounts_db
from repro.datasets import generate_joinable_pairs, generate_nl2sql
from repro.errors import TransformError, ValidationError
from repro.llm import LLMClient
from repro.tablekit import Grid


class TestNL2SQLApp:
    def test_translate_valid_sql(self, concert_db, gpt4):
        translator = NL2SQLTranslator(gpt4, concert_db)
        result = translator.translate("What are the names of stadiums that had concerts in 2014?")
        assert result.valid
        assert "SELECT" in result.sql

    def test_evaluate_reports_accuracy_and_cost(self, concert_db, gpt4):
        translator = NL2SQLTranslator(gpt4, concert_db)
        metrics = translator.evaluate(generate_nl2sql(n=8, seed=2))
        assert 0.0 <= metrics["execution_accuracy"] <= 1.0
        assert metrics["api_cost"] > 0

    def test_examples_selected_by_similarity(self, concert_db, gpt4):
        pool = [
            ("What are the names of stadiums that had concerts in 2013?", "SQL1"),
            ("completely unrelated question about privacy", "SQL2"),
        ]
        translator = NL2SQLTranslator(gpt4, concert_db, example_pool=pool, n_examples=1)
        picked = translator._select_examples("stadiums that had concerts in 2016")
        assert picked[0][1] == "SQL1"


class TestNL2Transaction:
    def test_paper_scenario(self, gpt4):
        db = make_accounts_db({"Alice": 5000.0, "Bob": 100.0, "Express": 0.0})
        translator = NL2TransactionTranslator(gpt4, db)
        result = translator.translate(
            [Payment("Alice", "Bob", 1000), Payment("Bob", "Express", 5)]
        )
        assert result.applied
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'Alice'") == 4000.0
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'Bob'") == 1095.0
        assert db.query_scalar("SELECT balance FROM accounts WHERE owner = 'Express'") == 5.0

    def test_total_balance_conserved(self, gpt4):
        db = make_accounts_db({"a": 10.0, "b": 20.0})
        before = db.query_scalar("SELECT SUM(balance) FROM accounts")
        NL2TransactionTranslator(gpt4, db).translate([Payment("a", "b", 3)])
        assert db.query_scalar("SELECT SUM(balance) FROM accounts") == before

    def test_invalid_output_not_applied(self, world):
        # A weak model with a seed chosen to corrupt this scenario.
        db = make_accounts_db({"Ann": 50.0, "Ben": 0.0})
        for seed in range(30):
            client = LLMClient(model="babbage-002", seed=seed)
            translator = NL2TransactionTranslator(client, db)
            result = translator.translate([Payment("Ann", "Ben", 10), Payment("Ben", "Ann", 2)])
            if not result.report.valid:
                assert not result.applied
                break
        else:
            pytest.fail("expected at least one corrupted transaction in 30 seeds")

    def test_translate_or_raise(self, gpt4):
        db = make_accounts_db({"x": 1.0, "y": 0.0})
        result = NL2TransactionTranslator(gpt4, db).translate_or_raise([Payment("x", "y", 1)])
        assert result.applied

    def test_empty_scenario_rejected(self, gpt4):
        db = make_accounts_db({"x": 1.0})
        with pytest.raises(ValueError):
            NL2TransactionTranslator(gpt4, db).translate([])


class TestTableTransforms:
    RECORDS = [
        {"item": "laptop", "qty": 2, "price": 900},
        {"item": "mouse", "qty": 5, "price": 25},
    ]

    def test_json_direct(self, gpt4):
        result = json_to_grid(gpt4, render_json_records(self.RECORDS))
        assert result.mode == "direct"
        assert result.grid.header == ["item", "qty", "price"]
        assert result.grid.n_rows == 2

    def test_xml_direct(self, gpt4):
        document = render_xml_records("orders", "order", self.RECORDS)
        result = xml_to_grid(gpt4, document)
        assert result.grid.header == ["item", "qty", "price"]

    def test_program_synthesis_mode(self, gpt4):
        grid = Grid([["item", "qty"], ["a", 1], ["b", 2]])
        result = relationalize(gpt4, grid)
        assert result.mode in ("program", "local")
        assert result.grid.header == ["item", "qty"]

    def test_local_baseline(self):
        grid = Grid([["item", "qty"], ["a", 1], [None, None], ["b", 2]])
        result = relationalize_direct(grid)
        assert result.grid.header == ["item", "qty"]
        assert result.grid.n_rows == 2
        assert result.score > 0.9


class TestColumnTransforms:
    def test_all_generated_pairs_synthesize(self):
        for pair in generate_joinable_pairs(n=18, seed=3):
            transform = synthesize_column_transform(list(pair.source), list(pair.target))
            assert transform is not None
            assert transform.apply_all(list(pair.source)) == list(pair.target)

    def test_unjoinable_columns(self):
        assert synthesize_column_transform(["abc", "def"], ["123", "456"]) is None
        assert not columns_joinable(["abc"], ["123"])

    def test_joinable_detection(self):
        assert columns_joinable(["Aug 14 2023"], ["8/14/2023"])

    def test_transform_rejects_unparseable(self):
        transform = synthesize_column_transform(["Aug 14 2023"], ["8/14/2023"])
        with pytest.raises(TransformError):
            transform.apply("not a date")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            synthesize_column_transform(["a"], ["b", "c"])

    def test_pattern_validator_drift(self):
        validator = PatternValidator.from_baseline(["Aug 14 2023", "Sep 01 2021", "Jan 30 2019"])
        assert validator.conforming("Oct 11 2020")
        assert not validator.conforming("2020-10-11")
        assert validator.drift_rate(["Oct 11 2020", "2020-10-11"]) == 0.5
        assert validator.validate_batch(["Nov 05 2018"] * 20)
        assert not validator.validate_batch(["Nov 05 2018"] * 10 + ["bad"] * 2)

    def test_pattern_validator_from_llm(self, gpt4):
        validator = PatternValidator.from_llm(gpt4, ["Aug 14 2023", "Aug 02 2021"])
        assert validator.conforming("Aug 31 1999")

    def test_mine_pattern_via_llm(self, gpt4):
        pattern = mine_column_pattern(gpt4, ["Aug 14 2023", "Aug 02 2021"])
        assert pattern == "Aug <digit>{2} <digit>{4}"

    def test_inconsistent_baseline_rejected(self):
        with pytest.raises(TransformError):
            PatternValidator.from_baseline(["a-b", "abc", "12"])


class TestPipelineSearch:
    def _dataset(self):
        import numpy as np

        rng = np.random.default_rng(4)
        n = 36
        col_a = [float(v) if i % 4 else None for i, v in enumerate(rng.normal(100, 15, n))]
        col_b = list(rng.normal(0, 1, n) * 500)
        labels = [int(v > 0) for v in col_b]
        return [col_a, col_b], labels

    def test_search_improves_or_matches_baseline(self, gpt4):
        columns, labels = self._dataset()
        pipeline = PipelineSearcher(gpt4).search(columns, labels)
        assert pipeline.score >= pipeline.baseline_score

    def test_missing_values_force_imputation(self, gpt4):
        columns, labels = self._dataset()
        pipeline = PipelineSearcher(gpt4).search(columns, labels)
        assert "impute_mean" in pipeline.operations

    def test_apply_runs_all_steps(self, gpt4):
        columns, labels = self._dataset()
        pipeline = PipelineSearcher(gpt4).search(columns, labels)
        out = pipeline.apply(columns)
        assert len(out) == len(columns)
        assert all(v is not None for column in out for v in column)

    def test_snippet_cache_limits_llm_calls(self, gpt4):
        columns, labels = self._dataset()
        searcher = PipelineSearcher(gpt4)
        searcher.search(columns, labels)
        calls_first = gpt4.meter.calls
        searcher.search(columns, labels)  # all snippets cached now
        assert gpt4.meter.calls == calls_first

    def test_empty_input_rejected(self, gpt4):
        with pytest.raises(ValueError):
            PipelineSearcher(gpt4).search([], [])
