"""AsyncGateway: determinism, priority/EDF ordering, shed/degrade, streams.

The load-bearing contract is bit-identical equivalence with the serial
loop (workers=1, no deadlines) — the hypothesis properties at the bottom
hammer it across random class interleavings, plus the invariant that an
expired-at-submit request is *never* dispatched to the provider.
"""

import asyncio
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlineExceededError, SchedulerClosedError
from repro.llm.client import LLMClient
from repro.serving import AsyncGateway, GatewayRequest, build_stack


class ManualClock:
    """Injectable monotonic clock so deadline tests never sleep."""

    def __init__(self):
        self.t = 1000.0

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class RecordingProvider:
    """Wraps a client; records every prompt the backend actually sees."""

    def __init__(self, seed=0):
        self.inner = LLMClient(seed=seed)
        self.calls = []
        self._lock = threading.Lock()

    def complete(self, prompt, model=None):
        with self._lock:
            self.calls.append(prompt)
        return self.inner.complete(prompt, model=model)

    def embed(self, text):
        return self.inner.embed(text)


class GatedProvider(RecordingProvider):
    """Blocks every completion until ``release`` is set."""

    def __init__(self, seed=0):
        super().__init__(seed=seed)
        self.release = threading.Event()

    def complete(self, prompt, model=None):
        assert self.release.wait(timeout=10)
        return super().complete(prompt, model=model)


def questions(n, tag="gw"):
    return [f"Question: what about {tag} item {i}?" for i in range(n)]


class TestGatewayBasics:
    def test_submit_returns_completion(self):
        async def run():
            async with AsyncGateway(LLMClient()) as gateway:
                return await gateway.submit("Question: what is a gateway?")

        completion = asyncio.run(run())
        assert completion.text

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncGateway(LLMClient(), classes=())
        with pytest.raises(ValueError):
            AsyncGateway(LLMClient(), classes=("a", "a"))
        with pytest.raises(ValueError):
            AsyncGateway(LLMClient(), classes=("a", "b"), default_class="c")
        with pytest.raises(ValueError):
            AsyncGateway(LLMClient(), max_queue_per_class=0)
        with pytest.raises(ValueError):
            AsyncGateway(LLMClient(), degrader=42)

    def test_unknown_priority_class_rejected(self):
        async def run():
            async with AsyncGateway(LLMClient()) as gateway:
                await gateway.submit("Question: hm?", priority="platinum")

        with pytest.raises(ValueError, match="platinum"):
            asyncio.run(run())

    def test_submit_after_close_raises(self):
        async def run():
            gateway = AsyncGateway(LLMClient())
            async with gateway:
                await gateway.submit("Question: warm-up?")
            with pytest.raises(SchedulerClosedError):
                await gateway.submit("Question: too late?")

        asyncio.run(run())

    def test_stats_snapshot_has_gateway_section(self):
        async def run():
            async with AsyncGateway(LLMClient()) as gateway:
                await gateway.submit("Question: stats?", priority="interactive")
                return gateway.stats.snapshot()

        snap = asyncio.run(run())
        gateway_section = snap["gateway"]
        assert gateway_section["submitted"] == 1
        assert gateway_section["completed"] == 1
        assert gateway_section["shed"] == 0
        assert gateway_section["by_class"]["interactive"]["completed"] == 1


class TestDeterminism:
    def test_workers1_no_deadlines_bit_identical_to_serial(self):
        # Repeated prompts through *stateful* cache-fronted stacks: the
        # gateway's forward order must equal submission order so cache
        # state mutates identically.
        pool = questions(6, "determinism")
        prompts = [pool[i % len(pool)] for i in range(18)]
        serial_stack = build_stack(LLMClient(), cache=True)
        expected = [serial_stack.complete(p) for p in prompts]

        gateway_stack = build_stack(LLMClient(), cache=True)

        async def run():
            async with AsyncGateway(
                gateway_stack, classes=("all",), workers=1
            ) as gateway:
                return await gateway.complete_all(prompts)

        got = asyncio.run(run())
        assert got == expected
        assert (
            gateway_stack.stats.cache_reuse_hits
            == serial_stack.stats.cache_reuse_hits
        )


class TestOrdering:
    def test_strict_class_priority(self):
        provider = RecordingProvider()

        async def run():
            async with AsyncGateway(provider, max_inflight=1) as gateway:
                tickets = []
                for cls in ("batch", "standard", "interactive", "batch", "interactive"):
                    tickets.append(
                        await gateway.enqueue(
                            GatewayRequest(f"Question: {cls} #{len(tickets)}?", priority=cls)
                        )
                    )
                await asyncio.gather(*(t.future for t in tickets))

        asyncio.run(run())
        classes = [prompt.split()[1] for prompt in provider.calls]
        assert classes == ["interactive", "interactive", "standard", "batch", "batch"]

    def test_edf_within_class_seq_tiebreak(self):
        provider = RecordingProvider()
        clock = ManualClock()

        async def run():
            async with AsyncGateway(
                provider, clock=clock.now, max_inflight=1
            ) as gateway:
                tickets = [
                    await gateway.enqueue(
                        GatewayRequest("Question: slack?", priority="standard", deadline_ms=60_000)
                    ),
                    await gateway.enqueue(
                        GatewayRequest("Question: urgent?", priority="standard", deadline_ms=5_000)
                    ),
                    await gateway.enqueue(
                        GatewayRequest("Question: none-a?", priority="standard")
                    ),
                    await gateway.enqueue(
                        GatewayRequest("Question: none-b?", priority="standard")
                    ),
                ]
                await asyncio.gather(*(t.future for t in tickets))

        asyncio.run(run())
        # Earliest deadline first; no-deadline (+inf key) last, in
        # submission order.
        assert provider.calls == [
            "Question: urgent?",
            "Question: slack?",
            "Question: none-a?",
            "Question: none-b?",
        ]


class TestShedAndDegrade:
    def test_shed_at_submit_never_dispatched(self):
        provider = RecordingProvider()

        async def run():
            async with AsyncGateway(provider) as gateway:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    await gateway.submit("Question: hopeless?", deadline_ms=0)
                return excinfo.value

        error = asyncio.run(run())
        assert error.deadline_ms == 0
        assert provider.calls == []

    def test_expired_in_queue_sheds_without_degrader(self):
        provider = RecordingProvider()
        clock = ManualClock()

        async def run():
            async with AsyncGateway(
                provider, clock=clock.now, degrader=None
            ) as gateway:
                ticket = await gateway.enqueue(
                    GatewayRequest("Question: expiring?", deadline_ms=5.0)
                )
                clock.advance(0.010)  # expire before the pump first runs
                with pytest.raises(DeadlineExceededError):
                    await ticket.future
                return ticket

        ticket = asyncio.run(run())
        assert ticket.status == "shed"
        assert provider.calls == []

    def test_expired_in_queue_degrades_through_resilience(self):
        stack = build_stack(LLMClient(), cache=True, resilience=True)
        clock = ManualClock()

        async def run():
            async with AsyncGateway(stack, clock=clock.now) as gateway:
                ticket = await gateway.enqueue(
                    GatewayRequest("Question: expiring?", deadline_ms=5.0)
                )
                clock.advance(0.010)
                completion = await ticket.future
                return ticket, completion

        ticket, completion = asyncio.run(run())
        assert ticket.status == "degraded"
        marker = completion.metadata["serving.gateway"]
        assert marker["degraded"] is True
        assert stack.stats.fallback_model_answers >= 1

    def test_late_completion_marked_but_delivered(self):
        provider = GatedProvider()
        clock = ManualClock()

        async def run():
            async with AsyncGateway(provider, clock=clock.now) as gateway:
                ticket = await gateway.enqueue(
                    GatewayRequest("Question: slow?", deadline_ms=100.0)
                )
                while gateway._inflight == 0:  # let the pump dispatch it
                    await asyncio.sleep(0.001)
                clock.advance(0.5)  # deadline lapses while inflight
                provider.release.set()
                completion = await ticket.future
                return ticket, completion

        ticket, completion = asyncio.run(run())
        assert ticket.status == "ok"
        assert ticket.late
        assert completion.metadata["serving.gateway"]["late"] is True

    def test_shed_expired_false_forwards_anyway(self):
        provider = RecordingProvider()

        async def run():
            async with AsyncGateway(provider, shed_expired=False) as gateway:
                return await gateway.submit("Question: stale?", deadline_ms=0)

        completion = asyncio.run(run())
        assert completion.text
        assert len(provider.calls) == 1


class TestBackpressure:
    def test_full_class_queue_parks_then_admits(self):
        provider = GatedProvider()

        async def run():
            async with AsyncGateway(
                provider, classes=("all",), max_queue_per_class=1, max_inflight=1
            ) as gateway:
                tasks = [
                    asyncio.ensure_future(gateway.submit(p))
                    for p in questions(4, "backpressure")
                ]
                await asyncio.sleep(0.01)  # some submits are now parked
                provider.release.set()
                return await asyncio.gather(*tasks), gateway.stats

        completions, stats = asyncio.run(run())
        assert all(c.text for c in completions)
        assert stats.gateway_backpressure_waits >= 1

    def test_close_wakes_parked_submitters(self):
        provider = GatedProvider()

        async def run():
            gateway = AsyncGateway(
                provider, classes=("all",), max_queue_per_class=1, max_inflight=1
            )
            async with gateway:
                accepted = asyncio.ensure_future(
                    gateway.submit("Question: admitted?")
                )
                await asyncio.sleep(0.01)
                parked = [
                    asyncio.ensure_future(gateway.submit(p))
                    for p in questions(3, "parked")
                ]
                await asyncio.sleep(0.01)
                provider.release.set()  # let the drain finish
                close_task = asyncio.ensure_future(gateway.close())
                results = await asyncio.gather(*parked, return_exceptions=True)
                await close_task
                return await accepted, results

        completion, results = asyncio.run(run())
        assert completion.text
        assert any(isinstance(r, SchedulerClosedError) for r in results)


class TestStreams:
    def test_complete_many_ordered_with_partial_failures(self):
        prompts = [
            GatewayRequest("Question: fine a?"),
            GatewayRequest("Question: hopeless?", deadline_ms=0),
            GatewayRequest("Question: fine b?"),
        ]

        async def run():
            async with AsyncGateway(LLMClient()) as gateway:
                return [r async for r in gateway.complete_many(prompts)]

        results = asyncio.run(run())
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert isinstance(results[1].error, DeadlineExceededError)
        assert results[1].status == "shed"

    def test_complete_many_as_completed_yields_everything(self):
        prompts = questions(5, "stream")

        async def run():
            async with AsyncGateway(LLMClient()) as gateway:
                return [
                    r
                    async for r in gateway.complete_many(prompts, as_completed=True)
                ]

        results = asyncio.run(run())
        assert sorted(r.index for r in results) == [0, 1, 2, 3, 4]
        assert all(r.ok for r in results)

    def test_complete_all_raises_on_shed(self):
        async def run():
            async with AsyncGateway(LLMClient()) as gateway:
                await gateway.complete_all(
                    ["Question: fine?", GatewayRequest("Question: dead?", deadline_ms=0)]
                )

        with pytest.raises(DeadlineExceededError):
            asyncio.run(run())


# ---------------------------------------------------------------- properties

class_indexes = st.lists(
    st.integers(min_value=0, max_value=2), min_size=1, max_size=12
)


@settings(max_examples=20, deadline=None)
@given(assignment=class_indexes)
def test_property_class_interleavings_match_serial(assignment):
    """Any interleaving of priority classes, no deadlines: every request's
    result is bit-identical to the serial loop's result for that prompt."""
    classes = ("interactive", "standard", "batch")
    prompts = questions(len(assignment), "prop")
    serial = LLMClient(seed=7)
    expected = {p: serial.complete(p) for p in prompts}

    async def run():
        async with AsyncGateway(LLMClient(seed=7), workers=1) as gateway:
            reqs = [
                GatewayRequest(p, priority=classes[k])
                for p, k in zip(prompts, assignment)
            ]
            return [r async for r in gateway.complete_many(reqs)]

    results = asyncio.run(run())
    assert all(r.ok for r in results)
    for result in results:
        assert result.completion == expected[result.request.prompt]


@settings(max_examples=15, deadline=None)
@given(picks=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=14))
def test_property_single_class_cache_stack_matches_serial(picks):
    """Single class, stateful cache-fronted stack, workers=1: the ordered
    result list is bit-identical to running the serial loop — same cache
    hits, same texts, same costs."""
    pool = questions(4, "cacheprop")
    prompts = [pool[k] for k in picks]
    serial_stack = build_stack(LLMClient(), cache=True)
    expected = [serial_stack.complete(p) for p in prompts]

    gateway_stack = build_stack(LLMClient(), cache=True)

    async def run():
        async with AsyncGateway(gateway_stack, classes=("all",), workers=1) as gateway:
            return await gateway.complete_all(prompts)

    assert asyncio.run(run()) == expected


@settings(max_examples=20, deadline=None)
@given(
    deadlines=st.lists(
        st.one_of(
            st.just(None),
            st.floats(min_value=-50.0, max_value=0.0),
            st.just(60_000.0),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_property_expired_at_submit_always_shed_never_dispatched(deadlines):
    """deadline_ms <= 0 at submit: always DeadlineExceededError, and the
    provider never sees the prompt; everything else completes."""
    provider = RecordingProvider()
    reqs = [
        GatewayRequest(f"Question: prop item {i}?", deadline_ms=d)
        for i, d in enumerate(deadlines)
    ]

    async def run():
        async with AsyncGateway(provider) as gateway:
            return [r async for r in gateway.complete_many(reqs)]

    results = asyncio.run(run())
    for result, deadline in zip(results, deadlines):
        if deadline is not None and deadline <= 0:
            assert isinstance(result.error, DeadlineExceededError)
            assert result.request.prompt not in provider.calls
        else:
            assert result.ok
    shed = sum(1 for d in deadlines if d is not None and d <= 0)
    assert len(provider.calls) == len(deadlines) - shed
