"""ResilienceMiddleware: backoff, circuit breaker, graceful degradation."""

import pytest

from repro.core.cache import SemanticCache
from repro.errors import (
    ResilienceExhaustedError,
    ServiceUnavailableError,
    TransientLLMError,
)
from repro.llm import FaultInjectingProvider, LLMClient
from repro.serving import (
    ConcurrentStack,
    ResilienceConfig,
    ResilienceMiddleware,
    ServiceStats,
    build_stack,
)

PROMPT = "Question: does the stack survive?"


class ScriptedProvider:
    """Fails the first ``fail_first`` complete() calls with a fixed transient
    error, then answers via a real client. The call counter is shared across
    reseeded siblings, mirroring FaultInjectingProvider's shared tally."""

    def __init__(self, fail_first=0, error_latency_ms=40.0):
        self.inner = LLMClient()
        self.error_latency_ms = error_latency_ms
        self._shared = {"calls": 0, "fail_first": fail_first}

    @property
    def calls(self):
        return self._shared["calls"]

    def complete(self, prompt, model=None):
        self._shared["calls"] += 1
        if self._shared["calls"] <= self._shared["fail_first"]:
            raise ServiceUnavailableError(
                "scripted outage", model=model or "default", latency_ms=self.error_latency_ms
            )
        return self.inner.complete(prompt, model=model)

    def complete_batch(self, shared_prefix, items, model=None):
        self._shared["calls"] += 1
        if self._shared["calls"] <= self._shared["fail_first"]:
            raise ServiceUnavailableError(
                "scripted outage", model=model or "default", latency_ms=self.error_latency_ms
            )
        return self.inner.complete_batch(shared_prefix, items, model=model)

    def embed(self, text):
        return self.inner.embed(text)

    def reseeded(self, offset):
        sibling = ScriptedProvider.__new__(ScriptedProvider)
        sibling.inner = self.inner.reseeded(offset)
        sibling.error_latency_ms = self.error_latency_ms
        sibling._shared = self._shared
        return sibling


class TestConfig:
    def test_backoff_schedule_is_capped(self):
        config = ResilienceConfig(backoff_base_ms=50.0, backoff_factor=2.0, backoff_cap_ms=150.0)
        assert [config.backoff_ms(a) for a in (1, 2, 3, 4)] == [50.0, 100.0, 150.0, 150.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_cooldown=-1)


class TestPassthrough:
    def test_fault_free_completion_is_untouched(self):
        resilient = ResilienceMiddleware(LLMClient())
        assert resilient.complete(PROMPT) == LLMClient().complete(PROMPT)

    def test_fault_free_batch_is_untouched(self):
        resilient = ResilienceMiddleware(LLMClient())
        bare = LLMClient()
        items = ["Question: A?", "Question: B?"]
        assert resilient.complete_batch("P.\n", items) == bare.complete_batch("P.\n", items)


class TestBackoffRecovery:
    def test_recovery_accounts_failed_attempts_and_backoff(self):
        stats = ServiceStats()
        provider = ScriptedProvider(fail_first=2, error_latency_ms=40.0)
        config = ResilienceConfig(max_attempts=4, backoff_base_ms=50.0, backoff_factor=2.0)
        resilient = ResilienceMiddleware(provider, config=config, stats=stats)
        completion = resilient.complete(PROMPT)
        # Two doomed attempts (40 ms each) + backoffs of 50 and 100 ms.
        detail = completion.metadata["serving.resilience"]
        assert detail["retries"] == 2
        assert detail["added_ms"] == pytest.approx(40 + 50 + 40 + 100)
        reference = LLMClient().reseeded(2).complete(PROMPT)
        assert completion.text == reference.text
        assert completion.latency_ms == pytest.approx(reference.latency_ms + detail["added_ms"])
        assert stats.transient_errors == 2
        assert stats.transient_errors_by_kind == {"ServiceUnavailableError": 2}
        assert stats.resilience_retries == 2
        assert stats.resilience_recoveries == 1
        assert stats.backoff_ms == pytest.approx(detail["added_ms"])

    def test_batch_recovery_decorates_every_item(self):
        provider = ScriptedProvider(fail_first=1, error_latency_ms=10.0)
        resilient = ResilienceMiddleware(provider, config=ResilienceConfig(backoff_base_ms=20.0))
        completions = resilient.complete_batch("P.\n", ["Question: A?", "Question: B?"])
        assert len(completions) == 2
        for completion in completions:
            detail = completion.metadata["serving.resilience"]
            assert detail["retries"] == 1
            assert detail["added_ms"] == pytest.approx((10 + 20) / 2)

    def test_snapshot_and_render_carry_the_counters(self):
        stats = ServiceStats()
        resilient = ResilienceMiddleware(
            ScriptedProvider(fail_first=1), config=ResilienceConfig(), stats=stats
        )
        resilient.complete(PROMPT)
        section = stats.snapshot()["resilience"]
        assert section["transient_errors"] == 1
        assert section["recoveries"] == 1
        assert "transient errors" in stats.render()


class TestDegradation:
    def test_falls_back_to_cheaper_model(self):
        stats = ServiceStats()
        flaky = FaultInjectingProvider(LLMClient(), rates={"gpt-4": 1.0}, seed=2)
        resilient = ResilienceMiddleware(
            flaky,
            config=ResilienceConfig(max_attempts=2, fallback_models=("babbage-002",)),
            stats=stats,
        )
        completion = resilient.complete(PROMPT, model="gpt-4")
        assert completion.model == "babbage-002"
        detail = completion.metadata["serving.resilience"]
        assert detail["fallback"] == "model"
        assert detail["degraded_from"] == "gpt-4"
        assert stats.fallback_model_answers == 1

    def test_fallback_equal_to_primary_is_skipped(self):
        flaky = FaultInjectingProvider(LLMClient(), rates={"gpt-4": 1.0}, seed=2)
        resilient = ResilienceMiddleware(
            flaky, config=ResilienceConfig(max_attempts=1, fallback_models=("gpt-4",))
        )
        with pytest.raises(ResilienceExhaustedError):
            resilient.complete(PROMPT, model="gpt-4")

    def test_falls_back_to_cached_answer_read_only(self):
        stats = ServiceStats()
        cache = SemanticCache(reuse_threshold=0.9, augment_threshold=0.75)
        cache.put("does the stack survive?", "yes, via the cache", cost=0.01)
        lookups_before = cache.stats.lookups
        flaky = FaultInjectingProvider(LLMClient(), default_rate=1.0, seed=2)
        resilient = ResilienceMiddleware(
            flaky,
            config=ResilienceConfig(max_attempts=2, fallback_models=()),
            fallback_cache=cache,
            cache_key_fn=lambda prompt: prompt[len("Question: "):],
            stats=stats,
        )
        completion = resilient.complete(PROMPT)
        assert completion.text == "yes, via the cache"
        assert completion.engine == "fallback"
        assert completion.cost == 0.0
        assert completion.metadata["serving.resilience"]["fallback"] == "cache"
        assert stats.fallback_cache_answers == 1
        # peek() must not perturb the cache's own telemetry or clocks.
        assert cache.stats.lookups == lookups_before

    def test_typed_error_when_everything_fails(self):
        stats = ServiceStats()
        flaky = FaultInjectingProvider(LLMClient(), default_rate=1.0, seed=2)
        resilient = ResilienceMiddleware(
            flaky, config=ResilienceConfig(max_attempts=2, fallback_models=()), stats=stats
        )
        with pytest.raises(ResilienceExhaustedError) as excinfo:
            resilient.complete(PROMPT)
        assert isinstance(excinfo.value.__cause__, TransientLLMError)
        assert stats.resilience_exhausted == 1


class TestCircuitBreaker:
    def _middleware(self):
        stats = ServiceStats()
        flaky = FaultInjectingProvider(LLMClient(), rates={"gpt-4": 1.0}, seed=1)
        resilient = ResilienceMiddleware(
            flaky,
            config=ResilienceConfig(
                max_attempts=1,
                breaker_threshold=2,
                breaker_cooldown=2,
                fallback_models=("babbage-002",),
            ),
            stats=stats,
        )
        return resilient, flaky, stats

    def test_open_half_open_close_cycle(self):
        resilient, flaky, stats = self._middleware()
        # Two consecutive exhausted requests open the breaker.
        resilient.complete(PROMPT, model="gpt-4")
        assert resilient.breaker_state("gpt-4") == "closed"
        resilient.complete(PROMPT, model="gpt-4")
        assert resilient.breaker_state("gpt-4") == "open"
        assert stats.breaker_opens == 1
        # Cooldown: two requests shed without touching the model.
        injected_before = flaky.total_injected
        for _ in range(2):
            completion = resilient.complete(PROMPT, model="gpt-4")
            assert completion.model == "babbage-002"
        assert flaky.total_injected == injected_before  # short-circuited
        assert stats.breaker_short_circuits == 2
        # Cooldown over: a half-open probe goes through, fails, re-opens.
        resilient.complete(PROMPT, model="gpt-4")
        assert stats.breaker_probes == 1
        assert stats.breaker_opens == 2
        assert resilient.breaker_state("gpt-4") == "open"
        # Heal the backend; after the next cooldown the probe closes it.
        flaky.rates["gpt-4"] = 0.0
        for _ in range(2):
            resilient.complete(PROMPT, model="gpt-4")
        answered = resilient.complete(PROMPT, model="gpt-4")
        assert answered.model == "gpt-4"
        assert stats.breaker_probes == 2
        assert stats.breaker_closes == 1
        assert resilient.breaker_state("gpt-4") == "closed"
        # Closed again: traffic flows normally.
        assert resilient.complete(PROMPT, model="gpt-4").model == "gpt-4"

    def test_breakers_are_per_model(self):
        resilient, _, _ = self._middleware()
        resilient.complete(PROMPT, model="gpt-4")
        resilient.complete(PROMPT, model="gpt-4")
        assert resilient.breaker_state("gpt-4") == "open"
        assert resilient.breaker_state("babbage-002") == "closed"
        answered = resilient.complete(PROMPT, model="babbage-002")
        assert answered.model == "babbage-002"
        assert "serving.resilience" not in answered.metadata

    def test_probe_success_needs_no_prior_failure_reset(self):
        # A single-threshold breaker: one failure opens, probe closes.
        stats = ServiceStats()
        provider = ScriptedProvider(fail_first=1)
        resilient = ResilienceMiddleware(
            provider,
            config=ResilienceConfig(
                max_attempts=1, breaker_threshold=1, breaker_cooldown=0, fallback_models=()
            ),
            stats=stats,
        )
        with pytest.raises(ResilienceExhaustedError):
            resilient.complete(PROMPT)
        assert resilient.breaker_state("gpt-3.5-turbo") == "open"
        resilient.complete(PROMPT)  # cooldown 0: immediate successful probe
        assert resilient.breaker_state("gpt-3.5-turbo") == "closed"
        assert stats.breaker_closes == 1


class TestStackIntegration:
    def test_build_stack_wires_the_layer(self):
        stack = build_stack(
            FaultInjectingProvider(LLMClient(), default_rate=0.3, seed=4), resilience=True
        )
        assert stack.describe() == "resilience -> metrics -> FaultInjectingProvider"
        for i in range(30):
            stack.complete(f"Question: item {i}?")
        assert stack.stats.transient_errors > 0
        assert stack.stats.resilience_recoveries > 0

    def test_custom_config_accepted(self):
        stack = build_stack(LLMClient(), resilience=ResilienceConfig(max_attempts=2))
        assert stack.provider.config.max_attempts == 2

    def test_concurrent_stack_survives_faults(self):
        flaky = FaultInjectingProvider(LLMClient(), default_rate=0.3, seed=4)
        stack = build_stack(flaky, resilience=True)
        prompts = [f"Question: item {i}?" for i in range(24)]
        with ConcurrentStack(stack, max_batch_size=4, workers=4) as served:
            completions = served.complete_many(prompts)
        assert len(completions) == len(prompts)
        assert all(completion.text for completion in completions)
        assert flaky.total_injected > 0

    def test_resilient_stack_matches_unprotected_at_zero_faults(self):
        plain = build_stack(FaultInjectingProvider(LLMClient(), seed=6))
        guarded = build_stack(FaultInjectingProvider(LLMClient(), seed=6), resilience=True)
        for i in range(8):
            prompt = f"Question: equivalence case {i}?"
            assert guarded.complete(prompt) == plain.complete(prompt)
