"""Tests for the sharded multi-tenant serving cluster."""

import pytest

from repro.core.cache import CacheStats, EvictionPolicy, SemanticCache
from repro.core.privacy import CacheSharingGate, isolation_gate
from repro.errors import BudgetExceededError, QuotaExceededError
from repro.llm.provider import make_client
from repro.serving import ServiceStats
from repro.serving.cluster import (
    ClusterRouter,
    ServingCluster,
    ShardedSemanticCache,
    TenantPolicy,
)

POLICIES = list(EvictionPolicy)


def _stream():
    base = [f"Question: item number {i} of the corpus?" for i in range(12)]
    # exact repeats + rewordings: exercises reuse, augment and miss tiers
    return base + [q + " please" for q in base[:6]] + base[:8]


# ---------------------------------------------------------------------------
# Sharded cache == single cache
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
@pytest.mark.parametrize("policy", POLICIES)
def test_sharded_cache_matches_single_cache(n_shards, policy):
    """Scatter-probe over N partitions must reproduce the unsharded cache
    probe for probe: same tier, same winning entry, same similarity."""
    single = SemanticCache(capacity=256, policy=policy)
    sharded = ShardedSemanticCache(
        ClusterRouter([f"s{i}" for i in range(n_shards)]),
        tenant_capacity=256,
        policy=policy,
    )
    for i, query in enumerate(_stream()):
        want = single.lookup(query)
        got = sharded.lookup("acme", query)
        assert got.tier == want.tier, f"step {i}: {query!r}"
        if want.entry is None:
            assert got.entry is None
            response = f"answer #{i}"
            single.put(query, response, cost=0.01)
            sharded.put("acme", query, response, cost=0.01)
        else:
            assert got.entry is not None
            assert got.entry.key == want.entry.key
            assert got.entry.response == want.entry.response
            assert got.similarity == pytest.approx(want.similarity, abs=1e-12)
    tstats = sharded.stats_for("acme")
    assert tstats.lookups == single.stats.lookups
    assert tstats.reuse_hits == single.stats.reuse_hits
    assert tstats.augment_hits == single.stats.augment_hits
    assert tstats.misses == single.stats.misses
    assert tstats.cost_saved == pytest.approx(single.stats.cost_saved)
    assert len(sharded) == len(single)


def test_sharded_cache_partitions_land_on_owner_shards():
    router = ClusterRouter(["s0", "s1", "s2", "s3"])
    sharded = ShardedSemanticCache(router, tenant_capacity=64)
    for i in range(40):
        sharded.put("acme", f"query #{i}", f"answer #{i}")
    for shard, cache in sharded.partitions_of("acme"):
        for key in cache.entries:
            assert router.route_request("acme", key) == shard
    assert len(sharded.partitions_of("acme")) > 1  # actually sharded


# ---------------------------------------------------------------------------
# Cluster == single stack
# ---------------------------------------------------------------------------


def _run_cluster(n_shards, stream, concurrent=False, thresholds=(0.95, 0.75)):
    cluster = ServingCluster(
        lambda shard: make_client(),
        n_shards=n_shards,
        tenant_capacity=128,
        reuse_threshold=thresholds[0],
        augment_threshold=thresholds[1],
    )
    try:
        if concurrent:
            futures = [cluster.submit(p, tenant=t) for t, p in stream]
            return [f.result().text for f in futures]
        return [cluster.complete(p, tenant=t).text for t, p in stream]
    finally:
        cluster.close()


def test_cluster_matches_single_shard_reference():
    prompts = [f"Question: what is {i} squared?" for i in range(15)]
    stream = [(f"t{i % 3}", p) for i, p in enumerate(prompts + prompts[:8] + prompts)]
    # Serial: similarity tiers included — the scatter-merge is probe-for-
    # probe identical to the single cache, so augment rewrites match too.
    reference = _run_cluster(1, stream)
    for n_shards in (2, 4):
        assert _run_cluster(n_shards, stream) == reference
    # Concurrent: exact-match mode. Cross-key similarity hits depend on
    # which keys are in flight simultaneously (true of any cache shared by
    # parallel workers, one shard or eight), so the concurrency invariant
    # is gated where hit patterns are key-local — as in the bench.
    exact = (1.0, 1.0)
    concurrent_reference = _run_cluster(1, stream, thresholds=exact)
    for n_shards in (2, 4):
        assert (
            _run_cluster(n_shards, stream, concurrent=True, thresholds=exact)
            == concurrent_reference
        )


def test_requests_spread_across_shards():
    cluster = ServingCluster(lambda shard: make_client(), n_shards=4)
    try:
        for i in range(40):
            cluster.complete(f"Question: spread {i}?", tenant=f"t{i % 2}")
        assert sum(cluster.requests_by_shard.values()) == 40
        assert sum(1 for n in cluster.requests_by_shard.values() if n > 0) >= 3
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# Tenant isolation (all eviction policies, with and without the gate)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_tenants_are_isolated_without_a_gate(policy):
    assert isolation_gate() is None  # the default is no sharing at all
    sharded = ShardedSemanticCache(
        ClusterRouter(["s0", "s1", "s2"]), tenant_capacity=64, policy=policy
    )
    for i in range(10):
        sharded.put("alpha", f"Question: secret fact {i}?", f"classified answer {i}")
    # exact and near-duplicate probes from another tenant must all miss
    for i in range(10):
        assert sharded.lookup("beta", f"Question: secret fact {i}?").tier == "miss"
        assert sharded.lookup("beta", f"Question: secret fact {i}? please").tier == "miss"
    # and probing never created state in alpha's partitions for beta
    assert sharded.entries_of("beta") == {}
    assert len(sharded.entries_of("alpha")) == 10


@pytest.mark.parametrize("policy", POLICIES)
def test_gate_allows_reads_without_mutating_the_owner(policy):
    gate = CacheSharingGate([("alpha", "beta")], epsilon_per_share=0.1)
    sharded = ShardedSemanticCache(
        ClusterRouter(["s0", "s1"]), tenant_capacity=64, policy=policy, sharing=gate
    )
    sharded.put("alpha", "Question: shared fact?", "shared answer", cost=0.02)
    owner_entry = sharded.entries_of("alpha")["Question: shared fact?"]
    hits_before = owner_entry.reuse_hits
    found = sharded.lookup("beta", "Question: shared fact?")
    assert found.tier == "reuse" and found.shared
    assert found.owner_tenant == "alpha"
    assert found.entry.response == "shared answer"
    # read-only: the owner's entry and stats are untouched
    assert owner_entry.reuse_hits == hits_before
    assert sharded.stats_for("alpha").lookups == 0
    assert gate.ledger() == {"beta": {"alpha": 1}}
    # an unrelated tenant still sees nothing
    assert sharded.lookup("gamma", "Question: shared fact?").tier == "miss"


@pytest.mark.parametrize("policy", POLICIES)
def test_gate_closes_when_epsilon_budget_is_spent(policy):
    gate = CacheSharingGate(
        [("alpha", "beta")], epsilon_per_share=0.1, epsilon_budget=0.2
    )
    sharded = ShardedSemanticCache(
        ClusterRouter(["s0", "s1"]), tenant_capacity=64, policy=policy, sharing=gate
    )
    for i in range(4):
        sharded.put("alpha", f"Question: metered fact {i}?", f"answer {i}")
    tiers = [
        sharded.lookup("beta", f"Question: metered fact {i}?").tier for i in range(4)
    ]
    assert tiers == ["reuse", "reuse", "miss", "miss"]  # 2 shares fit eps=0.2
    assert gate.total_shares() == 2
    assert gate.denied_budget >= 1
    assert gate.epsilon_spent() == pytest.approx(0.2)


def test_gate_rejects_malformed_groups():
    with pytest.raises(ValueError):
        CacheSharingGate([("solo",)])  # a group of one shares with nobody
    with pytest.raises(ValueError):
        CacheSharingGate([("a", "b"), ("b", "c")])  # no tenant in two groups
    gate = CacheSharingGate([("a", "b")])
    assert not gate.allows("a", "a")  # self-serving is not sharing
    assert not gate.allows("a", "outsider")


# ---------------------------------------------------------------------------
# Budgets and quotas
# ---------------------------------------------------------------------------


def test_quota_rejects_excess_requests():
    cluster = ServingCluster(
        lambda shard: make_client(),
        n_shards=2,
        policies={"small": TenantPolicy(max_requests=3)},
    )
    try:
        for i in range(3):
            cluster.complete(f"Question: {i}?", tenant="small")
        with pytest.raises(QuotaExceededError):
            cluster.complete("Question: one more?", tenant="small")
        # other tenants are unaffected
        cluster.complete("Question: fine?", tenant="big")
        assert cluster.ledger_for("small").rejections == 1
    finally:
        cluster.close()


def test_budget_stops_llm_spend_but_not_cache_hits():
    cluster = ServingCluster(lambda shard: make_client(), n_shards=2)
    try:
        cluster.set_policy("capped", TenantPolicy(budget_usd=1e-9))
        first = cluster.complete("Question: the only paid call?", tenant="capped")
        assert first.cost > 0
        with pytest.raises(BudgetExceededError):
            cluster.complete("Question: a different prompt?", tenant="capped")
        # the exact repeat is served from cache — free, so still allowed
        again = cluster.complete("Question: the only paid call?", tenant="capped")
        assert again.cost == 0.0
        assert again.text == first.text
        assert cluster.spent_usd("capped") == pytest.approx(first.cost)
        snap = cluster.snapshot()
        assert snap["tenancy"]["capped"]["rejections"] == 1
    finally:
        cluster.close()


def test_budgets_are_charged_to_the_right_tenant():
    cluster = ServingCluster(lambda shard: make_client(), n_shards=4)
    try:
        for i in range(6):
            cluster.complete(f"Question: alpha {i}?", tenant="alpha")
        beta_before = cluster.spent_usd("beta")
        assert beta_before == 0.0
        cluster.complete("Question: beta 0?", tenant="beta")
        assert cluster.spent_usd("beta") > 0
        total = sum(cluster.spent_usd(t) for t in cluster.tenants())
        assert total == pytest.approx(cluster.stats.cost_usd)
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# Per-tenant stats namespaces and the reset fix
# ---------------------------------------------------------------------------


def test_snapshot_carries_tenant_namespaces():
    cluster = ServingCluster(lambda shard: make_client(), n_shards=2)
    try:
        cluster.complete("Question: ns?", tenant="acme")
        cluster.complete("Question: ns?", tenant="acme")  # cache hit
        snap = cluster.stats.snapshot()
        assert snap["tenants"]["acme"]["cache"]["lookups"] == 2
        assert snap["tenants"]["acme"]["cache"]["reuse_hits"] == 1
        assert snap["tenants"]["acme"]["llm"]["calls"] == 1
        # a namespace-free ServiceStats snapshot has no tenants key at all
        assert "tenants" not in ServiceStats().snapshot()
    finally:
        cluster.close()


def test_reset_zeroes_tenant_namespaces_registered_after_construction():
    stats = ServiceStats()
    stats.reset()  # registry empty: nothing to recurse into
    late = stats.tenant("late-tenant")  # registered AFTER the first reset
    late.cache_lookups = 7
    late.llm_calls = 3
    stats.reset()
    assert stats.tenant("late-tenant") is late  # same namespace object
    assert late.cache_lookups == 0
    assert late.llm_calls == 0
    assert stats.tenant_names() == ["late-tenant"]


def test_cluster_reset_republishes_tenant_ledgers():
    cluster = ServingCluster(lambda shard: make_client(), n_shards=2)
    try:
        cluster.set_policy("acme", TenantPolicy(budget_usd=5.0))
        cluster.complete("Question: paid?", tenant="acme")
        spent = cluster.spent_usd("acme")
        assert spent > 0
        cluster.stats.reset()
        tenant_snap = cluster.stats.snapshot()["tenants"]["acme"]
        # counters are zeroed, but the enforcement ledger is re-published
        assert tenant_snap["llm"]["calls"] == 0
        assert tenant_snap["budget"]["spent_usd"] == pytest.approx(spent)
        assert tenant_snap["budget"]["limit_usd"] == 5.0
    finally:
        cluster.close()


def test_cluster_snapshot_and_describe():
    gate = CacheSharingGate([("a", "b")])
    cluster = ServingCluster(lambda shard: make_client(), n_shards=2, sharing=gate)
    try:
        cluster.complete("Question: shape?", tenant="a")
        snap = cluster.snapshot()
        assert set(snap) >= {"stats", "tenancy", "requests_by_shard", "router", "sharing"}
        assert snap["tenancy"]["a"]["requests"] == 1
        assert "ring(2 shards" in cluster.describe()
        assert "sharded-cache" in cluster.describe()
        assert "cache" in cluster.report()
    finally:
        cluster.close()
