"""Per-layer behavior of the serving middleware."""

import pytest

from repro.core.cache import SemanticCache
from repro.core.cascade import CascadeClient, ConfidenceDecisionModel
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.errors import BudgetExceededError
from repro.llm import LLMClient
from repro.llm.client import default_world
from repro.serving import (
    BudgetMiddleware,
    CascadeMiddleware,
    CompletionProvider,
    MetricsMiddleware,
    RetryMiddleware,
    SemanticCacheMiddleware,
    ServiceStats,
    last_question_key,
)


@pytest.fixture(scope="module")
def examples():
    return generate_hotpot(default_world(), n=6, seed=41)


def test_llmclient_satisfies_provider_protocol():
    assert isinstance(LLMClient(), CompletionProvider)
    stats = ServiceStats()
    assert isinstance(MetricsMiddleware(LLMClient(), stats=stats), CompletionProvider)
    assert isinstance(SemanticCacheMiddleware(LLMClient(), stats=stats), CompletionProvider)


def test_last_question_key_extracts_trailing_question():
    prompt = qa_prompt("Who directed The Silent Mirror?")
    assert last_question_key(prompt) == "Who directed The Silent Mirror?"
    assert last_question_key("Question: Bare?") == "Bare?"
    assert last_question_key("no question marker") == "no question marker"


class TestSemanticCacheMiddleware:
    def test_repeat_prompt_replays_at_zero_cost(self, examples):
        client = LLMClient()
        stats = ServiceStats()
        cached = SemanticCacheMiddleware(client, key_fn=last_question_key, stats=stats)
        prompt = qa_prompt(examples[0].question)
        first = cached.complete(prompt)
        cost_after_first = client.meter.cost
        second = cached.complete(prompt)
        assert second.text == first.text
        assert second.cost == 0.0 and second.usage.total_tokens == 0
        assert second.metadata["serving.cache"]["tier"] == "reuse"
        assert client.meter.cost == cost_after_first  # no LLM traffic on the hit
        assert stats.cache_lookups == 2
        assert stats.cache_reuse_hits == 1
        assert stats.cache_misses == 1
        assert stats.cache_cost_saved > 0.0

    def test_replayed_completion_preserves_model_and_engine(self, examples):
        cached = SemanticCacheMiddleware(LLMClient(), key_fn=last_question_key)
        prompt = qa_prompt(examples[1].question)
        first = cached.complete(prompt)
        second = cached.complete(prompt)
        assert (second.model, second.engine, second.confidence) == (
            first.model,
            first.engine,
            first.confidence,
        )

    def test_batches_bypass_the_cache(self):
        stats = ServiceStats()
        cached = SemanticCacheMiddleware(LLMClient(), stats=stats)
        cached.complete_batch("Shared prefix.\n", ["Question: A?", "Question: B?"])
        assert stats.cache_lookups == 0

    def test_lookup_latency_counters_populated(self, examples):
        stats = ServiceStats()
        cached = SemanticCacheMiddleware(LLMClient(), key_fn=last_question_key, stats=stats)
        prompt = qa_prompt(examples[0].question)
        cached.complete(prompt)  # miss -> put
        cached.complete(prompt)  # reuse hit -> no put
        assert stats.cache_lookup_ms > 0.0
        assert stats.cache_put_ms > 0.0
        assert stats.cache_mean_lookup_ms == pytest.approx(stats.cache_lookup_ms / 2)
        snapshot = stats.snapshot()["cache"]
        assert snapshot["lookup_ms"] >= 0.0
        assert snapshot["mean_lookup_ms"] >= 0.0
        assert snapshot["put_ms"] >= 0.0
        report = stats.render()
        assert "lookup time (ms)" in report


class TestCascadeMiddleware:
    def test_matches_cascade_client_decisions_and_cost(self, examples):
        chain = ("babbage-002", "gpt-3.5-turbo", "gpt-4")
        decisions = [ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)]
        stats = ServiceStats()
        middleware = CascadeMiddleware(
            LLMClient(), chain=chain, decision_models=decisions, stats=stats
        )
        reference = CascadeClient(
            LLMClient(),
            chain=chain,
            decision_models=[ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)],
        )
        expected_escalations = 0
        for ex in examples:
            via_stack = middleware.complete(qa_prompt(ex.question))
            via_client = reference.complete(qa_prompt(ex.question))
            assert via_stack.text == via_client.final.text
            assert via_stack.model == via_client.model
            assert via_stack.cost == pytest.approx(via_client.cost)
            assert via_stack.metadata["serving.cascade"]["escalations"] == via_client.escalations
            expected_escalations += via_client.escalations
        assert stats.cascade_requests == len(examples)
        assert stats.escalations == expected_escalations
        assert sum(stats.answered_by.values()) == len(examples)

    def test_explicit_model_bypasses_routing(self, examples):
        stats = ServiceStats()
        middleware = CascadeMiddleware(LLMClient(), stats=stats)
        direct = middleware.complete(qa_prompt(examples[0].question), model="gpt-4")
        assert direct.model == "gpt-4"
        assert stats.cascade_requests == 0


class TestRetryMiddleware:
    def test_unreachable_threshold_exhausts_retries(self, examples):
        stats = ServiceStats()
        retry = RetryMiddleware(
            LLMClient(model="babbage-002"),
            max_retries=2,
            min_confidence=1.01,  # unattainable: every draw is rejected
            stats=stats,
        )
        completion = retry.complete(qa_prompt(examples[0].question))
        assert completion.metadata["serving.retries"] == 2
        assert stats.retries == 2
        assert stats.retry_rescues == 0

    def test_redraws_are_deterministic_seed_shifts(self, examples):
        prompt = qa_prompt(examples[2].question)
        client = LLMClient(model="babbage-002", seed=0)
        retry = RetryMiddleware(client, max_retries=1, min_confidence=1.01)
        best = retry.complete(prompt)
        first = LLMClient(model="babbage-002", seed=0).complete(prompt)
        redraw = LLMClient(model="babbage-002", seed=1).complete(prompt)
        expected = redraw if redraw.confidence > first.confidence else first
        assert best.text == expected.text
        assert best.confidence == expected.confidence

    def test_validator_rescue_counts_once(self, examples):
        seen = []

        def reject_first(completion):
            seen.append(completion.text)
            return len(seen) > 1

        stats = ServiceStats()
        retry = RetryMiddleware(
            LLMClient(), max_retries=3, validator=reject_first, stats=stats
        )
        completion = retry.complete(qa_prompt(examples[3].question))
        assert completion.metadata["serving.retries"] == 1
        assert stats.retries == 1
        assert stats.retry_rescues == 1

    def test_accepted_first_draw_skips_retries(self, examples):
        stats = ServiceStats()
        retry = RetryMiddleware(
            LLMClient(model="gpt-4"), max_retries=3, min_confidence=0.0, stats=stats
        )
        retry.complete(qa_prompt(examples[4].question))
        assert stats.retry_requests == 1
        assert stats.retries == 0

    def test_usage_and_cost_aggregate_over_all_attempts(self, examples):
        # Regression: the retry layer used to return only the best draw's
        # usage/cost, hiding the redraw price from budget/metrics above it.
        prompt = qa_prompt(examples[5].question)
        retry = RetryMiddleware(
            LLMClient(model="babbage-002", seed=0), max_retries=2, min_confidence=1.01
        )
        best = retry.complete(prompt)
        draws = [
            LLMClient(model="babbage-002", seed=offset).complete(prompt)
            for offset in (0, 1, 2)
        ]
        assert best.cost == pytest.approx(sum(d.cost for d in draws))
        assert best.usage.prompt_tokens == sum(d.usage.prompt_tokens for d in draws)
        assert best.usage.completion_tokens == sum(d.usage.completion_tokens for d in draws)
        assert best.latency_ms == pytest.approx(sum(d.latency_ms for d in draws))
        # The *content* is still the single best draw's.
        winner = max(draws, key=lambda d: d.confidence)
        assert (best.text, best.confidence) == (winner.text, winner.confidence)

    def test_single_accepted_draw_charges_exactly_once(self, examples):
        prompt = qa_prompt(examples[0].question)
        retry = RetryMiddleware(LLMClient(), max_retries=3, min_confidence=0.0)
        assert retry.complete(prompt) == LLMClient().complete(prompt)

    def test_batches_bypass_validation_and_redraws(self):
        # Pins the documented contract: complete_batch never validates, so
        # a reject-everything validator must not trigger a single redraw.
        stats = ServiceStats()
        client = LLMClient()
        retry = RetryMiddleware(
            client, max_retries=3, validator=lambda completion: False, stats=stats
        )
        items = ["Question: A?", "Question: B?"]
        via_retry = retry.complete_batch("Shared prefix.\n", items)
        direct = LLMClient().complete_batch("Shared prefix.\n", items)
        assert via_retry == direct
        assert stats.retries == 0
        assert stats.retry_requests == 0
        assert client.meter.calls == len(items)  # no redraw traffic
        assert "without validation" in RetryMiddleware.complete_batch.__doc__


class TestBudgetMiddleware:
    def test_ceiling_enforced_between_calls(self, examples):
        stats = ServiceStats()
        budget = BudgetMiddleware(LLMClient(), budget_usd=1e-9, stats=stats)
        budget.complete(qa_prompt(examples[0].question))  # spent == 0 at check time
        with pytest.raises(BudgetExceededError):
            budget.complete(qa_prompt(examples[1].question))
        assert stats.budget_rejections == 1
        assert stats.budget_spent_usd == pytest.approx(budget.spent_usd)
        assert budget.remaining() == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetMiddleware(LLMClient(), budget_usd=-1.0)

    def test_reset_republishes_the_ledger(self, examples):
        # Regression: stats.reset() used to zero budget_spent_usd while the
        # middleware's own ledger kept counting — the snapshot under-reported
        # spend until the next charge.
        stats = ServiceStats()
        budget = BudgetMiddleware(LLMClient(), budget_usd=5.0, stats=stats)
        budget.complete(qa_prompt(examples[0].question))
        spent = budget.spent_usd
        assert spent > 0.0
        stats.reset()
        assert budget.spent_usd == pytest.approx(spent)  # ledger survives
        assert stats.budget_spent_usd == pytest.approx(spent)  # and is re-published
        assert stats.budget_limit_usd == 5.0
        snapshot = stats.snapshot()["budget"]
        assert snapshot["spent_usd"] == pytest.approx(spent)

    def test_reseeded_clones_share_one_ledger(self, examples):
        # Regression: reseeded siblings (how the retry layer redraws) used
        # to carry a copied spend float, so redraw charges escaped the
        # original's ceiling.
        stats = ServiceStats()
        budget = BudgetMiddleware(LLMClient(), budget_usd=5.0, stats=stats)
        sibling = budget.reseeded(1)
        sibling.complete(qa_prompt(examples[1].question))
        assert budget.spent_usd == pytest.approx(sibling.spent_usd)
        assert budget.spent_usd > 0.0


class TestMetricsMiddleware:
    def test_counters_match_client_meter(self, examples):
        client = LLMClient()
        stats = ServiceStats()
        metrics = MetricsMiddleware(client, stats=stats)
        for ex in examples[:3]:
            metrics.complete(qa_prompt(ex.question))
        metrics.complete_batch("Shared prefix.\n", ["Question: A?", "Question: B?"])
        assert stats.llm_calls == client.meter.calls == 5
        assert stats.completion_tokens == client.meter.completion_tokens
        assert stats.cost_usd == pytest.approx(client.meter.cost)
        assert set(stats.per_model) == set(client.meter.per_model)
