"""Thread-safety regression tests for the shared serving hot state.

Each test hammers one structure from many threads and then asserts the
invariants that unsynchronized numpy-buffer mutation used to break: stats
that add up, entry dicts and vector indexes that agree, ring buffers whose
cached norms match their rows. Failures here are probabilistic by nature —
the locks make them impossible, not merely rare.
"""

import threading

import numpy as np
import pytest

from repro.core.cache import AdmissionPredictor, SemanticCache
from repro.llm.client import LLMClient, Usage, UsageMeter
from repro.llm.embeddings import EmbeddingModel, embed_text
from repro.serving import ConcurrentStack, ServiceStats, build_stack

N_THREADS = 8


def _run_threads(worker, n_threads=N_THREADS):
    errors = []

    def wrapped(thread_id):
        try:
            worker(thread_id)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,), daemon=True) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


class TestSemanticCacheConcurrency:
    def test_hammer_lookup_put_invariants(self):
        cache = SemanticCache(capacity=32, reuse_threshold=0.9, augment_threshold=0.7)
        ops_per_thread = 60

        def worker(thread_id):
            for i in range(ops_per_thread):
                query = f"shared query about topic {(thread_id + i) % 48}"
                lookup = cache.lookup(query)
                assert lookup.tier in ("reuse", "augment", "miss")
                if lookup.tier != "reuse":
                    cache.put(query, f"answer {i}", cost=0.01)

        _run_threads(worker)

        stats = cache.stats
        assert stats.lookups == N_THREADS * ops_per_thread
        assert stats.reuse_hits + stats.augment_hits + stats.misses == stats.lookups
        assert len(cache.entries) <= cache.capacity
        # Entry dict and vector index must agree exactly (no torn inserts
        # or evictions that removed one side only).
        cache.flush()
        assert set(cache.entries) == set(cache.index._live)

    def test_hammer_with_admission_predictor(self):
        cache = SemanticCache(
            capacity=16,
            reuse_threshold=0.9,
            augment_threshold=0.7,
            admission=AdmissionPredictor(history=32, similarity_threshold=0.9),
        )

        def worker(thread_id):
            for i in range(40):
                query = f"admission probe {(thread_id * 7 + i) % 24}"
                if cache.lookup(query).tier != "reuse":
                    cache.put(query, "answer", cost=0.01)

        _run_threads(worker)
        assert len(cache.entries) <= cache.capacity
        cache.flush()
        assert set(cache.entries) == set(cache.index._live)
        assert cache.stats.reuse_hits + cache.stats.augment_hits + cache.stats.misses == (
            cache.stats.lookups
        )


class TestAdmissionPredictorConcurrency:
    def test_ring_buffer_stays_consistent(self):
        predictor = AdmissionPredictor(history=64, similarity_threshold=0.9)

        def worker(thread_id):
            for i in range(80):
                predictor.should_admit(f"query {thread_id}-{i % 20}")

        _run_threads(worker)

        assert 0 < predictor._count <= predictor.history
        assert 0 <= predictor._next < predictor.history
        # Every filled row's cached norm matches the row it was cached for
        # — a torn write (vector from one thread, norm from another) breaks
        # this.
        for row in range(predictor._count):
            assert predictor._ring_norms[row] == pytest.approx(
                float(np.linalg.norm(predictor._ring[row]))
            )


class TestEmbeddingModelConcurrency:
    def test_memo_bounded_and_values_exact(self):
        model = EmbeddingModel(dim=32, memo_size=40)
        texts = [f"text number {i}" for i in range(60)]

        def worker(thread_id):
            for i in range(120):
                text = texts[(thread_id * 13 + i) % len(texts)]
                vec = model.embed(text)
                assert vec.shape == (32,)

        _run_threads(worker)
        assert len(model._memo) <= model.memo_size
        for text, vec in model._memo.items():
            np.testing.assert_array_equal(vec, embed_text(text, dim=32))


class TestUsageMeterConcurrency:
    def test_no_lost_updates(self):
        meter = UsageMeter()
        per_thread = 200

        def worker(thread_id):
            for _ in range(per_thread):
                meter.record("gpt-4", Usage(prompt_tokens=3, completion_tokens=2), 0.5)
            for _ in range(per_thread // 2):
                meter.refund("gpt-4", prompt_tokens=1, cost=0.25)

        _run_threads(worker)
        assert meter.calls == N_THREADS * per_thread
        assert meter.prompt_tokens == N_THREADS * (3 * per_thread - per_thread // 2)
        assert meter.completion_tokens == N_THREADS * 2 * per_thread
        assert meter.cost == pytest.approx(N_THREADS * (0.5 * per_thread - 0.25 * (per_thread // 2)))
        assert meter.per_model["gpt-4"]["calls"] == meter.calls


class TestServiceStatsConcurrency:
    def test_counters_add_up(self):
        stats = ServiceStats()
        per_thread = 150

        def worker(thread_id):
            for i in range(per_thread):
                stats.record_submit()
                stats.record_llm_call(
                    "gpt-4", Usage(prompt_tokens=5, completion_tokens=1), 0.01, 2.5
                )
                stats.record_batch(size=1 + i % 4, queue_depth=i % 3)
                stats.record_completion()

        _run_threads(worker)
        total = N_THREADS * per_thread
        assert stats.scheduler_submitted == total
        assert stats.scheduler_completed == total
        assert stats.llm_calls == total
        assert stats.latency_hist.total == total
        assert sum(stats.scheduler_batch_sizes.values()) == total
        assert sum(stats.scheduler_queue_depths.values()) == total


class TestFullStackConcurrency:
    def test_concurrent_stack_under_parallel_dispatch(self):
        # workers=4 deliberately gives up determinism; what must survive is
        # consistency: every request answered, every counter adding up.
        stack = build_stack(
            LLMClient(),
            cache=SemanticCache(capacity=64, reuse_threshold=0.9, augment_threshold=0.7),
        )
        prompts = [f"Question: stress item {i % 24}?" for i in range(96)]
        with ConcurrentStack(stack, max_batch_size=4, workers=4) as served:
            completions = served.complete_many(prompts, submitters=N_THREADS)
        assert len(completions) == len(prompts)
        assert all(c.text for c in completions)
        stats = stack.stats
        assert stats.scheduler_submitted == len(prompts)
        assert stats.scheduler_completed == len(prompts)
        assert stats.cache_lookups == len(prompts)
        assert (
            stats.cache_reuse_hits + stats.cache_augment_hits + stats.cache_misses
            == stats.cache_lookups
        )
        cache = stack.provider.cache
        cache.flush()
        assert set(cache.entries) == set(cache.index._live)
