"""Property-based tests of the consistent-hash router (hypothesis).

The two properties the cluster design leans on:

* **Determinism** — routing is a pure function of the shard set: a
  reconstructed (cloned or re-built) router agrees on every key, so any
  process can compute a request's owner without coordination.
* **Minimal movement** — adding or removing one shard remaps only the
  keys falling into the changed ring arcs: about K/N of them in
  expectation, and never keys between two surviving shards' points. A
  modulo router would remap nearly everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.cluster import ClusterRouter

_shard_lists = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=1,
    max_size=8,
    unique=True,
)
_keys = st.lists(
    st.text(alphabet="abcdefghijklmnop0123456789|", min_size=1, max_size=24),
    min_size=1,
    max_size=200,
    unique=True,
)


@settings(max_examples=50, deadline=None)
@given(shards=_shard_lists, keys=_keys)
def test_routing_is_deterministic_across_rebuilds(shards, keys):
    router = ClusterRouter(shards)
    rebuilt = ClusterRouter(list(shards))
    cloned = router.clone()
    for key in keys:
        owner = router.route(key)
        assert owner in shards
        assert rebuilt.route(key) == owner
        assert cloned.route(key) == owner
        # repeated calls on one instance are stable too
        assert router.route(key) == owner


@settings(max_examples=50, deadline=None)
@given(shards=_shard_lists, keys=_keys)
def test_add_shard_moves_only_keys_to_the_new_shard(shards, keys):
    router = ClusterRouter(shards)
    before = {key: router.route(key) for key in keys}
    router.add_shard("zz-new")
    moved = 0
    for key in keys:
        after = router.route(key)
        if after != before[key]:
            # every remapped key must have moved TO the new shard — a key
            # hopping between two old shards would mean unrelated arcs
            # changed, which consistent hashing forbids
            assert after == "zz-new"
            moved += 1
    # expected movement is K/(N+1); allow generous slack for small K and
    # vnode variance, but far below the ~K remap of a modulo router
    n_after = len(shards) + 1
    expected = len(keys) / n_after
    assert moved <= expected * 3 + 8


@settings(max_examples=50, deadline=None)
@given(shards=_shard_lists, keys=_keys)
def test_remove_shard_moves_only_the_removed_shards_keys(shards, keys):
    router = ClusterRouter(shards)
    router.add_shard("zz-doomed")
    before = {key: router.route(key) for key in keys}
    router.remove_shard("zz-doomed")
    for key in keys:
        after = router.route(key)
        if before[key] == "zz-doomed":
            assert after in shards  # orphaned keys land on survivors
        else:
            # keys owned by a surviving shard never move on removal
            assert after == before[key]


@settings(max_examples=30, deadline=None)
@given(shards=_shard_lists, keys=_keys)
def test_add_then_remove_restores_original_routing(shards, keys):
    router = ClusterRouter(shards)
    before = {key: router.route(key) for key in keys}
    router.add_shard("zz-transient")
    router.remove_shard("zz-transient")
    assert {key: router.route(key) for key in keys} == before


def test_ring_spreads_keys_across_shards():
    router = ClusterRouter([f"shard-{i}" for i in range(8)])
    owners = {router.route(f"tenant-{i % 5}|query #{i}") for i in range(2000)}
    assert len(owners) == 8  # every shard owns a share of a large keyspace


def test_router_rejects_bad_topologies():
    import pytest

    with pytest.raises(ValueError):
        ClusterRouter([])
    with pytest.raises(ValueError):
        ClusterRouter(["a", "a"])
    with pytest.raises(ValueError):
        ClusterRouter(["a"], vnodes=0)
    router = ClusterRouter(["a", "b"])
    with pytest.raises(ValueError):
        router.add_shard("a")
    with pytest.raises(ValueError):
        router.remove_shard("missing")
    router.remove_shard("b")
    with pytest.raises(ValueError):
        router.remove_shard("a")  # never empty the ring
