"""Unit tests for the micro-batching scheduler and the concurrent facade."""

import threading
import time

import pytest

from repro.errors import SchedulerClosedError
from repro.llm.client import LLMClient
from repro.serving import (
    BatchingScheduler,
    ConcurrentStack,
    LatencyHistogram,
    ServiceStats,
    build_stack,
    shared_prefix,
)


class RecordingProvider:
    """Provider double that records every call it receives."""

    def __init__(self, fail_on=None, delay_ms=0.0):
        self.inner = LLMClient()
        self.calls = []
        self.batch_calls = []
        self.fail_on = fail_on or set()
        self.delay_ms = delay_ms
        self._lock = threading.Lock()

    def complete(self, prompt, model=None):
        if self.delay_ms:
            time.sleep(self.delay_ms / 1000.0)
        with self._lock:
            self.calls.append(prompt)
        if prompt in self.fail_on:
            raise ValueError(f"injected failure for {prompt!r}")
        return self.inner.complete(prompt, model=model)

    def complete_batch(self, prefix, items, model=None):
        with self._lock:
            self.batch_calls.append((prefix, tuple(items)))
        return self.inner.complete_batch(prefix, items, model=model)

    def embed(self, text):
        return self.inner.embed(text)


class TestSharedPrefix:
    def test_common_prefix(self):
        assert shared_prefix(["Q: alpha", "Q: beta"]) == "Q: "

    def test_identical(self):
        assert shared_prefix(["same", "same"]) == "same"

    def test_disjoint_and_empty(self):
        assert shared_prefix(["abc", "xyz"]) == ""
        assert shared_prefix([]) == ""
        assert shared_prefix(["only"]) == "only"


class TestBatchingScheduler:
    def test_flush_on_size(self):
        provider = RecordingProvider()
        stats = ServiceStats()
        with BatchingScheduler(
            provider, max_batch_size=4, max_wait_ms=10_000.0, stats=stats
        ) as scheduler:
            futures = [scheduler.submit(f"Question: q{i}?") for i in range(8)]
            for future in futures:
                future.result(timeout=10)
        assert stats.scheduler_batch_sizes == {4: 2}
        assert stats.scheduler_batches == 2

    def test_flush_on_timeout(self):
        provider = RecordingProvider()
        stats = ServiceStats()
        with BatchingScheduler(
            provider, max_batch_size=100, max_wait_ms=15.0, stats=stats
        ) as scheduler:
            futures = [scheduler.submit(f"Question: q{i}?") for i in range(3)]
            # No close yet: only the wait deadline can flush this batch.
            for future in futures:
                future.result(timeout=10)
            assert stats.scheduler_batch_sizes == {3: 1}

    def test_wait_deadline_counts_from_submission_not_drain(self):
        # Regression: the flush deadline used to start when the collector
        # drained a request into a batch, so a request parked behind an
        # explicit-index gap waited max_wait_ms *twice* — once for the gap,
        # once for the batch clock.
        provider = RecordingProvider()
        with BatchingScheduler(
            provider, max_batch_size=100, max_wait_ms=600.0
        ) as scheduler:
            base = scheduler.reserve(2)
            parked = scheduler.submit("Question: parked behind a gap?", index=base + 1)
            time.sleep(0.7)  # the parked request's deadline expires here
            start = time.perf_counter()
            filler = scheduler.submit("Question: fills the gap?", index=base)
            parked.result(timeout=10)
            filler.result(timeout=10)
            elapsed = time.perf_counter() - start
        # With the bug the partial batch would sit out a fresh 600 ms wait.
        assert elapsed < 0.45

    def test_empty_queue_shutdown(self):
        scheduler = BatchingScheduler(RecordingProvider())
        scheduler.close()
        assert scheduler.queue_depth == 0
        with pytest.raises(RuntimeError):
            scheduler.submit("Question: late?")

    def test_close_is_idempotent(self):
        scheduler = BatchingScheduler(RecordingProvider())
        scheduler.close()
        scheduler.close()

    def test_close_wakes_submitters_blocked_on_full_queue(self):
        # Regression: a submitter parked in the backpressure wait while the
        # queue was full used to raise a bare RuntimeError at best — and
        # could hang forever if close() landed between its _closed check
        # and the condition wait. close() must wake every blocked
        # submitter, and each must raise the typed SchedulerClosedError.
        release = threading.Event()

        class GatedProvider:
            def __init__(self):
                self.inner = LLMClient()

            def complete(self, prompt, model=None):
                release.wait(timeout=10)
                return self.inner.complete(prompt, model=model)

            def embed(self, text):
                return self.inner.embed(text)

        scheduler = BatchingScheduler(
            GatedProvider(), max_batch_size=1, max_wait_ms=0.0, workers=1, max_queue=2
        )
        outcomes = []
        lock = threading.Lock()

        def submit_one(i):
            try:
                future = scheduler.submit(f"Question: q{i}?")
                with lock:
                    outcomes.append(("accepted", future))
            except SchedulerClosedError as exc:
                with lock:
                    outcomes.append(("closed", exc))

        # The worker blocks on `release`, so the pipeline (worker + batch
        # queue + pending) absorbs only a handful of these; the rest park
        # in submit's backpressure wait.
        threads = [
            threading.Thread(target=submit_one, args=(i,), daemon=True)
            for i in range(12)
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if scheduler.queue_depth >= 2 and any(t.is_alive() for t in threads):
                break
            time.sleep(0.005)
        assert scheduler.queue_depth >= 2  # queue full, submitters parked

        scheduler.close(wait=False)  # the worker is still gated: don't join
        for thread in threads:
            thread.join(timeout=5)
        # The regression: with the hang, parked submitters never wake.
        assert not any(thread.is_alive() for thread in threads)
        assert len(outcomes) == 12
        assert all(
            isinstance(exc, SchedulerClosedError)
            for kind, exc in outcomes
            if kind == "closed"
        )
        assert any(kind == "closed" for kind, _ in outcomes)

        release.set()  # let the gated worker drain the accepted requests
        scheduler.close(wait=True)
        for kind, value in outcomes:
            if kind == "accepted":
                assert value.result(timeout=10).text

    def test_max_wait_zero_flushes_immediately_without_spinning(self, monkeypatch):
        # Regression: max_wait_ms=0 computed a flush deadline of
        # enqueued_at + 0 — already in the past — and re-derived
        # `remaining <= 0` from the clock on every flush. Pin the
        # semantics: "flush immediately, never spin" — the collector must
        # not consult the clock at all. (_Request.enqueued_at captured the
        # real time.monotonic at class-definition time, so the patch below
        # counts only the collector's deadline arithmetic.)
        scheduler = BatchingScheduler(
            RecordingProvider(), max_batch_size=4, max_wait_ms=0.0, workers=1
        )
        time.sleep(0.05)  # let thread startup settle before counting
        calls = []
        real_monotonic = time.monotonic

        def counting_monotonic():
            calls.append(1)
            return real_monotonic()

        monkeypatch.setattr(time, "monotonic", counting_monotonic)
        futures = [scheduler.submit(f"Question: q{i}?") for i in range(16)]
        for future in futures:
            assert future.result(timeout=10).text
        scheduler.close()
        monkeypatch.undo()
        assert calls == []  # zero clock reads: flushed immediately, no spin

    def test_exception_propagates_and_isolates(self):
        bad = "Question: explode?"
        provider = RecordingProvider(fail_on={bad})
        with BatchingScheduler(provider, max_batch_size=3) as scheduler:
            good_before = scheduler.submit("Question: a?")
            failing = scheduler.submit(bad)
            good_after = scheduler.submit("Question: b?")
            with pytest.raises(ValueError, match="injected failure"):
                failing.result(timeout=10)
            assert good_before.result(timeout=10).text
            assert good_after.result(timeout=10).text

    def test_resolution_in_submission_order(self):
        # Two dispatch workers, first batch much slower than the second:
        # batch 2 finishes first but futures must still resolve 0..5.
        provider = RecordingProvider(delay_ms=30.0)
        done_order = []
        with BatchingScheduler(
            provider, max_batch_size=3, max_wait_ms=1.0, workers=2
        ) as scheduler:
            futures = [scheduler.submit(f"Question: q{i}?") for i in range(6)]
            for i, future in enumerate(futures):
                future.add_done_callback(lambda _f, i=i: done_order.append(i))
            for future in futures:
                future.result(timeout=10)
        assert done_order == sorted(done_order)

    def test_explicit_index_rejects_reuse(self):
        with BatchingScheduler(RecordingProvider(), max_wait_ms=10_000.0) as scheduler:
            base = scheduler.reserve(2)
            scheduler.submit("Question: one?", index=base)
            with pytest.raises(ValueError, match="already used"):
                scheduler.submit("Question: dup?", index=base)
            scheduler.submit("Question: two?", index=base + 1)

    def test_close_drains_index_gaps(self):
        # Reserve 3 indexes but only fill two, leaving a permanent gap;
        # close() must still resolve the submitted futures.
        with BatchingScheduler(RecordingProvider(), max_wait_ms=10_000.0) as scheduler:
            base = scheduler.reserve(3)
            first = scheduler.submit("Question: first?", index=base)
            last = scheduler.submit("Question: last?", index=base + 2)
        assert first.result(timeout=10).text
        assert last.result(timeout=10).text

    def test_combine_uses_complete_batch_with_shared_prefix(self):
        provider = RecordingProvider()
        with BatchingScheduler(
            provider, max_batch_size=4, max_wait_ms=10_000.0, combine=True
        ) as scheduler:
            prompts = [f"Shared preamble. Question: q{i}?" for i in range(4)]
            futures = [scheduler.submit(p) for p in prompts]
            for future in futures:
                assert future.result(timeout=10).text
        assert len(provider.batch_calls) == 1
        prefix, items = provider.batch_calls[0]
        assert prefix == "Shared preamble. Question: q"
        assert [prefix + item for item in items] == prompts

    def test_combine_results_match_serial_complete_batch(self):
        client = LLMClient()
        prompts = [f"Shared preamble. Question: q{i}?" for i in range(4)]
        prefix = shared_prefix(prompts)
        expected = [
            c.text
            for c in LLMClient().complete_batch(prefix, [p[len(prefix):] for p in prompts])
        ]
        with BatchingScheduler(
            client, max_batch_size=4, max_wait_ms=10_000.0, combine=True
        ) as scheduler:
            futures = [scheduler.submit(p) for p in prompts]
            texts = [f.result(timeout=10).text for f in futures]
        assert texts == expected

    def test_seed_stride_uses_reseeded_streams(self):
        client = LLMClient()
        prompts = [f"Question: stream check {i}?" for i in range(4)]
        expected = [
            LLMClient().reseeded(i * 1000).complete(p).text for i, p in enumerate(prompts)
        ]
        with BatchingScheduler(client, seed_stride=1000, max_batch_size=2) as scheduler:
            futures = [scheduler.submit(p) for p in prompts]
            texts = [f.result(timeout=10).text for f in futures]
        assert texts == expected

    def test_invalid_parameters(self):
        provider = RecordingProvider()
        with pytest.raises(ValueError):
            BatchingScheduler(provider, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingScheduler(provider, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            BatchingScheduler(provider, workers=0)
        with pytest.raises(ValueError):
            BatchingScheduler(provider, max_queue=0)


class TestConcurrentStack:
    def test_complete_many_matches_serial_loop(self):
        prompts = [f"Question: who is number {i}?" for i in range(10)]
        client = LLMClient()
        serial = [client.complete(p).text for p in prompts]
        for submitters in (1, 4):
            with ConcurrentStack(LLMClient()) as served:
                texts = [c.text for c in served.complete_many(prompts, submitters=submitters)]
            assert texts == serial

    def test_complete_many_empty(self):
        with ConcurrentStack(LLMClient()) as served:
            assert served.complete_many([]) == []

    def test_single_complete_and_submit(self):
        with ConcurrentStack(LLMClient()) as served:
            direct = served.complete("Question: direct?")
            queued = served.submit("Question: queued?").result(timeout=10)
        assert direct.text and queued.text

    def test_shares_stack_stats(self):
        stack = build_stack(LLMClient(), cache=True)
        with ConcurrentStack(stack, max_batch_size=2) as served:
            served.complete_many([f"Question: s{i}?" for i in range(4)])
        assert served.stats is stack.stats
        assert stack.stats.scheduler_submitted == 4
        assert stack.stats.scheduler_completed == 4
        assert stack.stats.cache_lookups == 4

    def test_describe_and_report(self):
        stack = build_stack(LLMClient(), cache=True)
        with stack.concurrent(max_batch_size=4, workers=2) as served:
            served.complete("Question: describe?")
            description = served.describe()
            report = served.report()
        assert description.startswith("scheduler(batch=4, workers=2) -> cache")
        assert "scheduler" in report

    def test_embed_passthrough(self):
        client = LLMClient()
        with ConcurrentStack(client) as served:
            vec = served.embed("some text")
        assert vec.shape == client.embed("some text").shape


class TestLatencyHistogram:
    def test_percentiles_are_order_independent(self):
        samples = [0.05, 1.2, 3.7, 0.9, 220.0, 14.5, 0.02, 7.7]
        forward = LatencyHistogram()
        backward = LatencyHistogram()
        for value in samples:
            forward.record(value)
        for value in reversed(samples):
            backward.record(value)
        assert forward.snapshot() == backward.snapshot()

    def test_percentile_semantics(self):
        hist = LatencyHistogram(start_ms=1.0, growth=2.0, n_buckets=10)
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.record(value)
        assert hist.total == 4
        assert hist.percentile(50) == 2.0  # 2nd of 4 samples -> bucket edge 2.0
        assert hist.percentile(100) == 100.0  # bucket edge 128, clamped to max
        assert hist.max_ms == 100.0
        assert hist.mean_ms == pytest.approx((0.5 + 1.5 + 3.0 + 100.0) / 4)

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.snapshot()["count"] == 0

    def test_overflow_bucket_reports_max(self):
        hist = LatencyHistogram(start_ms=1.0, growth=2.0, n_buckets=3)
        hist.record(1e9)
        assert hist.percentile(50) == 1e9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyHistogram(start_ms=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(n_buckets=0)


def _make_client(seed=7):
    """Module-level so spawn-based worker processes can pickle it by ref."""
    return LLMClient(seed=seed)


def _make_failing_client(fail_prompt=""):
    return _FailingClient(fail_prompt)


class _FailingClient:
    """Picklable-by-construction provider: built inside the worker from the
    module-level factory above, fails on one designated prompt."""

    def __init__(self, fail_prompt):
        self.fail_prompt = fail_prompt
        self.inner = LLMClient()

    def complete(self, prompt, model=None):
        if prompt == self.fail_prompt:
            raise ValueError(f"injected failure for {prompt!r}")
        return self.inner.complete(prompt, model=model)


class TestProcessDispatch:
    def test_requires_factory(self):
        with pytest.raises(ValueError, match="provider_factory"):
            BatchingScheduler(None, dispatch="process")

    def test_rejects_combine(self):
        with pytest.raises(ValueError, match="combine"):
            BatchingScheduler(
                None, dispatch="process", provider_factory=_make_client, combine=True
            )

    def test_rejects_unknown_dispatch(self):
        with pytest.raises(ValueError, match="dispatch"):
            BatchingScheduler(LLMClient(), dispatch="fork")

    def test_matches_serial_loop(self):
        prompts = [f"Question: q{i}?" for i in range(10)]
        serial = [_make_client().complete(p) for p in prompts]
        with BatchingScheduler(
            None,
            max_batch_size=4,
            max_wait_ms=5.0,
            dispatch="process",
            provider_factory=_make_client,
            processes=2,
        ) as scheduler:
            futures = [scheduler.submit(p) for p in prompts]
            results = [f.result(timeout=60) for f in futures]
        assert [c.text for c in results] == [c.text for c in serial]
        assert [c.model for c in results] == [c.model for c in serial]

    def test_seed_stride_matches_serial_reseeding(self):
        prompts = [f"Question: q{i}?" for i in range(6)]
        serial = [
            _make_client().reseeded(i * 13).complete(p)
            for i, p in enumerate(prompts)
        ]
        with BatchingScheduler(
            None,
            max_batch_size=3,
            max_wait_ms=5.0,
            seed_stride=13,
            dispatch="process",
            provider_factory=_make_client,
        ) as scheduler:
            futures = [scheduler.submit(p) for p in prompts]
            results = [f.result(timeout=60) for f in futures]
        assert [c.text for c in results] == [c.text for c in serial]

    def test_per_item_error_isolation(self):
        prompts = [f"Question: q{i}?" for i in range(4)]
        with BatchingScheduler(
            None,
            max_batch_size=4,
            max_wait_ms=5.0,
            dispatch="process",
            provider_factory=_make_failing_client,
            factory_kwargs={"fail_prompt": prompts[1]},
        ) as scheduler:
            futures = [scheduler.submit(p) for p in prompts]
            with pytest.raises(ValueError, match="injected failure"):
                futures[1].result(timeout=60)
            survivors = [futures[i].result(timeout=60) for i in (0, 2, 3)]
        assert all(c.text for c in survivors)
