"""End-to-end behavior of composed stacks and the ServiceStats snapshot."""

import pytest

from repro.core.cache import SemanticCache
from repro.core.cascade import ConfidenceDecisionModel
from repro.core.prompts.templates import qa_prompt
from repro.datasets import generate_hotpot
from repro.datasets.hotpot import paraphrase
from repro.llm import LLMClient
from repro.llm.client import default_world
from repro.serving import (
    CompletionProvider,
    ServiceStats,
    ServingStack,
    build_stack,
    last_question_key,
)


@pytest.fixture(scope="module")
def examples():
    return generate_hotpot(default_world(), n=6, seed=17)


class TestBareStack:
    def test_no_middleware_is_bit_identical_to_client(self, examples):
        stack = build_stack(LLMClient())
        bare = LLMClient()
        for ex in examples:
            via_stack = stack.complete(qa_prompt(ex.question))
            direct = bare.complete(qa_prompt(ex.question))
            assert via_stack == direct  # frozen dataclass: full field equality
        assert stack.describe() == "metrics -> LLMClient"

    def test_stack_is_a_provider(self):
        stack = build_stack(LLMClient())
        assert isinstance(stack, CompletionProvider)
        assert isinstance(stack, ServingStack)

    def test_batch_and_embed_pass_through(self, examples):
        stack = build_stack(LLMClient())
        bare = LLMClient()
        stacked = stack.complete_batch("Prefix.\n", ["Question: A?", "Question: B?"])
        direct = bare.complete_batch("Prefix.\n", ["Question: A?", "Question: B?"])
        assert [c.text for c in stacked] == [c.text for c in direct]
        assert stack.stats.llm_calls == 2
        assert (stack.embed("concert hall") == bare.embed("concert hall")).all()


class TestComposedStack:
    def _full_stack(self, client):
        return build_stack(
            client,
            cache=SemanticCache(reuse_threshold=0.9, augment_threshold=0.75),
            cache_key_fn=last_question_key,
            chain=("babbage-002", "gpt-3.5-turbo", "gpt-4"),
            decision_models=[ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)],
            budget_usd=5.0,
        )

    def test_layer_order_outermost_first(self):
        stack = self._full_stack(LLMClient())
        assert stack.describe() == "cache -> cascade -> budget -> metrics -> LLMClient"

    def test_repeated_traffic_records_hits_and_escalations(self, examples):
        client = LLMClient()
        stack = self._full_stack(client)
        stream = [ex.question for ex in examples] + [
            paraphrase(ex.question) for ex in examples
        ]
        for question in stream:
            stack.complete(qa_prompt(question))
        assert stack.stats.cache_lookups == len(stream)
        assert stack.stats.cache_reuse_hits > 0
        assert stack.stats.escalations > 0
        assert stack.stats.llm_calls == client.meter.calls
        assert stack.stats.cost_usd == pytest.approx(client.meter.cost)
        # Cache hits never reach the metrics layer.
        assert stack.stats.llm_calls < 3 * len(stream)

    def test_stats_snapshot_and_render(self, examples):
        stack = self._full_stack(LLMClient())
        for ex in examples[:3]:
            stack.complete(qa_prompt(ex.question))
        snapshot = stack.stats.snapshot()
        assert set(snapshot) == {
            "llm",
            "latency",
            "cache",
            "cascade",
            "retry",
            "budget",
            "resilience",
            "scheduler",
            "gateway",
        }
        assert snapshot["llm"]["calls"] == stack.stats.llm_calls
        assert snapshot["latency"]["count"] == stack.stats.llm_calls
        assert snapshot["cache"]["lookups"] == 3
        report = stack.report()
        assert "Serving stack stats" in report
        assert "cache" in report and "cascade" in report

    def test_stats_reset(self, examples):
        stats = ServiceStats()
        stack = build_stack(LLMClient(), stats=stats)
        stack.complete(qa_prompt(examples[0].question))
        assert stats.llm_calls == 1
        stats.reset()
        assert stats.llm_calls == 0
        assert stats.cost_usd == 0.0
        assert not stats.per_model

    def test_shared_stats_instance(self):
        stats = ServiceStats()
        stack = build_stack(LLMClient(), cache=True, stats=stats)
        assert stack.stats is stats

    def test_cache_true_installs_default_cache(self):
        stack = build_stack(LLMClient(), cache=True)
        assert stack.describe() == "cache -> metrics -> LLMClient"

    def test_retries_without_acceptance_criterion_rejected(self):
        # Regression: max_retries used to be silently dropped when neither
        # min_confidence nor validator was given — the caller believed they
        # had a retry layer and had none.
        with pytest.raises(ValueError, match="min_confidence or validator"):
            build_stack(LLMClient(), max_retries=3)

    def test_retries_with_criterion_accepted(self):
        stack = build_stack(LLMClient(), max_retries=3, min_confidence=0.5)
        assert stack.describe() == "retry -> metrics -> LLMClient"

    def test_resilience_layer_position(self):
        from repro.serving import ResilienceConfig

        stack = build_stack(
            LLMClient(),
            cache=True,
            chain=("babbage-002", "gpt-4"),
            max_retries=1,
            min_confidence=0.0,
            budget_usd=5.0,
            resilience=ResilienceConfig(),
        )
        assert stack.describe() == (
            "cache -> cascade -> retry -> resilience -> budget -> metrics -> LLMClient"
        )

    def test_resilience_fallback_shares_the_stack_cache(self):
        cache = SemanticCache()
        stack = build_stack(LLMClient(), cache=cache, resilience=True)
        resilience = stack.provider.inner  # cache -> resilience -> ...
        assert resilience.fallback_cache is cache


class TestAppsIntegration:
    def test_apps_accept_a_stack_anywhere_a_client_goes(self, examples):
        # The refactor's point: applications are provider-generic, so a
        # composed stack drops in wherever a raw LLMClient went.
        from repro.apps.integrate.entity_resolution import EntityResolver

        client = LLMClient()
        stack = build_stack(client, cache=True)
        resolver = EntityResolver(stack)
        verdict_a = resolver.resolve("Apple Inc. (Cupertino)", "Apple Incorporated, Cupertino")
        resolver_again = EntityResolver(build_stack(LLMClient(), cache=True))
        verdict_b = resolver_again.resolve("Apple Inc. (Cupertino)", "Apple Incorporated, Cupertino")
        assert verdict_a == verdict_b
        assert stack.stats.llm_calls >= 1
