"""The public front door of the relational engine: :class:`Database`.

Wraps the catalog + executor with statement routing and snapshot-based
transactions (BEGIN / COMMIT / ROLLBACK). Single-threaded by design — the
paper's NL2Transaction scenario needs atomicity, not concurrency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SQLTransactionError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog, Column, Table, TableSchema
from repro.sqldb.executor import Executor, ResultSet
from repro.sqldb.parser import parse_sql
from repro.sqldb.semantic import SemanticRuntime
from repro.sqldb.types import SQLType

# Re-export under the name most callers expect.
Result = ResultSet


def _sql_literal(value: object) -> str:
    """Render a Python value as a SQL literal for :meth:`Database.dump`."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


class Database:
    """An in-memory SQL database.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE p (id INTEGER PRIMARY KEY, name TEXT)")
    >>> _ = db.execute("INSERT INTO p VALUES (1, 'ada'), (2, 'bob')")
    >>> db.execute("SELECT name FROM p ORDER BY id DESC").rows
    [('bob',), ('ada',)]
    """

    def __init__(self, semantic: Optional[SemanticRuntime] = None) -> None:
        self.catalog = Catalog()
        self._executor = Executor(self.catalog, semantic=semantic)
        self._snapshot: Optional[Catalog] = None

    @property
    def semantic(self) -> SemanticRuntime:
        """The semantic-operator runtime (created on first access)."""
        return self._executor.semantic

    # ------------------------------------------------------------- execution

    @property
    def in_transaction(self) -> bool:
        return self._snapshot is not None

    def execute(self, sql: str) -> Result:
        """Execute a script; returns the result of the *last* statement."""
        statements = parse_sql(sql)
        if not statements:
            return Result(columns=[], rows=[])
        result = Result(columns=[], rows=[])
        for statement in statements:
            result = self._execute_statement(statement)
        return result

    def execute_many(self, sql: str) -> List[Result]:
        """Execute a script; returns one result per statement."""
        return [self._execute_statement(s) for s in parse_sql(sql)]

    def _execute_statement(self, statement: ast.Statement) -> Result:
        if isinstance(statement, ast.Begin):
            if self._snapshot is not None:
                raise SQLTransactionError("transaction already in progress")
            self._snapshot = self.catalog.snapshot()
            return Result(columns=[], rows=[])
        if isinstance(statement, ast.Commit):
            if self._snapshot is None:
                raise SQLTransactionError("COMMIT without BEGIN")
            self._snapshot = None
            return Result(columns=[], rows=[])
        if isinstance(statement, ast.Rollback):
            if self._snapshot is None:
                raise SQLTransactionError("ROLLBACK without BEGIN")
            self.catalog.tables = self._snapshot.tables
            self._executor.catalog = self.catalog
            self._snapshot = None
            return Result(columns=[], rows=[])
        if isinstance(statement, ast.Select) and self._executor._set_at_a_time():
            from repro.sqldb.planner import optimize_semantic, select_contains_semantic

            if select_contains_semantic(statement):
                statement = optimize_semantic(statement, self.catalog)
        return self._executor.execute(statement)

    def explain(self, sql: str) -> str:
        """Render the (rewritten) plan of the first SELECT in ``sql``,
        discounting semantic-operator cost by the runtime's observed cache
        hit rate."""
        from repro.sqldb.planner import explain

        statements = parse_sql(sql)
        selects = [s for s in statements if isinstance(s, ast.Select)]
        if not selects:
            raise SQLTransactionError("EXPLAIN requires a SELECT statement")
        hit_rate = (
            self._executor._semantic.hit_rate()
            if self._executor._semantic is not None
            else 0.0
        )
        return explain(
            selects[0],
            self.catalog,
            semantic_hit_rate=hit_rate,
            optimize=self._executor._set_at_a_time(),
        )

    def query(self, sql: str) -> List[Tuple[object, ...]]:
        """Convenience: execute and return just the rows."""
        return self.execute(sql).rows

    def query_scalar(self, sql: str) -> object:
        """Convenience: first column of first row (None when empty)."""
        return self.execute(sql).scalar()

    # ------------------------------------------------------------ structure

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def table_names(self) -> List[str]:
        return sorted(self.catalog.names())

    def has_table(self, name: str) -> bool:
        return self.catalog.has(name)

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, SQLType]],
        primary_key: Optional[str] = None,
    ) -> Table:
        """Programmatic CREATE TABLE (used by dataset generators)."""
        cols = tuple(
            Column(
                name=col_name,
                sql_type=col_type,
                primary_key=(primary_key is not None and col_name == primary_key),
                not_null=(primary_key is not None and col_name == primary_key),
            )
            for col_name, col_type in columns
        )
        table = Table(TableSchema(name=name, columns=cols))
        self.catalog.create(table)
        return table

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[object]]) -> int:
        """Programmatic bulk insert; returns the number of rows inserted."""
        table = self.catalog.get(table_name)
        for row in rows:
            table.insert(row)
        return len(rows)

    def schema_text(self, include_stats: bool = False) -> str:
        """Render the full schema as CREATE TABLE text — this is the
        "table information" block that gets put in LLM prompts (Fig 2)."""
        parts: List[str] = []
        for name in self.table_names():
            table = self.catalog.get(name)
            col_sql = []
            for column in table.schema.columns:
                piece = f"{column.name} {column.sql_type.value}"
                if column.primary_key:
                    piece += " PRIMARY KEY"
                elif column.not_null:
                    piece += " NOT NULL"
                col_sql.append(piece)
            parts.append(f"CREATE TABLE {name} ({', '.join(col_sql)});")
            if include_stats:
                parts.append(f"-- {name}: {len(table)} rows")
        return "\n".join(parts)

    def statistics(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Per-table, per-column statistics (for table understanding)."""
        return {name: self.catalog.get(name).statistics() for name in self.table_names()}

    def dump(self) -> str:
        """Serialize the full database as a SQL script (schema + data).

        The inverse of :meth:`from_script`; used for persistence and for
        shipping reproducible fixtures.
        """
        parts: List[str] = []
        for name in self.table_names():
            table = self.catalog.get(name)
            col_sql = []
            for column in table.schema.columns:
                piece = f"{column.name} {column.sql_type.value}"
                if column.primary_key:
                    piece += " PRIMARY KEY"
                elif column.not_null:
                    piece += " NOT NULL"
                col_sql.append(piece)
            parts.append(f"CREATE TABLE {name} ({', '.join(col_sql)});")
            for row in table.rows:
                values = ", ".join(_sql_literal(v) for v in row)
                parts.append(f"INSERT INTO {name} VALUES ({values});")
        return "\n".join(parts)

    @classmethod
    def from_script(cls, sql: str, semantic: Optional[SemanticRuntime] = None) -> "Database":
        """Build a database by executing a SQL script (see :meth:`dump`)."""
        db = cls(semantic=semantic)
        db.execute(sql)
        return db

    def clone(self) -> "Database":
        """Deep-enough copy: shares nothing mutable with the original
        (the semantic runtime — provider and cache — is shared; answers
        are deterministic per prompt, so sharing is observationally pure)."""
        other = Database()
        other.catalog = self.catalog.snapshot()
        other._executor = Executor(other.catalog, semantic=self._executor._semantic)
        return other
