"""AST node definitions for the SQL dialect of :mod:`repro.sqldb`.

Nodes are plain frozen-ish dataclasses. ``unparse``-style rendering lives on
each node's ``__str__`` so that generated SQL (Section II-A1) can round-trip
through the parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.sqldb.types import SQLType


class Node:
    """Base class for all AST nodes."""


class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    value: object  # int | float | str | bool | None

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list or inside COUNT(*)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class Unary(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr

    def __str__(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand})"
        return f"{self.op}{self.operand}"


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, AND, OR, ||
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class FuncCall(Expr):
    name: str  # upper-cased
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr]
    negated: bool = False

    def __str__(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"{self.operand} {not_kw}IN ({', '.join(str(i) for i in self.items)})"


@dataclass
class InSelect(Expr):
    operand: Expr
    select: "Select"
    negated: bool = False

    def __str__(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"{self.operand} {not_kw}IN ({self.select})"


@dataclass
class Exists(Expr):
    select: "Select"
    negated: bool = False

    def __str__(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"{not_kw}EXISTS ({self.select})"


@dataclass
class ScalarSubquery(Expr):
    select: "Select"

    def __str__(self) -> str:
        return f"({self.select})"


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"{self.operand} {not_kw}BETWEEN {self.low} AND {self.high}"


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def __str__(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"{self.operand} {not_kw}LIKE {self.pattern}"


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def __str__(self) -> str:
        not_kw = "NOT " if self.negated else ""
        return f"{self.operand} IS {not_kw}NULL"


def _quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


@dataclass
class SemanticFilter(Expr):
    """``SEMANTIC_FILTER(operand, 'predicate text')`` — a boolean LLM
    predicate over one value (Section III-A: LLM calls as first-class,
    expensive, cacheable operators)."""

    operand: Expr
    predicate: str

    def __str__(self) -> str:
        return f"SEMANTIC_FILTER({self.operand}, {_quote(self.predicate)})"


@dataclass
class SemanticMatch(Expr):
    """``MATCHES(a, b)`` — the entity-match predicate of SEMANTIC_JOIN."""

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"MATCHES({self.left}, {self.right})"


@dataclass
class LLMFunc(Expr):
    """A scalar LLM UDF: ``LLM_CLASSIFY(operand, 'label', ...)`` or
    ``LLM_EXTRACT(operand, 'field')``. ``params`` are the string-literal
    arguments after the operand (labels, or the one field name)."""

    name: str  # 'LLM_CLASSIFY' | 'LLM_EXTRACT'
    operand: Expr
    params: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        inner = ", ".join([str(self.operand)] + [_quote(p) for p in self.params])
        return f"{self.name}({inner})"


@dataclass
class CaseWhen(Expr):
    whens: List[Tuple[Expr, Expr]]
    default: Optional[Expr] = None

    def __str__(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond} THEN {result}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


# --- Table references ------------------------------------------------------


class TableRef(Node):
    """Base class for FROM-clause sources."""


@dataclass
class TableName(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass
class SubquerySource(TableRef):
    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def __str__(self) -> str:
        return f"({self.select}) AS {self.alias}"


@dataclass
class Join(TableRef):
    left: TableRef
    right: TableRef
    kind: str  # 'INNER', 'LEFT', 'CROSS', 'SEMANTIC'
    on: Optional[Expr] = None

    def __str__(self) -> str:
        if self.kind == "CROSS":
            return f"{self.left} CROSS JOIN {self.right}"
        if self.kind == "SEMANTIC":
            return f"{self.left} SEMANTIC_JOIN {self.right} ON {self.on}"
        join_kw = "JOIN" if self.kind == "INNER" else f"{self.kind} JOIN"
        on_sql = f" ON {self.on}" if self.on is not None else ""
        return f"{self.left} {join_kw} {self.right}{on_sql}"


# --- Statements ------------------------------------------------------------


class Statement(Node):
    """Base class for executable statements."""


@dataclass
class SelectItem(Node):
    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass
class OrderItem(Node):
    expr: Expr
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} DESC" if self.descending else str(self.expr)


@dataclass
class SetOp(Node):
    op: str  # 'UNION', 'INTERSECT', 'EXCEPT'
    all: bool
    select: "Select"

    def __str__(self) -> str:
        all_kw = " ALL" if self.all else ""
        return f"{self.op}{all_kw} {self.select}"


@dataclass
class Select(Statement):
    items: List[SelectItem]
    source: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    set_ops: List[SetOp] = field(default_factory=list)

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(i) for i in self.items))
        if self.source is not None:
            parts.append(f"FROM {self.source}")
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(e) for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        for set_op in self.set_ops:
            parts.append(str(set_op))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class ColumnDef(Node):
    name: str
    sql_type: SQLType
    primary_key: bool = False
    not_null: bool = False

    def __str__(self) -> str:
        out = f"{self.name} {self.sql_type.value}"
        if self.primary_key:
            out += " PRIMARY KEY"
        if self.not_null:
            out += " NOT NULL"
        return out


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef]
    if_not_exists: bool = False

    def __str__(self) -> str:
        ine = "IF NOT EXISTS " if self.if_not_exists else ""
        cols = ", ".join(str(c) for c in self.columns)
        return f"CREATE TABLE {ine}{self.name} ({cols})"


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False

    def __str__(self) -> str:
        ie = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {ie}{self.name}"


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]] = None
    rows: Optional[List[List[Expr]]] = None
    select: Optional[Select] = None

    def __str__(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.select is not None:
            return f"INSERT INTO {self.table}{cols} {self.select}"
        assert self.rows is not None
        rows_sql = ", ".join("(" + ", ".join(str(v) for v in row) + ")" for row in self.rows)
        return f"INSERT INTO {self.table}{cols} VALUES {rows_sql}"


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None

    def __str__(self) -> str:
        sets = ", ".join(f"{c} = {e}" for c, e in self.assignments)
        where_sql = f" WHERE {self.where}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where_sql}"


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expr] = None

    def __str__(self) -> str:
        where_sql = f" WHERE {self.where}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where_sql}"


@dataclass
class Begin(Statement):
    def __str__(self) -> str:
        return "BEGIN"


@dataclass
class Commit(Statement):
    def __str__(self) -> str:
        return "COMMIT"


@dataclass
class Rollback(Statement):
    def __str__(self) -> str:
        return "ROLLBACK"


def walk_expr(expr: Expr) -> Sequence[Expr]:
    """Yield ``expr`` and all sub-expressions (not descending into subquery
    SELECT bodies — those are separate scopes)."""
    out: List[Expr] = []
    stack: List[Expr] = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, FuncCall):
            stack.extend(node.args)
        elif isinstance(node, InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, InSelect):
            stack.append(node.operand)
        elif isinstance(node, Between):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, Like):
            stack.extend((node.operand, node.pattern))
        elif isinstance(node, IsNull):
            stack.append(node.operand)
        elif isinstance(node, CaseWhen):
            for cond, result in node.whens:
                stack.extend((cond, result))
            if node.default is not None:
                stack.append(node.default)
        elif isinstance(node, SemanticFilter):
            stack.append(node.operand)
        elif isinstance(node, SemanticMatch):
            stack.extend((node.left, node.right))
        elif isinstance(node, LLMFunc):
            stack.append(node.operand)
    return out


def contains_aggregate(expr: Expr) -> bool:
    """True when ``expr`` contains an aggregate function call."""
    aggregates = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
    return any(isinstance(n, FuncCall) and n.name in aggregates for n in walk_expr(expr))


#: The expression nodes whose evaluation requires an LLM call.
SEMANTIC_NODE_TYPES = (SemanticFilter, SemanticMatch, LLMFunc)


def contains_semantic(expr: Expr) -> bool:
    """True when ``expr`` contains a semantic (LLM-backed) operator."""
    return any(isinstance(n, SEMANTIC_NODE_TYPES) for n in walk_expr(expr))


def semantic_nodes(expr: Expr) -> List[Expr]:
    """All semantic operator nodes inside ``expr`` (not into subqueries)."""
    return [n for n in walk_expr(expr) if isinstance(n, SEMANTIC_NODE_TYPES)]


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Split a predicate on its top-level AND chain, preserving order."""
    if expr is None:
        return []
    out: List[Expr] = []
    stack: List[Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Binary) and node.op == "AND":
            stack.extend((node.right, node.left))  # left first after pop
        else:
            out.append(node)
    return out


def conjoin(parts: Sequence[Expr]) -> Optional[Expr]:
    """Rebuild a left-deep AND chain from :func:`conjuncts` output."""
    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = Binary(op="AND", left=combined, right=part)
    return combined
