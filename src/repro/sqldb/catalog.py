"""Catalog objects: columns, table schemas, tables and statistics.

Tables store rows as lists of tuples. Statistics (row count, distinct counts,
min/max) back both the cost model in :mod:`repro.sqldb.planner` and the table
understanding application (Section II-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SQLCatalogError, SQLIntegrityError
from repro.sqldb.types import SQLType, coerce


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    sql_type: SQLType
    primary_key: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class TableSchema:
    """Immutable description of a table's structure."""

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        seen = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SQLCatalogError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(lowered)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        """Position of a column by (case-insensitive) name."""
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return i
        raise SQLCatalogError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    @property
    def primary_key_index(self) -> Optional[int]:
        for i, column in enumerate(self.columns):
            if column.primary_key:
                return i
        return None


class Table:
    """A heap of rows plus integrity enforcement and cheap statistics."""

    def __init__(self, schema: TableSchema, rows: Optional[Iterable[Sequence[object]]] = None) -> None:
        self.schema = schema
        self.rows: List[Tuple[object, ...]] = []
        self._pk_values: set = set()
        if rows:
            for row in rows:
                self.insert(row)

    def __len__(self) -> int:
        return len(self.rows)

    def insert(self, values: Sequence[object]) -> None:
        """Insert one row, coercing values and enforcing constraints."""
        if len(values) != len(self.schema.columns):
            raise SQLIntegrityError(
                f"table {self.schema.name!r} expects {len(self.schema.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(coerce(v, c.sql_type) for v, c in zip(values, self.schema.columns))
        for value, column in zip(row, self.schema.columns):
            if value is None and (column.not_null or column.primary_key):
                raise SQLIntegrityError(
                    f"NULL violates NOT NULL on {self.schema.name}.{column.name}"
                )
        pk = self.schema.primary_key_index
        if pk is not None:
            key = row[pk]
            if key in self._pk_values:
                raise SQLIntegrityError(
                    f"duplicate primary key {key!r} in table {self.schema.name!r}"
                )
            self._pk_values.add(key)
        self.rows.append(row)

    def replace_rows(self, rows: Iterable[Tuple[object, ...]]) -> None:
        """Replace the full row set (used by UPDATE/DELETE); re-checks PK."""
        new_rows = list(rows)
        pk = self.schema.primary_key_index
        if pk is not None:
            keys = [r[pk] for r in new_rows]
            if len(keys) != len(set(keys)):
                raise SQLIntegrityError(
                    f"duplicate primary key after update in table {self.schema.name!r}"
                )
            self._pk_values = set(keys)
        self.rows = new_rows

    def snapshot(self) -> "Table":
        """Cheap copy for transaction rollback (rows are immutable tuples)."""
        clone = Table(self.schema)
        clone.rows = list(self.rows)
        clone._pk_values = set(self._pk_values)
        return clone

    # -- statistics ----------------------------------------------------------

    def column_values(self, name: str) -> List[object]:
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def statistics(self) -> Dict[str, Dict[str, object]]:
        """Per-column stats: count, nulls, distinct, min, max.

        Drives the planner's selectivity estimates and the table
        understanding serializers.
        """
        stats: Dict[str, Dict[str, object]] = {}
        for column in self.schema.columns:
            values = self.column_values(column.name)
            non_null = [v for v in values if v is not None]
            entry: Dict[str, object] = {
                "count": len(values),
                "nulls": len(values) - len(non_null),
                "distinct": len(set(non_null)),
            }
            numeric = [v for v in non_null if isinstance(v, (int, float)) and not isinstance(v, bool)]
            if numeric and len(numeric) == len(non_null):
                entry["min"] = min(numeric)
                entry["max"] = max(numeric)
                entry["mean"] = sum(numeric) / len(numeric)
            stats[column.name] = entry
        return stats


@dataclass
class Catalog:
    """Name → table mapping with case-insensitive lookup."""

    tables: Dict[str, Table] = field(default_factory=dict)

    def _key(self, name: str) -> str:
        return name.lower()

    def create(self, table: Table, if_not_exists: bool = False) -> None:
        """Register a table; raises on duplicates unless if_not_exists."""
        key = self._key(table.schema.name)
        if key in self.tables:
            if if_not_exists:
                return
            raise SQLCatalogError(f"table {table.schema.name!r} already exists")
        self.tables[key] = table

    def drop(self, name: str, if_exists: bool = False) -> None:
        """Remove a table; raises on unknown names unless if_exists."""
        key = self._key(name)
        if key not in self.tables:
            if if_exists:
                return
            raise SQLCatalogError(f"no such table: {name!r}")
        del self.tables[key]

    def get(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        key = self._key(name)
        if key not in self.tables:
            raise SQLCatalogError(f"no such table: {name!r}")
        return self.tables[key]

    def has(self, name: str) -> bool:
        return self._key(name) in self.tables

    def names(self) -> List[str]:
        return [t.schema.name for t in self.tables.values()]

    def snapshot(self) -> "Catalog":
        return Catalog(tables={k: t.snapshot() for k, t in self.tables.items()})
