"""Recursive-descent SQL parser producing :mod:`repro.sqldb.ast_nodes` trees."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.tokens import Token, TokenType, tokenize
from repro.sqldb.types import SQLType

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    """Stateful cursor over a token list; one instance per parse call."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def check_keyword(self, *names: str) -> bool:
        return self.current.is_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        if not self.check_keyword(name):
            raise SQLSyntaxError(f"expected {name} at position {self.current.pos} in: {self.sql!r}")
        return self.advance()

    def accept_punct(self, char: str) -> bool:
        if self.current.type is TokenType.PUNCT and self.current.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise SQLSyntaxError(f"expected {char!r} at position {self.current.pos} in: {self.sql!r}")

    def accept_operator(self, *ops: str) -> Optional[str]:
        if self.current.type is TokenType.OPERATOR and self.current.value in ops:
            return self.advance().value  # type: ignore[return-value]
        return None

    def expect_ident(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self.advance().value  # type: ignore[return-value]
        # Allow non-reserved use of a few keywords as identifiers is avoided:
        # keep the grammar strict for predictable errors.
        raise SQLSyntaxError(
            f"expected identifier, got {self.current.text!r} at position {self.current.pos}"
        )

    # -- statements ---------------------------------------------------------

    def parse_statements(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while self.current.type is not TokenType.EOF:
            if self.accept_punct(";"):
                continue  # empty statement (leading/duplicate separators)
            statements.append(self.parse_statement())
            while self.accept_punct(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        if self.check_keyword("SELECT"):
            return self.parse_select()
        if self.check_keyword("INSERT"):
            return self.parse_insert()
        if self.check_keyword("UPDATE"):
            return self.parse_update()
        if self.check_keyword("DELETE"):
            return self.parse_delete()
        if self.check_keyword("CREATE"):
            return self.parse_create()
        if self.check_keyword("DROP"):
            return self.parse_drop()
        if self.accept_keyword("BEGIN"):
            self.accept_keyword("TRANSACTION")
            return ast.Begin()
        if self.accept_keyword("COMMIT"):
            self.accept_keyword("TRANSACTION")
            return ast.Commit()
        if self.accept_keyword("ROLLBACK"):
            self.accept_keyword("TRANSACTION")
            return ast.Rollback()
        raise SQLSyntaxError(f"unexpected token {self.current.text!r} at start of statement")

    def parse_select(self, as_set_operand: bool = False) -> ast.Select:
        """Parse a SELECT. When ``as_set_operand`` is set, stop before
        UNION/INTERSECT/EXCEPT, ORDER BY and LIMIT so those clauses bind to
        the outermost compound query (standard SQL scoping)."""
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        else:
            self.accept_keyword("ALL")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())

        source: Optional[ast.TableRef] = None
        if self.accept_keyword("FROM"):
            source = self.parse_table_ref()

        where = self.parse_expr() if self.accept_keyword("WHERE") else None

        group_by: List[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_keyword("HAVING") else None

        set_ops: List[ast.SetOp] = []
        while not as_set_operand and self.check_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self.advance().text
            is_all = self.accept_keyword("ALL")
            set_ops.append(ast.SetOp(op=op, all=is_all, select=self.parse_select(as_set_operand=True)))

        if as_set_operand:
            return ast.Select(
                items=items,
                source=source,
                where=where,
                group_by=group_by,
                having=having,
                distinct=distinct,
            )

        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())

        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self._expect_int("LIMIT")
            if self.accept_keyword("OFFSET"):
                offset = self._expect_int("OFFSET")
        elif self.accept_keyword("OFFSET"):
            offset = self._expect_int("OFFSET")

        return ast.Select(
            items=items,
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
            set_ops=set_ops,
        )

    def _expect_int(self, clause: str) -> int:
        token = self.current
        if token.type is TokenType.NUMBER and isinstance(token.value, int):
            self.advance()
            return token.value
        raise SQLSyntaxError(f"{clause} expects an integer literal, got {token.text!r}")

    def parse_select_item(self) -> ast.SelectItem:
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self.advance()
            return ast.SelectItem(expr=ast.Star())
        expr = self.parse_expr()
        # Rewrite `t . *` parsed ambiguity: handled in parse_primary via Star.
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value  # type: ignore[assignment]
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    # -- FROM clause ---------------------------------------------------------

    def parse_table_ref(self) -> ast.TableRef:
        left = self.parse_table_primary()
        while True:
            if self.accept_punct(","):
                right = self.parse_table_primary()
                left = ast.Join(left=left, right=right, kind="CROSS")
                continue
            if self.check_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self.parse_table_primary()
                left = ast.Join(left=left, right=right, kind="CROSS")
                continue
            if self.check_keyword("SEMANTIC_JOIN"):
                self.advance()
                right = self.parse_table_primary()
                self.expect_keyword("ON")
                on = self.parse_expr()
                if not any(
                    isinstance(node, ast.SemanticMatch) for node in ast.walk_expr(on)
                ):
                    raise SQLSyntaxError(
                        "SEMANTIC_JOIN requires a MATCHES(...) predicate in its ON clause"
                    )
                left = ast.Join(left=left, right=right, kind="SEMANTIC", on=on)
                continue
            kind = None
            if self.check_keyword("JOIN"):
                kind = "INNER"
                self.advance()
            elif self.check_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.check_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT"
            if kind is None:
                return left
            right = self.parse_table_primary()
            on = None
            if self.accept_keyword("ON"):
                on = self.parse_expr()
            left = ast.Join(left=left, right=right, kind=kind, on=on)

    def parse_table_primary(self) -> ast.TableRef:
        if self.accept_punct("("):
            if self.check_keyword("SELECT"):
                select = self.parse_select()
                self.expect_punct(")")
                alias = self._parse_alias(required=True)
                assert alias is not None
                return ast.SubquerySource(select=select, alias=alias)
            ref = self.parse_table_ref()
            self.expect_punct(")")
            return ref
        name = self.expect_ident()
        alias = self._parse_alias(required=False)
        return ast.TableName(name=name, alias=alias)

    def _parse_alias(self, required: bool) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_ident()
        if self.current.type is TokenType.IDENT:
            return self.advance().value  # type: ignore[return-value]
        if required:
            raise SQLSyntaxError(f"derived table requires an alias at position {self.current.pos}")
        return None

    # -- expressions (precedence climbing) ------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.Binary(op="OR", left=left, right=self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.Binary(op="AND", left=left, right=self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Unary(op="NOT", operand=self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expr:
        left = self.parse_additive()
        negated = False
        if self.check_keyword("NOT"):
            # Lookahead: NOT IN / NOT LIKE / NOT BETWEEN.
            nxt = self.tokens[self.pos + 1]
            if nxt.is_keyword("IN", "LIKE", "BETWEEN"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            return self._parse_in(left, negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(operand=left, pattern=self.parse_additive(), negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self.accept_keyword("IS"):
            is_negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_negated)
        op = self.accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            if op == "!=":
                op = "<>"
            return ast.Binary(op=op, left=left, right=self.parse_additive())
        return left

    def _parse_in(self, left: ast.Expr, negated: bool) -> ast.Expr:
        self.expect_punct("(")
        if self.check_keyword("SELECT"):
            select = self.parse_select()
            self.expect_punct(")")
            return ast.InSelect(operand=left, select=select, negated=negated)
        items = [self.parse_expr()]
        while self.accept_punct(","):
            items.append(self.parse_expr())
        self.expect_punct(")")
        return ast.InList(operand=left, items=items, negated=negated)

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.Binary(op=op, left=left, right=self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.Binary(op=op, left=left, right=self.parse_unary())

    def parse_unary(self) -> ast.Expr:
        op = self.accept_operator("-", "+")
        if op is not None:
            return ast.Unary(op=op, operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword("SEMANTIC_FILTER"):
            return self.parse_semantic_filter()
        if token.is_keyword("MATCHES"):
            return self.parse_matches()
        if token.is_keyword("LLM_CLASSIFY", "LLM_EXTRACT"):
            return self.parse_llm_func()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            select = self.parse_select()
            self.expect_punct(")")
            return ast.Exists(select=select)
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_punct("(")
            inner = self.parse_expr()
            self.expect_keyword("AS")
            type_name = self.expect_ident()
            self.expect_punct(")")
            return ast.FuncCall(name=f"CAST_{SQLType.from_name(type_name).value}", args=[inner])
        if self.accept_punct("("):
            if self.check_keyword("SELECT"):
                select = self.parse_select()
                self.expect_punct(")")
                return ast.ScalarSubquery(select=select)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self.advance().value
            assert isinstance(name, str)
            # Function call.
            if self.accept_punct("("):
                return self._parse_func_call(name)
            # Qualified reference: t.col or t.*
            if self.accept_punct("."):
                if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                    self.advance()
                    return ast.Star(table=name)
                column = self.expect_ident()
                return ast.ColumnRef(name=column, table=name)
            return ast.ColumnRef(name=name)
        raise SQLSyntaxError(f"unexpected token {token.text!r} at position {token.pos}")

    def _parse_func_call(self, name: str) -> ast.Expr:
        upper = name.upper()
        distinct = False
        args: List[ast.Expr] = []
        if self.accept_punct(")"):
            return ast.FuncCall(name=upper, args=args)
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self.advance()
            self.expect_punct(")")
            return ast.FuncCall(name=upper, args=[ast.Star()])
        if self.accept_keyword("DISTINCT"):
            distinct = True
        args.append(self.parse_expr())
        while self.accept_punct(","):
            args.append(self.parse_expr())
        self.expect_punct(")")
        return ast.FuncCall(name=upper, args=args, distinct=distinct)

    # -- semantic operators ----------------------------------------------------

    def _expect_string_param(self, operator: str, what: str) -> str:
        """A non-empty string literal argument of a semantic operator."""
        token = self.current
        if token.type is not TokenType.STRING:
            raise SQLSyntaxError(
                f"{operator} expects a string literal {what} at position "
                f"{token.pos}, got {token.text!r}"
            )
        self.advance()
        text = str(token.value).strip()
        if not text:
            raise SQLSyntaxError(f"{operator} {what} must not be empty")
        return text

    def parse_semantic_filter(self) -> ast.Expr:
        self.expect_keyword("SEMANTIC_FILTER")
        self.expect_punct("(")
        operand = self.parse_expr()
        self.expect_punct(",")
        predicate = self._expect_string_param("SEMANTIC_FILTER", "predicate")
        self.expect_punct(")")
        return ast.SemanticFilter(operand=operand, predicate=predicate)

    def parse_matches(self) -> ast.Expr:
        self.expect_keyword("MATCHES")
        self.expect_punct("(")
        left = self.parse_expr()
        self.expect_punct(",")
        right = self.parse_expr()
        self.expect_punct(")")
        return ast.SemanticMatch(left=left, right=right)

    def parse_llm_func(self) -> ast.Expr:
        name = self.advance().text
        self.expect_punct("(")
        operand = self.parse_expr()
        params: List[str] = []
        while self.accept_punct(","):
            what = "label" if name == "LLM_CLASSIFY" else "field name"
            params.append(self._expect_string_param(name, what))
        self.expect_punct(")")
        if name == "LLM_CLASSIFY" and len(params) < 2:
            raise SQLSyntaxError("LLM_CLASSIFY requires at least two label literals")
        if name == "LLM_EXTRACT" and len(params) != 1:
            raise SQLSyntaxError("LLM_EXTRACT requires exactly one field-name literal")
        return ast.LLMFunc(name=name, operand=operand, params=params)

    def parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((cond, self.parse_expr()))
        if not whens:
            raise SQLSyntaxError("CASE requires at least one WHEN branch")
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.CaseWhen(whens=whens, default=default)

    # -- DML / DDL -------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: Optional[List[str]] = None
        if self.accept_punct("("):
            columns = [self.expect_ident()]
            while self.accept_punct(","):
                columns.append(self.expect_ident())
            self.expect_punct(")")
        if self.check_keyword("SELECT"):
            return ast.Insert(table=table, columns=columns, select=self.parse_select())
        self.expect_keyword("VALUES")
        rows: List[List[ast.Expr]] = [self._parse_value_row()]
        while self.accept_punct(","):
            rows.append(self._parse_value_row())
        return ast.Insert(table=table, columns=columns, rows=rows)

    def _parse_value_row(self) -> List[ast.Expr]:
        self.expect_punct("(")
        row = [self.parse_expr()]
        while self.accept_punct(","):
            row.append(self.parse_expr())
        self.expect_punct(")")
        return row

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self.expect_ident()
            if self.accept_operator("=") is None:
                raise SQLSyntaxError(f"expected '=' in SET clause at position {self.current.pos}")
            assignments.append((column, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def parse_create(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            # EXISTS is a keyword token.
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_punct("(")
        columns = [self._parse_column_def()]
        while self.accept_punct(","):
            columns.append(self._parse_column_def())
        self.expect_punct(")")
        return ast.CreateTable(name=name, columns=columns, if_not_exists=if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_name = self.expect_ident()
        sql_type = SQLType.from_name(type_name)
        primary_key = not_null = False
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                continue
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
                continue
            break
        return ast.ColumnDef(name=name, sql_type=sql_type, primary_key=primary_key, not_null=not_null)

    def parse_drop(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(name=self.expect_ident(), if_exists=if_exists)


def parse_sql(sql: str) -> List[ast.Statement]:
    """Parse a semicolon-separated script into a list of statements."""
    return _Parser(sql).parse_statements()


def parse_statement(sql: str) -> ast.Statement:
    """Parse exactly one statement; raises if the text holds zero or many."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise SQLSyntaxError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used by transformation synthesis)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    if parser.current.type is not TokenType.EOF:
        raise SQLSyntaxError(f"trailing input after expression: {parser.current.text!r}")
    return expr
