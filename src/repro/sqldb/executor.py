"""Query execution for :mod:`repro.sqldb`.

The executor is a straightforward tuple-at-a-time interpreter: FROM produces
an environment stream (nested-loop joins), WHERE filters it, grouping folds
it, and projection/ORDER BY/LIMIT shape the output. Subqueries re-enter the
executor with the current environment as the outer scope, which is what makes
correlated ``EXISTS``/``IN`` work.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SQLCatalogError, SQLError, SQLTypeError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog, Column, Table, TableSchema
from repro.sqldb.semantic import (
    SemanticRuntime,
    classify_prompt,
    extract_prompt,
    filter_prompt,
    match_prompt,
    truthy_answer,
)
from repro.sqldb.types import SQLType, sort_key

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass
class ResultSet:
    """Columns + rows produced by a SELECT (or rowcount for DML)."""

    columns: List[str]
    rows: List[Tuple[object, ...]]
    rowcount: int = 0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> object:
        """First column of the first row, or None when empty."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> List[object]:
        idx = [c.lower() for c in self.columns].index(name.lower())
        return [row[idx] for row in self.rows]


@dataclass
class Binding:
    """One FROM-clause source bound to an alias."""

    alias: str
    columns: List[str]  # lower-cased column names in order
    row: Tuple[object, ...]


@dataclass
class Environment:
    """A scope for name resolution; chains to the outer query's scope."""

    bindings: List[Binding] = field(default_factory=list)
    parent: Optional["Environment"] = None
    aliases: Dict[str, object] = field(default_factory=dict)  # output aliases

    def child(self, bindings: List[Binding]) -> "Environment":
        return Environment(bindings=bindings, parent=self)

    def lookup(self, name: str, table: Optional[str]) -> object:
        found = self._lookup_local(name, table)
        if found is not _MISSING:
            return found
        if self.parent is not None:
            return self.parent.lookup(name, table)
        where = f"{table}.{name}" if table else name
        raise SQLCatalogError(f"no such column: {where}")

    def _lookup_local(self, name: str, table: Optional[str]) -> object:
        lowered = name.lower()
        if table is not None:
            table_l = table.lower()
            for binding in self.bindings:
                if binding.alias.lower() == table_l and lowered in binding.columns:
                    return binding.row[binding.columns.index(lowered)]
            return _MISSING
        matches = [
            (b, b.columns.index(lowered)) for b in self.bindings if lowered in b.columns
        ]
        if len(matches) > 1:
            raise SQLCatalogError(f"ambiguous column reference: {name}")
        if matches:
            binding, idx = matches[0]
            return binding.row[idx]
        if lowered in self.aliases:
            return self.aliases[lowered]
        return _MISSING


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numeric(value: object, context: str) -> float:
    if _is_number(value):
        return value  # type: ignore[return-value]
    raise SQLTypeError(f"{context} expects a number, got {value!r}")


class Executor:
    """Executes parsed statements against a :class:`Catalog`."""

    def __init__(self, catalog: Catalog, semantic: Optional[SemanticRuntime] = None) -> None:
        self.catalog = catalog
        self._semantic = semantic

    @property
    def semantic(self) -> SemanticRuntime:
        """The semantic-operator runtime, created on first LLM touch so
        queries without semantic operators never build a provider."""
        if self._semantic is None:
            self._semantic = SemanticRuntime()
        return self._semantic

    def _set_at_a_time(self) -> bool:
        """Whether semantic operators are evaluated set-at-a-time (prefetch
        whole column batches) rather than per row."""
        return self._semantic is None or self._semantic.batch

    # ------------------------------------------------------------------ DDL

    def execute(self, statement: ast.Statement, env: Optional[Environment] = None) -> ResultSet:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement, env)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        raise SQLError(f"executor cannot handle {type(statement).__name__}")

    def _execute_create(self, stmt: ast.CreateTable) -> ResultSet:
        columns = tuple(
            Column(name=c.name, sql_type=c.sql_type, primary_key=c.primary_key, not_null=c.not_null)
            for c in stmt.columns
        )
        table = Table(TableSchema(name=stmt.name, columns=columns))
        self.catalog.create(table, if_not_exists=stmt.if_not_exists)
        return ResultSet(columns=[], rows=[])

    # ------------------------------------------------------------------ DML

    def _execute_insert(self, stmt: ast.Insert) -> ResultSet:
        table = self.catalog.get(stmt.table)
        schema = table.schema
        if stmt.columns is not None:
            indexes = [schema.index_of(c) for c in stmt.columns]
        else:
            indexes = list(range(len(schema.columns)))

        def widen(partial: Sequence[object]) -> List[object]:
            if len(partial) != len(indexes):
                raise SQLError(
                    f"INSERT into {stmt.table!r}: {len(indexes)} columns but "
                    f"{len(partial)} values"
                )
            full: List[object] = [None] * len(schema.columns)
            for idx, value in zip(indexes, partial):
                full[idx] = value
            return full

        count = 0
        if stmt.select is not None:
            result = self.execute_select(stmt.select)
            for row in result.rows:
                table.insert(widen(row))
                count += 1
        else:
            assert stmt.rows is not None
            empty = Environment()
            for value_row in stmt.rows:
                values = [self.eval_expr(e, empty) for e in value_row]
                table.insert(widen(values))
                count += 1
        return ResultSet(columns=[], rows=[], rowcount=count)

    def _table_env(self, table: Table, row: Tuple[object, ...]) -> Environment:
        binding = Binding(
            alias=table.schema.name,
            columns=[c.lower() for c in table.schema.column_names],
            row=row,
        )
        return Environment(bindings=[binding])

    def _execute_update(self, stmt: ast.Update) -> ResultSet:
        table = self.catalog.get(stmt.table)
        schema = table.schema
        assignment_idx = [(schema.index_of(c), e) for c, e in stmt.assignments]
        new_rows: List[Tuple[object, ...]] = []
        count = 0
        for row in table.rows:
            env = self._table_env(table, row)
            if stmt.where is None or self._truthy(self.eval_expr(stmt.where, env)):
                mutable = list(row)
                for idx, expr in assignment_idx:
                    value = self.eval_expr(expr, env)
                    from repro.sqldb.types import coerce

                    mutable[idx] = coerce(value, schema.columns[idx].sql_type)
                new_rows.append(tuple(mutable))
                count += 1
            else:
                new_rows.append(row)
        table.replace_rows(new_rows)
        return ResultSet(columns=[], rows=[], rowcount=count)

    def _execute_delete(self, stmt: ast.Delete) -> ResultSet:
        table = self.catalog.get(stmt.table)
        kept: List[Tuple[object, ...]] = []
        count = 0
        for row in table.rows:
            env = self._table_env(table, row)
            if stmt.where is None or self._truthy(self.eval_expr(stmt.where, env)):
                count += 1
            else:
                kept.append(row)
        table.replace_rows(kept)
        return ResultSet(columns=[], rows=[], rowcount=count)

    # --------------------------------------------------------------- SELECT

    def execute_select(self, select: ast.Select, outer: Optional[Environment] = None) -> ResultSet:
        result = self._execute_simple_select(select, outer)
        for set_op in select.set_ops:
            right = self.execute_select(set_op.select, outer)
            result = self._apply_set_op(result, right, set_op)
        # ORDER BY / LIMIT of the outermost select apply after set ops; for
        # simple selects they were already applied inside, so only reapply
        # when set ops are present.
        if select.set_ops:
            result = self._order_limit_rows(result, select)
        return result

    def _apply_set_op(self, left: ResultSet, right: ResultSet, set_op: ast.SetOp) -> ResultSet:
        if len(left.columns) != len(right.columns):
            raise SQLError(
                f"{set_op.op} operands have different column counts: "
                f"{len(left.columns)} vs {len(right.columns)}"
            )
        if set_op.op == "UNION":
            rows = left.rows + right.rows
            if not set_op.all:
                rows = _dedupe(rows)
        elif set_op.op == "INTERSECT":
            right_set = set(right.rows)
            rows = _dedupe([r for r in left.rows if r in right_set])
        elif set_op.op == "EXCEPT":
            right_set = set(right.rows)
            rows = _dedupe([r for r in left.rows if r not in right_set])
        else:  # pragma: no cover - parser restricts ops
            raise SQLError(f"unknown set operation {set_op.op}")
        return ResultSet(columns=left.columns, rows=rows)

    def _order_limit_rows(self, result: ResultSet, select: ast.Select) -> ResultSet:
        rows = result.rows
        if select.order_by:
            col_lookup = {c.lower(): i for i, c in enumerate(result.columns)}

            def key_fn(row: Tuple[object, ...]) -> tuple:
                keys = []
                for item in select.order_by:
                    expr = item.expr
                    if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name.lower() in col_lookup:
                        value = row[col_lookup[expr.name.lower()]]
                    elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                        value = row[expr.value - 1]
                    else:
                        raise SQLError("ORDER BY after set operation must use output columns")
                    keys.append(sort_key(value))
                return tuple(keys)

            descending = [item.descending for item in select.order_by]
            rows = _multikey_sort(rows, key_fn, descending)
        if select.offset is not None:
            rows = rows[select.offset :]
        if select.limit is not None:
            rows = rows[: select.limit]
        return ResultSet(columns=result.columns, rows=rows)

    def _execute_simple_select(self, select: ast.Select, outer: Optional[Environment]) -> ResultSet:
        # When set operations follow, ORDER BY / LIMIT / OFFSET belong to
        # the compound result and are applied by the caller, not here.
        defer_shaping = bool(select.set_ops)
        # 1. FROM
        if select.source is not None:
            envs = self._scan(select.source, outer)
        else:
            envs = [Environment(bindings=[], parent=outer)]

        # 2. WHERE
        if select.where is not None:
            envs = self._filter_where(select.where, envs)

        grouped = bool(select.group_by) or select.having is not None or any(
            ast.contains_aggregate(item.expr) for item in select.items
        )

        output_columns = self._output_columns(select, envs, outer)

        # Set-at-a-time: warm the semantic cache for LLM expressions in the
        # projection / ORDER BY with one batch per operator, so the per-row
        # evaluation below never issues per-row provider calls.
        if not grouped:
            post_where = [
                item.expr for item in select.items if not isinstance(item.expr, ast.Star)
            ]
            post_where.extend(item.expr for item in select.order_by)
            semantic_exprs = [e for e in post_where if ast.contains_semantic(e)]
            if semantic_exprs:
                self._prefetch_semantic(semantic_exprs, envs)

        if grouped:
            rows_with_env = self._execute_grouped(select, envs)
        else:
            rows_with_env = []
            for env in envs:
                row = tuple(
                    value
                    for item in select.items
                    for value in self._project_item(item, env)
                )
                rows_with_env.append((row, env))

        # DISTINCT before ORDER BY (SQL semantics: DISTINCT applies to result).
        if select.distinct:
            seen = set()
            deduped = []
            for row, env in rows_with_env:
                if row not in seen:
                    seen.add(row)
                    deduped.append((row, env))
            rows_with_env = deduped

        # ORDER BY: may reference output aliases or source columns.
        if select.order_by and not defer_shaping:
            rows_with_env = self._order_rows(select, rows_with_env, output_columns)

        rows = [row for row, _env in rows_with_env]
        if not defer_shaping:
            if select.offset is not None:
                rows = rows[select.offset :]
            if select.limit is not None:
                rows = rows[: select.limit]
        return ResultSet(columns=output_columns, rows=rows)

    def _order_rows(
        self,
        select: ast.Select,
        rows_with_env: List[Tuple[Tuple[object, ...], Environment]],
        output_columns: List[str],
    ) -> List[Tuple[Tuple[object, ...], Environment]]:
        col_lookup = {c.lower(): i for i, c in enumerate(output_columns)}

        def key_fn(pair: Tuple[Tuple[object, ...], Environment]) -> tuple:
            row, env = pair
            keys = []
            for item in select.order_by:
                expr = item.expr
                value: object
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    value = row[expr.value - 1]
                elif (
                    isinstance(expr, ast.ColumnRef)
                    and expr.table is None
                    and expr.name.lower() in col_lookup
                ):
                    value = row[col_lookup[expr.name.lower()]]
                else:
                    if ast.contains_aggregate(expr):
                        value = self._eval_group_expr(expr, env)
                    else:
                        value = self.eval_expr(expr, env)
                keys.append(sort_key(value))
            return tuple(keys)

        descending = [item.descending for item in select.order_by]
        return _multikey_sort(rows_with_env, key_fn, descending)

    def _project_item(self, item: ast.SelectItem, env: Environment) -> List[object]:
        if isinstance(item.expr, ast.Star):
            values: List[object] = []
            for binding in env.bindings:
                if item.expr.table is not None and binding.alias.lower() != item.expr.table.lower():
                    continue
                values.extend(binding.row)
            return values
        return [self.eval_expr(item.expr, env)]

    def _output_columns(
        self, select: ast.Select, envs: List[Environment], outer: Optional[Environment]
    ) -> List[str]:
        names: List[str] = []
        # For star expansion we need binding column names even with zero rows;
        # regenerate bindings from the source when the env list is empty.
        template = envs[0] if envs else self._empty_env(select.source, outer)
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                for binding in template.bindings:
                    if item.expr.table is not None and binding.alias.lower() != item.expr.table.lower():
                        continue
                    names.extend(binding.columns)
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(str(item.expr))
        return names

    def _empty_env(self, source: Optional[ast.TableRef], outer: Optional[Environment]) -> Environment:
        if source is None:
            return Environment(bindings=[], parent=outer)
        bindings = self._source_bindings(source)
        return Environment(bindings=bindings, parent=outer)

    def _source_bindings(self, source: ast.TableRef) -> List[Binding]:
        """Bindings with empty rows, used only for schema discovery."""
        if isinstance(source, ast.TableName):
            table = self.catalog.get(source.name)
            cols = [c.lower() for c in table.schema.column_names]
            return [Binding(alias=source.binding, columns=cols, row=tuple([None] * len(cols)))]
        if isinstance(source, ast.SubquerySource):
            inner = self.execute_select(source.select)
            cols = [c.lower() for c in inner.columns]
            return [Binding(alias=source.alias, columns=cols, row=tuple([None] * len(cols)))]
        if isinstance(source, ast.Join):
            return self._source_bindings(source.left) + self._source_bindings(source.right)
        raise SQLError(f"unknown FROM source {type(source).__name__}")

    # ---------------------------------------------------------------- scans

    def _scan(self, source: ast.TableRef, outer: Optional[Environment]) -> List[Environment]:
        binding_rows = self._scan_bindings(source, outer)
        return [Environment(bindings=bindings, parent=outer) for bindings in binding_rows]

    def _scan_bindings(
        self, source: ast.TableRef, outer: Optional[Environment]
    ) -> List[List[Binding]]:
        if isinstance(source, ast.TableName):
            table = self.catalog.get(source.name)
            cols = [c.lower() for c in table.schema.column_names]
            alias = source.binding
            return [[Binding(alias=alias, columns=cols, row=row)] for row in table.rows]
        if isinstance(source, ast.SubquerySource):
            inner = self.execute_select(source.select, outer)
            cols = [c.lower() for c in inner.columns]
            return [[Binding(alias=source.alias, columns=cols, row=row)] for row in inner.rows]
        if isinstance(source, ast.Join):
            left_rows = self._scan_bindings(source.left, outer)
            right_rows = self._scan_bindings(source.right, outer)
            return self._join(source, left_rows, right_rows, outer)
        raise SQLError(f"unknown FROM source {type(source).__name__}")

    def _join(
        self,
        join: ast.Join,
        left_rows: List[List[Binding]],
        right_rows: List[List[Binding]],
        outer: Optional[Environment],
    ) -> List[List[Binding]]:
        if join.kind == "SEMANTIC":
            return self._semantic_join(join, left_rows, right_rows, outer)
        right_template = right_rows[0] if right_rows else self._source_bindings(join.right)
        hash_plan = self._hash_join_plan(join, left_rows, right_rows, outer)
        if hash_plan is not None:
            return self._hash_join(join, left_rows, right_rows, right_template, outer, hash_plan)
        out: List[List[Binding]] = []
        for left in left_rows:
            matched = False
            for right in right_rows:
                combined = left + right
                if join.on is not None:
                    env = Environment(bindings=combined, parent=outer)
                    if not self._truthy(self.eval_expr(join.on, env)):
                        continue
                elif join.kind != "CROSS" and join.kind != "INNER":
                    pass
                matched = True
                out.append(combined)
            if join.kind == "LEFT" and not matched:
                null_right = [
                    Binding(alias=b.alias, columns=b.columns, row=tuple([None] * len(b.columns)))
                    for b in right_template
                ]
                out.append(left + null_right)
        return out

    def _hash_join_plan(
        self,
        join: ast.Join,
        left_rows: List[List[Binding]],
        right_rows: List[List[Binding]],
        outer: Optional[Environment],
    ) -> Optional[Tuple[ast.Expr, ast.Expr, Optional[ast.Expr]]]:
        """Detect an equi-join: ON is ``expr = expr`` (optionally AND-ed with
        a residual) where one side evaluates against the left bindings and
        the other against the right. Returns (left key, right key, residual)
        or None to fall back to the nested loop."""
        if join.kind not in ("INNER", "LEFT") or join.on is None:
            return None
        if not left_rows or not right_rows:
            return None
        # Split a top-level AND chain into one equality + residual.
        conjuncts: List[ast.Expr] = []
        stack = [join.on]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Binary) and node.op == "AND":
                stack.extend((node.left, node.right))
            else:
                conjuncts.append(node)
        equality = next(
            (
                c
                for c in conjuncts
                if isinstance(c, ast.Binary) and c.op == "="
            ),
            None,
        )
        if equality is None:
            return None
        residual: Optional[ast.Expr] = None
        for conjunct in conjuncts:
            if conjunct is equality:
                continue
            residual = (
                conjunct
                if residual is None
                else ast.Binary(op="AND", left=residual, right=conjunct)
            )

        def side_of(expr: ast.Expr) -> Optional[str]:
            """'left'/'right' if the expression evaluates purely against
            exactly one side's bindings (no outer references), else None —
            ambiguity falls back to the nested loop (which reports it)."""
            resolved = []
            for rows, side in ((left_rows, "left"), (right_rows, "right")):
                try:
                    # No parent env: outer/other-side references must fail.
                    self.eval_expr(expr, Environment(bindings=rows[0]))
                    resolved.append(side)
                except SQLError:
                    continue
            return resolved[0] if len(resolved) == 1 else None

        left_side = side_of(equality.left)
        right_side = side_of(equality.right)
        if left_side == "left" and right_side == "right":
            return equality.left, equality.right, residual
        if left_side == "right" and right_side == "left":
            return equality.right, equality.left, residual
        return None

    def _hash_join(
        self,
        join: ast.Join,
        left_rows: List[List[Binding]],
        right_rows: List[List[Binding]],
        right_template: List[Binding],
        outer: Optional[Environment],
        plan: Tuple[ast.Expr, ast.Expr, Optional[ast.Expr]],
    ) -> List[List[Binding]]:
        """Equi-join via a hash table on the right side — O(n + m) instead
        of the nested loop's O(n * m) for large inputs."""
        left_key, right_key, residual = plan
        table: Dict[object, List[List[Binding]]] = {}
        for right in right_rows:
            key = self.eval_expr(right_key, Environment(bindings=right, parent=outer))
            if key is None:
                continue  # NULL never equi-joins
            table.setdefault(_join_key(key), []).append(right)
        out: List[List[Binding]] = []
        for left in left_rows:
            key = self.eval_expr(left_key, Environment(bindings=left, parent=outer))
            matched = False
            if key is not None:
                for right in table.get(_join_key(key), []):
                    combined = left + right
                    if residual is not None:
                        env = Environment(bindings=combined, parent=outer)
                        if not self._truthy(self.eval_expr(residual, env)):
                            continue
                    matched = True
                    out.append(combined)
            if join.kind == "LEFT" and not matched:
                null_right = [
                    Binding(alias=b.alias, columns=b.columns, row=tuple([None] * len(b.columns)))
                    for b in right_template
                ]
                out.append(left + null_right)
        return out

    # --------------------------------------------------- semantic operators

    def _filter_where(self, where: ast.Expr, envs: List[Environment]) -> List[Environment]:
        """Apply WHERE. With semantic operators in set-at-a-time mode, split
        the top-level AND chain: cheap relational conjuncts filter first
        (shrinking the LLM's candidate set), then each semantic conjunct is
        prefetched as one batch over the survivors and applied per row from
        the cache. Row-set identical to evaluating ``where`` per row:
        :meth:`_truthy` accepts a row iff every conjunct is truthy,
        regardless of conjunct order.
        """
        if not self._set_at_a_time() or not ast.contains_semantic(where):
            return [e for e in envs if self._truthy(self.eval_expr(where, e))]
        relational: List[ast.Expr] = []
        semantic: List[ast.Expr] = []
        for conjunct in ast.conjuncts(where):
            (semantic if ast.contains_semantic(conjunct) else relational).append(conjunct)
        for conjunct in relational:
            envs = [e for e in envs if self._truthy(self.eval_expr(conjunct, e))]
        for conjunct in semantic:
            self._prefetch_semantic([conjunct], envs)
            envs = [e for e in envs if self._truthy(self.eval_expr(conjunct, e))]
        return envs

    def _semantic_join(
        self,
        join: ast.Join,
        left_rows: List[List[Binding]],
        right_rows: List[List[Binding]],
        outer: Optional[Environment],
    ) -> List[List[Binding]]:
        """SEMANTIC_JOIN: nested-loop pairing where MATCHES(...) conjuncts
        go to the LLM. Set-at-a-time mode filters pairs by the relational ON
        conjuncts first, then dispatches one batch per semantic conjunct
        over the surviving pairs; naive mode evaluates ``join.on`` per pair
        exactly as written."""
        if join.on is None:  # pragma: no cover - parser guarantees ON
            raise SQLError("SEMANTIC_JOIN requires an ON clause")
        if not self._set_at_a_time():
            out: List[List[Binding]] = []
            for left in left_rows:
                for right in right_rows:
                    combined = left + right
                    env = Environment(bindings=combined, parent=outer)
                    if self._truthy(self.eval_expr(join.on, env)):
                        out.append(combined)
            return out
        relational = [c for c in ast.conjuncts(join.on) if not ast.contains_semantic(c)]
        semantic = [c for c in ast.conjuncts(join.on) if ast.contains_semantic(c)]
        survivors: List[Tuple[List[Binding], Environment]] = []
        for left in left_rows:
            for right in right_rows:
                combined = left + right
                env = Environment(bindings=combined, parent=outer)
                if all(self._truthy(self.eval_expr(c, env)) for c in relational):
                    survivors.append((combined, env))
        for conjunct in semantic:
            self._prefetch_semantic([conjunct], [env for _b, env in survivors])
            survivors = [
                (bindings, env)
                for bindings, env in survivors
                if self._truthy(self.eval_expr(conjunct, env))
            ]
        return [bindings for bindings, _env in survivors]

    def _prefetch_semantic(self, exprs: Sequence[ast.Expr], envs: List[Environment]) -> None:
        """Warm the semantic cache: one provider batch per semantic operator
        node across all rows. Innermost nodes go first so an outer node's
        operand (itself semantic) resolves from the cache while its prompts
        are being built."""
        if not envs or not self._set_at_a_time():
            return
        nodes: List[ast.Expr] = []
        for expr in exprs:
            nodes.extend(ast.semantic_nodes(expr))
        nodes.sort(key=lambda n: len(ast.semantic_nodes(n)))
        for node in nodes:
            prompts: List[str] = []
            for env in envs:
                try:
                    prompt = self._semantic_prompt(node, env)
                except SQLError:
                    # Prefetch is best-effort; real evaluation will report.
                    continue
                if prompt is not None:
                    prompts.append(prompt)
            if prompts:
                self.semantic.prefetch(prompts)

    def _semantic_prompt(self, node: ast.Expr, env: Environment) -> Optional[str]:
        """The exact prompt :meth:`eval_expr` would issue for ``node`` in
        ``env`` — None when NULL operands make the node NULL without any
        LLM call. Shared by prefetch and per-row paths: byte-identical
        prompts are what make cache hits (and bit-equivalence) exact."""
        if isinstance(node, ast.SemanticFilter):
            value = self.eval_expr(node.operand, env)
            return None if value is None else filter_prompt(node.predicate, value)
        if isinstance(node, ast.SemanticMatch):
            left = self.eval_expr(node.left, env)
            right = self.eval_expr(node.right, env)
            if left is None or right is None:
                return None
            return match_prompt(left, right)
        assert isinstance(node, ast.LLMFunc)
        value = self.eval_expr(node.operand, env)
        if value is None:
            return None
        if node.name == "LLM_CLASSIFY":
            return classify_prompt(value, node.params)
        return extract_prompt(value, node.params[0])

    # ------------------------------------------------------------- grouping

    def _execute_grouped(
        self, select: ast.Select, envs: List[Environment]
    ) -> List[Tuple[Tuple[object, ...], Environment]]:
        groups: Dict[tuple, List[Environment]] = {}
        order: List[tuple] = []
        if select.group_by:
            for env in envs:
                key = tuple(_hashable(self.eval_expr(e, env)) for e in select.group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(env)
        else:
            key = ()
            groups[key] = list(envs)
            order.append(key)

        rows_with_env: List[Tuple[Tuple[object, ...], Environment]] = []
        for key in order:
            group_envs = groups[key]
            if not group_envs and not select.group_by:
                group_envs = []
            representative = group_envs[0] if group_envs else Environment()
            representative = _GroupEnvironment.wrap(representative, group_envs, self)
            if select.having is not None:
                if not self._truthy(self._eval_group_expr(select.having, representative)):
                    continue
            row: List[object] = []
            for item in select.items:
                if isinstance(item.expr, ast.Star):
                    raise SQLError("SELECT * cannot be combined with GROUP BY/aggregates")
                row.append(self._eval_group_expr(item.expr, representative))
            rows_with_env.append((tuple(row), representative))
        return rows_with_env

    def _eval_group_expr(self, expr: ast.Expr, env: Environment) -> object:
        """Evaluate an expression that may contain aggregate calls."""
        if isinstance(expr, ast.FuncCall) and expr.name in _AGGREGATES:
            if not isinstance(env, _GroupEnvironment):
                raise SQLError(f"aggregate {expr.name} used outside GROUP BY context")
            return env.aggregate(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in ("AND", "OR"):
                return self._eval_logic(
                    expr.op,
                    lambda: self._eval_group_expr(expr.left, env),
                    lambda: self._eval_group_expr(expr.right, env),
                )
            return self._apply_binary(
                expr.op,
                self._eval_group_expr(expr.left, env),
                self._eval_group_expr(expr.right, env),
            )
        if isinstance(expr, ast.Unary):
            return self._apply_unary(expr.op, self._eval_group_expr(expr.operand, env))
        if isinstance(expr, ast.FuncCall):
            args = [self._eval_group_expr(a, env) for a in expr.args]
            return self._apply_function(expr.name, args)
        if isinstance(expr, ast.CaseWhen):
            for cond, result in expr.whens:
                if self._truthy(self._eval_group_expr(cond, env)):
                    return self._eval_group_expr(result, env)
            return self._eval_group_expr(expr.default, env) if expr.default else None
        if isinstance(expr, (ast.Between, ast.Like, ast.IsNull, ast.InList)):
            # These never contain aggregates in our dialect's tests; evaluate
            # by rebuilding on top of the group-level operand evaluation.
            return self.eval_expr(expr, env)
        return self.eval_expr(expr, env)

    # ---------------------------------------------------------- expressions

    def eval_expr(self, expr: ast.Expr, env: Environment) -> object:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return env.lookup(expr.name, expr.table)
        if isinstance(expr, ast.Unary):
            return self._apply_unary(expr.op, self.eval_expr(expr.operand, env))
        if isinstance(expr, ast.Binary):
            if expr.op in ("AND", "OR"):
                return self._eval_logic(
                    expr.op,
                    lambda: self.eval_expr(expr.left, env),
                    lambda: self.eval_expr(expr.right, env),
                )
            return self._apply_binary(
                expr.op, self.eval_expr(expr.left, env), self.eval_expr(expr.right, env)
            )
        if isinstance(expr, ast.FuncCall):
            if expr.name in _AGGREGATES:
                return self._eval_group_expr(expr, env)
            args = [self.eval_expr(a, env) for a in expr.args]
            return self._apply_function(expr.name, args)
        if isinstance(expr, ast.InList):
            return self._eval_in_list(expr, env)
        if isinstance(expr, ast.InSelect):
            value = self.eval_expr(expr.operand, env)
            result = self.execute_select(expr.select, env)
            if len(result.columns) != 1:
                raise SQLError("IN subquery must return exactly one column")
            members = {row[0] for row in result.rows}
            if value is None:
                return None
            hit = value in members
            return (not hit) if expr.negated else hit
        if isinstance(expr, ast.Exists):
            result = self.execute_select(expr.select, env)
            hit = bool(result.rows)
            return (not hit) if expr.negated else hit
        if isinstance(expr, ast.ScalarSubquery):
            result = self.execute_select(expr.select, env)
            if len(result.columns) != 1:
                raise SQLError("scalar subquery must return exactly one column")
            return result.rows[0][0] if result.rows else None
        if isinstance(expr, ast.Between):
            value = self.eval_expr(expr.operand, env)
            low = self.eval_expr(expr.low, env)
            high = self.eval_expr(expr.high, env)
            if value is None or low is None or high is None:
                return None
            hit = sort_key(low) <= sort_key(value) <= sort_key(high)
            return (not hit) if expr.negated else hit
        if isinstance(expr, ast.Like):
            value = self.eval_expr(expr.operand, env)
            pattern = self.eval_expr(expr.pattern, env)
            if value is None or pattern is None:
                return None
            hit = bool(_like_to_regex(str(pattern)).match(str(value)))
            return (not hit) if expr.negated else hit
        if isinstance(expr, ast.IsNull):
            value = self.eval_expr(expr.operand, env)
            hit = value is None
            return (not hit) if expr.negated else hit
        if isinstance(expr, ast.CaseWhen):
            for cond, result_expr in expr.whens:
                if self._truthy(self.eval_expr(cond, env)):
                    return self.eval_expr(result_expr, env)
            return self.eval_expr(expr.default, env) if expr.default is not None else None
        if isinstance(expr, (ast.SemanticFilter, ast.SemanticMatch)):
            prompt = self._semantic_prompt(expr, env)
            if prompt is None:
                return None  # NULL operand: NULL predicate, no LLM call
            return truthy_answer(self.semantic.answer(prompt))
        if isinstance(expr, ast.LLMFunc):
            prompt = self._semantic_prompt(expr, env)
            if prompt is None:
                return None
            return self.semantic.answer(prompt)
        if isinstance(expr, ast.Star):
            raise SQLError("'*' is only valid in a select list or COUNT(*)")
        raise SQLError(f"cannot evaluate expression {type(expr).__name__}")

    def _eval_in_list(self, expr: ast.InList, env: Environment) -> object:
        value = self.eval_expr(expr.operand, env)
        if value is None:
            return None
        members = [self.eval_expr(i, env) for i in expr.items]
        hit = any(m is not None and _sql_equal(value, m) for m in members)
        return (not hit) if expr.negated else hit

    @staticmethod
    def _truthy(value: object) -> bool:
        """WHERE semantics: NULL and FALSE reject the row."""
        if value is None:
            return False
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        return bool(value)

    def _eval_logic(self, op: str, left_fn: Callable[[], object], right_fn: Callable[[], object]) -> object:
        """Kleene three-valued AND/OR with short-circuiting."""
        left = _to_bool3(left_fn())
        if op == "AND":
            if left is False:
                return False
            right = _to_bool3(right_fn())
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        # OR
        if left is True:
            return True
        right = _to_bool3(right_fn())
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def _apply_unary(self, op: str, value: object) -> object:
        if op == "NOT":
            b = _to_bool3(value)
            return None if b is None else (not b)
        if value is None:
            return None
        if op == "-":
            return -_numeric(value, "unary -")
        if op == "+":
            return +_numeric(value, "unary +")
        raise SQLError(f"unknown unary operator {op}")

    def _apply_binary(self, op: str, left: object, right: object) -> object:
        if op == "||":
            if left is None or right is None:
                return None
            return _stringify(left) + _stringify(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return None
            if op == "=":
                return _sql_equal(left, right)
            if op == "<>":
                return not _sql_equal(left, right)
            lk, rk = sort_key(left), sort_key(right)
            if lk[0] != rk[0]:
                # Cross-type ordering uses the fixed type ranking.
                pass
            if op == "<":
                return lk < rk
            if op == "<=":
                return lk <= rk
            if op == ">":
                return lk > rk
            return lk >= rk
        if left is None or right is None:
            return None
        lnum = _numeric(left, f"operator {op}")
        rnum = _numeric(right, f"operator {op}")
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "/":
            if rnum == 0:
                return None
            if isinstance(lnum, int) and isinstance(rnum, int):
                return lnum // rnum if lnum % rnum == 0 else lnum / rnum
            return lnum / rnum
        if op == "%":
            if rnum == 0:
                return None
            return lnum % rnum
        raise SQLError(f"unknown binary operator {op}")

    def _apply_function(self, name: str, args: List[object]) -> object:
        if name == "COALESCE":
            for a in args:
                if a is not None:
                    return a
            return None
        if name == "NULLIF":
            if len(args) != 2:
                raise SQLError("NULLIF expects 2 arguments")
            return None if _sql_equal(args[0], args[1]) else args[0]
        if name.startswith("CAST_"):
            target = SQLType(name[len("CAST_") :])
            from repro.sqldb.types import coerce

            return coerce(args[0], target)
        # NULL-propagating scalar functions.
        if any(a is None for a in args):
            return None
        if name == "UPPER":
            return _stringify(args[0]).upper()
        if name == "LOWER":
            return _stringify(args[0]).lower()
        if name == "LENGTH":
            return len(_stringify(args[0]))
        if name == "TRIM":
            return _stringify(args[0]).strip()
        if name == "ABS":
            return abs(_numeric(args[0], "ABS"))
        if name == "ROUND":
            digits = int(_numeric(args[1], "ROUND")) if len(args) > 1 else 0
            return round(_numeric(args[0], "ROUND"), digits)
        if name == "FLOOR":
            return math.floor(_numeric(args[0], "FLOOR"))
        if name == "CEIL":
            return math.ceil(_numeric(args[0], "CEIL"))
        if name == "SUBSTR":
            text = _stringify(args[0])
            start = int(_numeric(args[1], "SUBSTR")) - 1
            if start < 0:
                start = max(len(text) + start + 1, 0)
            if len(args) > 2:
                length = int(_numeric(args[2], "SUBSTR"))
                return text[start : start + length]
            return text[start:]
        if name == "REPLACE":
            if len(args) != 3:
                raise SQLError("REPLACE expects 3 arguments")
            return _stringify(args[0]).replace(_stringify(args[1]), _stringify(args[2]))
        if name == "INSTR":
            return _stringify(args[0]).find(_stringify(args[1])) + 1
        raise SQLError(f"unknown function {name}")


class _GroupEnvironment(Environment):
    """Environment standing for a whole group during aggregation."""

    def __init__(self, representative: Environment, group: List[Environment], executor: Executor):
        super().__init__(
            bindings=representative.bindings,
            parent=representative.parent,
            aliases=representative.aliases,
        )
        self.group = group
        self.executor = executor

    @classmethod
    def wrap(
        cls, representative: Environment, group: List[Environment], executor: Executor
    ) -> "_GroupEnvironment":
        if isinstance(representative, cls):
            return representative
        return cls(representative, group, executor)

    def aggregate(self, call: ast.FuncCall) -> object:
        if call.name == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            return len(self.group)
        if len(call.args) != 1:
            raise SQLError(f"{call.name} expects exactly one argument")
        values = [self.executor.eval_expr(call.args[0], env) for env in self.group]
        values = [v for v in values if v is not None]
        if call.distinct:
            seen = set()
            unique = []
            for v in values:
                h = _hashable(v)
                if h not in seen:
                    seen.add(h)
                    unique.append(v)
            values = unique
        if call.name == "COUNT":
            return len(values)
        if not values:
            return None
        if call.name == "SUM":
            return sum(_numeric(v, "SUM") for v in values)
        if call.name == "AVG":
            return sum(_numeric(v, "AVG") for v in values) / len(values)
        if call.name == "MIN":
            return min(values, key=sort_key)
        if call.name == "MAX":
            return max(values, key=sort_key)
        raise SQLError(f"unknown aggregate {call.name}")


def _to_bool3(value: object) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _sql_equal(left: object, right: object) -> bool:
    if _is_number(left) and _is_number(right):
        return float(left) == float(right)  # type: ignore[arg-type]
    if isinstance(left, bool) and isinstance(right, bool):
        return left == right
    return left == right


def _stringify(value: object) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _hashable(value: object) -> object:
    return value


def _join_key(value: object) -> object:
    """Hash-join key normalization. Python already hashes 1, 1.0 and True
    to the same bucket, matching SQL numeric equality, so the value itself
    is the key; NULLs are filtered before this is called."""
    return value


def _dedupe(rows: List[Tuple[object, ...]]) -> List[Tuple[object, ...]]:
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _multikey_sort(items: list, key_fn, descending: List[bool]) -> list:
    """Stable multi-key sort with per-key direction."""
    decorated = [(key_fn(item), i, item) for i, item in enumerate(items)]
    # Sort by keys right-to-left for stability.
    for idx in range(len(descending) - 1, -1, -1):
        decorated.sort(key=lambda t: t[0][idx], reverse=descending[idx])
    return [item for _k, _i, item in decorated]
