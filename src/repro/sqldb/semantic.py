"""The semantic-operator runtime: how the SQL engine talks to the LLM.

This is the bridge between :mod:`repro.sqldb` and the serving side of the
library (the top open item of ROADMAP.md). The executor never calls a
provider directly; it renders each semantic operator into a prompt with
the fixed templates below and asks a :class:`SemanticRuntime` to answer.

The runtime has two modes:

* **optimized** (default) — set-at-a-time: the executor prefetches all of
  an operator's row prompts at once; the runtime dedupes them, consults a
  :class:`~repro.core.cache.SemanticCache` configured for *exact* reuse,
  and dispatches the misses as ONE ``complete_batch`` call whose shared
  prefix (instruction + predicate text) is metered once. Per-row
  evaluation afterwards hits the cache. A
  :class:`~repro.serving.BatchingScheduler` can stand between the runtime
  and the provider for cross-query coalescing.
* **naive** (:meth:`SemanticRuntime.naive`) — the reference evaluator:
  one ``complete`` per row, no dedupe, no cache, no batching.

**Bit-equivalence guarantee.** Both modes build byte-identical prompts,
and the simulated provider's completions are pure functions of
``(seed, model, prompt)``; ``complete_batch(prefix, items)`` answers each
item exactly as ``complete(prefix + item)`` (only token metering
differs). The cache's reuse tier is pinned to threshold 1.0, so it can
only ever return the text the provider itself would have produced for
that exact prompt. Hence the optimized plan returns bit-identical rows to
the naive one — ``benchmarks/bench_semantic_sql.py`` enforces this on
every run.

Latency accounting: the runtime charges a simulated
``call_overhead_ms + per_item_ms * items`` per provider call (mirroring
:class:`repro.bench.perf.SimulatedServiceProvider`'s cost model without
sleeping), so benchmarks can compare plans deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.cache import SemanticCache
    from repro.llm.provider import CompletionProvider
    from repro.serving.scheduler import BatchingScheduler

#: Semantic operators default to the strongest simulated model: per-call
#: cost dwarfs per-token cost, so there is no cascade to climb.
DEFAULT_SEMANTIC_MODEL = "gpt-4"

# Per-call latency model (also used by the planner's cost model): one
# provider round-trip costs orders of magnitude more than a row scan.
CALL_OVERHEAD_MS = 45.0
PER_ITEM_MS = 6.0

# --- prompt templates ------------------------------------------------------
#
# Fixed so that (a) the matching repro.llm.engines recognize them and
# (b) every prompt of one operator shares a long common prefix — the
# instruction and predicate come first, the row value last — which is what
# complete_batch's shared-prefix amortization monetizes.

_FILTER_TEMPLATE = (
    "Decide whether the value satisfies the predicate. Answer yes or no.\n"
    "Predicate: {predicate}\n"
    "Value: {value}\n"
    "Answer:"
)

_MATCH_TEMPLATE = (
    "Are the following two entity descriptions the same real-world entity? "
    "Answer yes or no.\n"
    "Entity A: {left}\n"
    "Entity B: {right}\n"
    "Answer:"
)

_CLASSIFY_TEMPLATE = (
    "Classify the value using one of the following column types: {labels}.\n"
    "{value}, this column type is __.\n"
    "Answer:"
)

_EXTRACT_TEMPLATE = (
    "Extract the {field} from the record. Answer with only the value.\n"
    "Record: {value}\n"
    "Answer:"
)


def render_value(value: object) -> str:
    """Render a SQL value for prompt embedding (newline-free: the prompt
    templates are line-oriented and both evaluation modes must agree)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return " ".join(str(value).split())


def filter_prompt(predicate: str, value: object) -> str:
    return _FILTER_TEMPLATE.format(predicate=predicate, value=render_value(value))


def match_prompt(left: object, right: object) -> str:
    return _MATCH_TEMPLATE.format(left=render_value(left), right=render_value(right))


def classify_prompt(value: object, labels: Sequence[str]) -> str:
    return _CLASSIFY_TEMPLATE.format(
        labels=", ".join(labels), value=render_value(value)
    )


def extract_prompt(value: object, field_name: str) -> str:
    return _EXTRACT_TEMPLATE.format(field=field_name, value=render_value(value))


def truthy_answer(text: str) -> bool:
    """Interpret a yes/no completion as a SQL boolean."""
    return text.strip().lower().startswith("y")


@dataclass
class SemanticStats:
    """What the runtime did — the benchmark's raw material."""

    prompts: int = 0  # operator evaluations requested (incl. cache hits)
    provider_calls: int = 0  # complete / complete_batch calls issued
    provider_items: int = 0  # prompts actually sent to the provider
    batches: int = 0  # complete_batch calls among provider_calls
    cache_hits: int = 0  # answered from the semantic cache
    simulated_ms: float = 0.0  # per-call latency model, no sleeping

    def as_dict(self) -> Dict[str, float]:
        return {
            "prompts": self.prompts,
            "provider_calls": self.provider_calls,
            "provider_items": self.provider_items,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "simulated_ms": round(self.simulated_ms, 3),
        }


@dataclass
class _StatsSnapshot:
    prompts: int
    provider_calls: int
    provider_items: int
    batches: int
    cache_hits: int
    simulated_ms: float


class SemanticRuntime:
    """Answers semantic-operator prompts through a completion provider.

    Parameters
    ----------
    provider:
        Any :class:`~repro.llm.provider.CompletionProvider` — the raw
        client (default), a composed :class:`~repro.serving.ServingStack`,
        or anything in between.
    cache:
        A :class:`~repro.core.cache.SemanticCache`; defaults to an
        exact-reuse cache (``reuse_threshold=1.0``). The cache is also the
        dataflow channel between set-at-a-time prefetch and per-row
        evaluation, so ``batch=True`` forces a cache.
    batch:
        ``True`` (optimized): dedupe + cache + one ``complete_batch`` per
        prefetch. ``False`` (naive reference): one ``complete`` per prompt,
        in row order, nothing shared.
    scheduler:
        Optional :class:`~repro.serving.BatchingScheduler`; when set,
        cache misses are submitted to it instead of being dispatched as a
        direct ``complete_batch`` (the scheduler coalesces and combines).
    """

    def __init__(
        self,
        provider: Optional["CompletionProvider"] = None,
        *,
        cache: Optional["SemanticCache"] = None,
        model: str = DEFAULT_SEMANTIC_MODEL,
        batch: bool = True,
        scheduler: Optional["BatchingScheduler"] = None,
        call_overhead_ms: float = CALL_OVERHEAD_MS,
        per_item_ms: float = PER_ITEM_MS,
    ) -> None:
        self._provider = provider
        self._cache = cache
        self.model = model
        self.batch = batch
        self.scheduler = scheduler
        self.call_overhead_ms = call_overhead_ms
        self.per_item_ms = per_item_ms
        self.stats = SemanticStats()

    @classmethod
    def naive(
        cls,
        provider: Optional["CompletionProvider"] = None,
        *,
        model: str = DEFAULT_SEMANTIC_MODEL,
    ) -> "SemanticRuntime":
        """The per-row reference evaluator: no batching, no cache."""
        return cls(provider, model=model, batch=False)

    # ---------------------------------------------------------- construction

    @property
    def provider(self) -> "CompletionProvider":
        if self._provider is None:
            from repro.llm.provider import make_client

            self._provider = make_client(model=self.model)
        return self._provider

    @property
    def cache(self) -> Optional["SemanticCache"]:
        if not self.batch:
            return self._cache
        if self._cache is None:
            from repro.core.cache import SemanticCache

            # Exact-reuse tiers: at threshold 1.0 the cache degenerates to
            # exact matching, which is what the bit-equivalence guarantee
            # requires (see module docstring).
            self._cache = SemanticCache(
                capacity=4096, reuse_threshold=1.0, augment_threshold=1.0
            )
        return self._cache

    def hit_rate(self) -> float:
        """Observed cache hit rate — the planner's discount estimate."""
        cache = self._cache
        return cache.stats.hit_rate if cache is not None else 0.0

    # ------------------------------------------------------------- answering

    def answer(self, prompt: str) -> str:
        """Answer one prompt (per-row path; hits the cache when batched)."""
        return self.answer_many([prompt])[0]

    def prefetch(self, prompts: Sequence[str]) -> None:
        """Set-at-a-time entry point: warm the cache for ``prompts`` with
        (at most) one provider batch. No-op in naive mode."""
        if self.batch and prompts:
            self.answer_many(list(prompts))

    def answer_many(self, prompts: List[str]) -> List[str]:
        self.stats.prompts += len(prompts)
        if not self.batch:
            return [self._complete_one(p) for p in prompts]

        cache = self.cache
        assert cache is not None
        answers: Dict[str, str] = {}
        misses: List[str] = []
        for prompt in prompts:
            if prompt in answers or prompt in misses:
                continue  # in-flight dedupe: identical prompts, one answer
            lookup = cache.lookup(prompt)
            if lookup.tier == "reuse" and lookup.entry is not None:
                answers[prompt] = lookup.entry.response
                self.stats.cache_hits += 1
            else:
                misses.append(prompt)
        if misses:
            for prompt, completion in zip(misses, self._dispatch(misses)):
                answers[prompt] = completion.text
                cache.put(prompt, completion.text, cost=completion.cost)
        return [answers[p] for p in prompts]

    def _dispatch(self, misses: List[str]):
        """One provider round-trip for the deduped cache misses."""
        if self.scheduler is not None:
            futures = [self.scheduler.submit(p, model=self.model) for p in misses]
            self._charge(len(misses), batched=len(misses) > 1)
            return [f.result() for f in futures]
        if len(misses) > 1:
            from repro.serving.scheduler import shared_prefix

            prefix = shared_prefix(misses)
            completions = self.provider.complete_batch(
                prefix, [p[len(prefix) :] for p in misses], model=self.model
            )
            self._charge(len(misses), batched=True)
            return completions
        self._charge(1, batched=False)
        return [self.provider.complete(misses[0], model=self.model)]

    def _complete_one(self, prompt: str) -> str:
        completion = self.provider.complete(prompt, model=self.model)
        self._charge(1, batched=False)
        return completion.text

    def _charge(self, items: int, batched: bool) -> None:
        self.stats.provider_calls += 1
        self.stats.provider_items += items
        if batched:
            self.stats.batches += 1
        self.stats.simulated_ms += self.call_overhead_ms + self.per_item_ms * items

    # --------------------------------------------------------------- metrics

    def snapshot(self) -> _StatsSnapshot:
        s = self.stats
        return _StatsSnapshot(
            s.prompts,
            s.provider_calls,
            s.provider_items,
            s.batches,
            s.cache_hits,
            s.simulated_ms,
        )

    def delta(self, since: _StatsSnapshot) -> SemanticStats:
        s = self.stats
        return SemanticStats(
            prompts=s.prompts - since.prompts,
            provider_calls=s.provider_calls - since.provider_calls,
            provider_items=s.provider_items - since.provider_items,
            batches=s.batches - since.batches,
            cache_hits=s.cache_hits - since.cache_hits,
            simulated_ms=s.simulated_ms - since.simulated_ms,
        )
