"""repro.sqldb — a from-scratch in-memory relational database engine.

This substrate exists because the paper's scenarios repeatedly need a real
DBMS to execute against: validating generated SQL (Section II-A1), measuring
NL2SQL execution accuracy (Table II), running NL2Transaction sequences
(Section II-B1), computing table statistics for table understanding
(Section II-C2) and serving as the relational half of the "LLM as database"
application (Section II-D2).

Supported dialect surface
-------------------------
* ``CREATE TABLE`` / ``DROP TABLE`` with INTEGER, REAL, TEXT, BOOLEAN columns,
  ``PRIMARY KEY`` and ``NOT NULL`` constraints.
* ``INSERT`` (VALUES lists and ``INSERT ... SELECT``), ``UPDATE``, ``DELETE``.
* ``SELECT`` with ``DISTINCT``, multi-way ``JOIN`` (inner/left) with ``ON``,
  ``WHERE``, ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``/``OFFSET``,
  column and table aliases, and set operations ``UNION [ALL]``,
  ``INTERSECT``, ``EXCEPT``.
* Scalar, ``IN`` and ``EXISTS`` subqueries, including correlated ones.
* Aggregates ``COUNT/SUM/AVG/MIN/MAX`` (with ``DISTINCT``), scalar functions
  (``UPPER``, ``LOWER``, ``LENGTH``, ``ABS``, ``ROUND``, ``SUBSTR``,
  ``COALESCE``, ``CAST``-free coercions), ``LIKE``, ``BETWEEN``, ``IS NULL``,
  ``CASE WHEN``.
* Transactions: ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` with full-state
  snapshots (sufficient for the single-threaded NL2Transaction scenario).
* Semantic operators (Section II-D2, "LLM as database"): row predicates
  ``SEMANTIC_FILTER(col, 'predicate text')``, entity joins
  ``a SEMANTIC_JOIN b ON MATCHES(a.x, b.y)``, and scalar LLM UDFs
  ``LLM_CLASSIFY(col, 'label', ...)`` / ``LLM_EXTRACT(col, 'field')`` —
  evaluated set-at-a-time through a batched, cached
  :class:`~repro.sqldb.semantic.SemanticRuntime`, planned by
  :func:`~repro.sqldb.planner.optimize_semantic` so relational work runs
  before LLM work, with rows bit-identical to naive per-row evaluation.

Quick example
-------------
>>> from repro.sqldb import Database
>>> db = Database()
>>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
>>> _ = db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
>>> db.execute("SELECT COUNT(*) FROM t").rows
[(2,)]
"""

from repro.sqldb.catalog import Column, Table, TableSchema
from repro.sqldb.database import Database, Result
from repro.sqldb.parser import parse_expression, parse_sql, parse_statement
from repro.sqldb.planner import (
    EstimatedCost,
    SemanticOpCost,
    explain,
    estimate_cost,
    optimize_semantic,
    query_features,
    select_contains_semantic,
)
from repro.sqldb.semantic import SemanticRuntime, SemanticStats
from repro.sqldb.types import SQLType

__all__ = [
    "Column",
    "Database",
    "EstimatedCost",
    "Result",
    "SQLType",
    "SemanticOpCost",
    "SemanticRuntime",
    "SemanticStats",
    "Table",
    "TableSchema",
    "estimate_cost",
    "explain",
    "optimize_semantic",
    "parse_expression",
    "parse_sql",
    "parse_statement",
    "query_features",
    "select_contains_semantic",
]
