"""SQL lexer: turns SQL text into a token stream for the parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS DISTINCT ALL
    JOIN INNER LEFT RIGHT OUTER CROSS ON AND OR NOT IN EXISTS BETWEEN LIKE
    IS NULL TRUE FALSE UNION INTERSECT EXCEPT ASC DESC
    INSERT INTO VALUES UPDATE SET DELETE CREATE TABLE DROP IF PRIMARY KEY
    BEGIN COMMIT ROLLBACK TRANSACTION CASE WHEN THEN ELSE END CAST
    SEMANTIC_FILTER SEMANTIC_JOIN MATCHES LLM_CLASSIFY LLM_EXTRACT
    """.split()
)


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: object
    text: str
    pos: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names


_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on invalid input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # Line comment.
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        # String literal with '' escape.
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            yield Token(TokenType.STRING, "".join(parts), sql[i : j + 1], i)
            i = j + 1
            continue
        # Quoted identifier.
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise SQLSyntaxError(f"unterminated quoted identifier at {i}")
            yield Token(TokenType.IDENT, sql[i + 1 : j], sql[i : j + 1], i)
            i = j + 1
            continue
        # Number literal.
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    seen_dot = True
                j += 1
            # Scientific notation.
            if j < n and sql[j] in "eE":
                k = j + 1
                if k < n and sql[k] in "+-":
                    k += 1
                if k < n and sql[k].isdigit():
                    seen_dot = True
                    j = k
                    while j < n and sql[j].isdigit():
                        j += 1
            text = sql[i:j]
            value: object = float(text) if seen_dot else int(text)
            yield Token(TokenType.NUMBER, value, text, i)
            i = j
            continue
        # Identifier or keyword.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            text = sql[i:j]
            upper = text.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, upper, i)
            else:
                yield Token(TokenType.IDENT, text, text, i)
            i = j
            continue
        # Multi-char then single-char operators.
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                yield Token(TokenType.OPERATOR, op, op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, ch, i)
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    yield Token(TokenType.EOF, None, "", n)
