"""Plan inspection and an analytic cost model for SELECT statements.

The cost model serves two purposes in the reproduction:

* ``EXPLAIN``-style plan rendering for debugging generated SQL (Fig 2);
* a deterministic "execution time" oracle: the training-data generation
  experiment (Fig 3 / Section II-A2) needs ⟨query, execution_time⟩ pairs, and
  the paper's authors measured a real DBMS. We substitute an analytic cost
  model over table statistics — the prediction task (learn execution time
  from query features) is preserved because the mapping is non-trivial but
  learnable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog
from repro.sqldb.parser import parse_statement


@dataclass(frozen=True)
class EstimatedCost:
    """Breakdown of the analytic cost model for one SELECT."""

    scan_rows: float
    join_rows: float
    sort_rows: float
    group_rows: float
    subquery_cost: float
    total_ms: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "scan_rows": self.scan_rows,
            "join_rows": self.join_rows,
            "sort_rows": self.sort_rows,
            "group_rows": self.group_rows,
            "subquery_cost": self.subquery_cost,
            "total_ms": self.total_ms,
        }


# Calibration constants (ms per processed row, per phase). Arbitrary but
# fixed: the learning task only needs a stable, feature-dependent target.
_SCAN_MS = 0.0005
_JOIN_MS = 0.0020
_SORT_MS = 0.0008
_GROUP_MS = 0.0010
_BASE_MS = 0.05


def _as_select(query: Union[str, ast.Select]) -> ast.Select:
    if isinstance(query, ast.Select):
        return query
    stmt = parse_statement(query)
    if not isinstance(stmt, ast.Select):
        raise TypeError("cost estimation requires a SELECT statement")
    return stmt


def _source_tables(source: Optional[ast.TableRef]) -> List[ast.TableName]:
    if source is None:
        return []
    if isinstance(source, ast.TableName):
        return [source]
    if isinstance(source, ast.SubquerySource):
        return _source_tables(source.select.source)
    if isinstance(source, ast.Join):
        return _source_tables(source.left) + _source_tables(source.right)
    return []


def _collect_subqueries(select: ast.Select) -> List[ast.Select]:
    out: List[ast.Select] = []
    exprs: List[ast.Expr] = [i.expr for i in select.items]
    if select.where is not None:
        exprs.append(select.where)
    if select.having is not None:
        exprs.append(select.having)
    for expr in exprs:
        for node in ast.walk_expr(expr):
            if isinstance(node, (ast.InSelect, ast.Exists, ast.ScalarSubquery)):
                out.append(node.select)
    if select.source is not None:
        stack: List[ast.TableRef] = [select.source]
        while stack:
            ref = stack.pop()
            if isinstance(ref, ast.SubquerySource):
                out.append(ref.select)
            elif isinstance(ref, ast.Join):
                stack.extend((ref.left, ref.right))
    for set_op in select.set_ops:
        out.append(set_op.select)
    return out


def _predicate_count(select: ast.Select) -> int:
    if select.where is None:
        return 0
    count = 0
    for node in ast.walk_expr(select.where):
        if isinstance(node, (ast.Binary,)) and node.op in ("=", "<>", "<", "<=", ">", ">="):
            count += 1
        elif isinstance(node, (ast.Like, ast.Between, ast.InList, ast.IsNull)):
            count += 1
    return count


def estimate_cost(query: Union[str, ast.Select], catalog: Catalog) -> EstimatedCost:
    """Estimate the execution cost of ``query`` against ``catalog``.

    Selectivity model: each conjunct predicate keeps 40% of rows; joins are
    assumed key/foreign-key (output = max input side); GROUP BY reduces to
    the product of distinct counts capped by input size.
    """
    select = _as_select(query)
    tables = _source_tables(select.source)
    sizes = []
    for t in tables:
        if catalog.has(t.name):
            sizes.append(max(len(catalog.get(t.name)), 1))
        else:
            sizes.append(100)  # Unknown table: nominal size.

    scan_rows = float(sum(sizes))
    if len(sizes) >= 2:
        # Nested-loop pair cost, left-deep.
        join_rows = 0.0
        acc = float(sizes[0])
        for size in sizes[1:]:
            join_rows += acc * size
            acc = max(acc, float(size))
        out_rows = acc
    else:
        join_rows = 0.0
        out_rows = scan_rows

    selectivity = 0.4 ** _predicate_count(select)
    out_rows *= selectivity

    sort_rows = out_rows if select.order_by else 0.0
    group_rows = out_rows if (select.group_by or select.having) else 0.0

    subquery_cost = 0.0
    for sub in _collect_subqueries(select):
        subquery_cost += estimate_cost(sub, catalog).total_ms

    total = (
        _BASE_MS
        + scan_rows * _SCAN_MS
        + join_rows * _JOIN_MS
        + sort_rows * _SORT_MS
        + group_rows * _GROUP_MS
        + subquery_cost
    )
    return EstimatedCost(
        scan_rows=scan_rows,
        join_rows=join_rows,
        sort_rows=sort_rows,
        group_rows=group_rows,
        subquery_cost=subquery_cost,
        total_ms=round(total, 6),
    )


def query_features(query: Union[str, ast.Select], catalog: Optional[Catalog] = None) -> Dict[str, float]:
    """Extract numeric features of a SELECT for learned cost models.

    These are the features the paper's ⟨query, execution_time⟩ generation
    scenario (Fig 3) exposes to the LLM via the prompt.
    """
    select = _as_select(query)
    tables = _source_tables(select.source)
    subqueries = _collect_subqueries(select)
    features: Dict[str, float] = {
        "num_tables": float(len(tables)),
        "num_joins": float(max(len(tables) - 1, 0)),
        "num_predicates": float(_predicate_count(select)),
        "num_subqueries": float(len(subqueries)),
        "has_group_by": 1.0 if select.group_by else 0.0,
        "has_order_by": 1.0 if select.order_by else 0.0,
        "has_distinct": 1.0 if select.distinct else 0.0,
        "num_output_columns": float(len(select.items)),
        "has_limit": 1.0 if select.limit is not None else 0.0,
        "num_aggregates": float(
            sum(1 for i in select.items if ast.contains_aggregate(i.expr))
        ),
    }
    if catalog is not None:
        total = sum(len(catalog.get(t.name)) for t in tables if catalog.has(t.name))
        features["total_input_rows"] = float(total)
    return features


def explain(query: Union[str, ast.Select], catalog: Catalog) -> str:
    """Render a simple textual plan with cost annotations."""
    select = _as_select(query)
    cost = estimate_cost(select, catalog)
    lines: List[str] = [f"SELECT (est {cost.total_ms:.3f} ms)"]

    def render_source(source: Optional[ast.TableRef], depth: int) -> None:
        pad = "  " * depth
        if source is None:
            lines.append(f"{pad}NO TABLE")
            return
        if isinstance(source, ast.TableName):
            rows = len(catalog.get(source.name)) if catalog.has(source.name) else -1
            lines.append(f"{pad}SCAN {source.name} ({rows} rows)")
        elif isinstance(source, ast.SubquerySource):
            lines.append(f"{pad}SUBQUERY AS {source.alias}")
            render_source(source.select.source, depth + 1)
        elif isinstance(source, ast.Join):
            lines.append(f"{pad}{source.kind} JOIN")
            render_source(source.left, depth + 1)
            render_source(source.right, depth + 1)

    render_source(select.source, 1)
    if select.where is not None:
        lines.append(f"  FILTER {select.where}")
    if select.group_by:
        lines.append("  GROUP BY " + ", ".join(str(e) for e in select.group_by))
    if select.order_by:
        lines.append("  ORDER BY " + ", ".join(str(o) for o in select.order_by))
    if select.limit is not None:
        lines.append(f"  LIMIT {select.limit}")
    return "\n".join(lines)
