"""Plan inspection and an analytic cost model for SELECT statements.

The cost model serves three purposes in the reproduction:

* ``EXPLAIN``-style plan rendering for debugging generated SQL (Fig 2);
* a deterministic "execution time" oracle: the training-data generation
  experiment (Fig 3 / Section II-A2) needs ⟨query, execution_time⟩ pairs, and
  the paper's authors measured a real DBMS. We substitute an analytic cost
  model over table statistics — the prediction task (learn execution time
  from query features) is preserved because the mapping is non-trivial but
  learnable;
* driving the semantic-operator rewrite (:func:`optimize_semantic`): one
  LLM call costs orders of magnitude more than a row scan
  (:data:`_SEMANTIC_CALL_MS` vs :data:`_SCAN_MS`), so the planner pushes
  cheap relational conjuncts ahead of LLM predicates and below joins — the
  estimated LLM call count is proportional to the rows that survive the
  relational work, discounted by the expected semantic-cache hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog
from repro.sqldb.parser import parse_statement
from repro.sqldb.semantic import CALL_OVERHEAD_MS, PER_ITEM_MS


@dataclass(frozen=True)
class EstimatedCost:
    """Breakdown of the analytic cost model for one SELECT."""

    scan_rows: float
    join_rows: float
    sort_rows: float
    group_rows: float
    subquery_cost: float
    total_ms: float
    semantic_calls: float = 0.0
    semantic_ms: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "scan_rows": self.scan_rows,
            "join_rows": self.join_rows,
            "sort_rows": self.sort_rows,
            "group_rows": self.group_rows,
            "subquery_cost": self.subquery_cost,
            "total_ms": self.total_ms,
            "semantic_calls": self.semantic_calls,
            "semantic_ms": self.semantic_ms,
        }


@dataclass(frozen=True)
class SemanticOpCost:
    """Estimated LLM cost of one semantic operator in a plan."""

    kind: str  # 'filter' | 'join' | 'udf'
    label: str  # rendered operator, e.g. "SEMANTIC_FILTER(body, '...')"
    calls: float  # expected provider items after the cache discount
    ms: float  # batched dispatch estimate


# Calibration constants (ms per processed row, per phase). Arbitrary but
# fixed: the learning task only needs a stable, feature-dependent target.
_SCAN_MS = 0.0005
_JOIN_MS = 0.0020
_SORT_MS = 0.0008
_GROUP_MS = 0.0010
_BASE_MS = 0.05

# One LLM call is ~5 orders of magnitude above a row scan; a batched
# operator pays one dispatch overhead plus a per-item charge (mirroring
# SemanticRuntime's simulated-latency model).
_SEMANTIC_CALL_MS = CALL_OVERHEAD_MS
_SEMANTIC_ITEM_MS = PER_ITEM_MS

_SELECTIVITY = 0.4  # each predicate conjunct keeps 40% of rows


def _as_select(query: Union[str, ast.Select]) -> ast.Select:
    if isinstance(query, ast.Select):
        return query
    stmt = parse_statement(query)
    if not isinstance(stmt, ast.Select):
        raise TypeError("cost estimation requires a SELECT statement")
    return stmt


def _source_tables(source: Optional[ast.TableRef]) -> List[ast.TableName]:
    """The base tables this FROM clause scans *directly*. A FROM-subquery's
    inner tables are intentionally NOT included: they belong to the
    subquery, whose cost `_collect_subqueries` already charges — recursing
    here double-counted every FROM-subquery table."""
    if source is None:
        return []
    if isinstance(source, ast.TableName):
        return [source]
    if isinstance(source, ast.Join):
        return _source_tables(source.left) + _source_tables(source.right)
    return []


def _flat_refs(source: Optional[ast.TableRef]) -> List[ast.TableRef]:
    """The top-level FROM items (join-tree leaves), left to right."""
    if source is None:
        return []
    if isinstance(source, ast.Join):
        return _flat_refs(source.left) + _flat_refs(source.right)
    return [source]


def _ref_rows(ref: ast.TableRef, catalog: Catalog) -> float:
    """Estimated rows one FROM item feeds into the join tree."""
    if isinstance(ref, ast.TableName):
        if catalog.has(ref.name):
            return float(max(len(catalog.get(ref.name)), 1))
        return 100.0  # Unknown table: nominal size.
    if isinstance(ref, ast.SubquerySource):
        return _select_out_rows(ref.select, catalog)
    return 100.0


def _select_out_rows(select: ast.Select, catalog: Catalog) -> float:
    """Estimated output cardinality of a (sub)select."""
    sizes = [_ref_rows(r, catalog) for r in _flat_refs(select.source)]
    if not sizes:
        return 1.0
    acc = sizes[0]
    for size in sizes[1:]:
        acc = max(acc, size)
    acc *= _SELECTIVITY ** _predicate_count(select)
    if select.limit is not None:
        acc = min(acc, float(select.limit))
    return max(acc, 1.0)


def _collect_subqueries(select: ast.Select) -> List[ast.Select]:
    out: List[ast.Select] = []
    exprs: List[ast.Expr] = [i.expr for i in select.items]
    if select.where is not None:
        exprs.append(select.where)
    if select.having is not None:
        exprs.append(select.having)
    for expr in exprs:
        for node in ast.walk_expr(expr):
            if isinstance(node, (ast.InSelect, ast.Exists, ast.ScalarSubquery)):
                out.append(node.select)
    if select.source is not None:
        stack: List[ast.TableRef] = [select.source]
        while stack:
            ref = stack.pop()
            if isinstance(ref, ast.SubquerySource):
                out.append(ref.select)
            elif isinstance(ref, ast.Join):
                stack.extend((ref.left, ref.right))
    for set_op in select.set_ops:
        out.append(set_op.select)
    return out


def _is_predicate_conjunct(conjunct: ast.Expr) -> bool:
    """Does this top-level AND conjunct constrain rows at all?"""
    for node in ast.walk_expr(conjunct):
        if isinstance(node, ast.Binary) and node.op in ("=", "<>", "<", "<=", ">", ">="):
            return True
        if isinstance(node, (ast.Like, ast.Between, ast.InList, ast.IsNull)):
            return True
        if isinstance(node, (ast.SemanticFilter, ast.SemanticMatch)):
            return True
    return False


def _predicate_count(select: ast.Select) -> int:
    """Number of top-level AND conjuncts of WHERE that filter rows.

    Counting every comparison in the tree (the old behaviour) treated the
    branches of ``a = 1 OR b = 2`` as two independent conjuncts and
    squared the selectivity of a predicate that actually *widens* the
    filter; a disjunction is one conjunct however many comparisons it
    contains.
    """
    if select.where is None:
        return 0
    return sum(1 for c in ast.conjuncts(select.where) if _is_predicate_conjunct(c))


# ----------------------------------------------------------------- costing


def _batched_ms(calls: float) -> float:
    """Latency of one set-at-a-time dispatch of ``calls`` prompts."""
    if calls <= 0:
        return 0.0
    return _SEMANTIC_CALL_MS + calls * _SEMANTIC_ITEM_MS


def _node_kind(node: ast.Expr) -> str:
    if isinstance(node, ast.SemanticFilter):
        return "filter"
    if isinstance(node, ast.SemanticMatch):
        return "join"
    return "udf"


def _cost_detail(
    select: ast.Select, catalog: Catalog, hit_rate: float
) -> Tuple[EstimatedCost, List[SemanticOpCost]]:
    hit = min(max(hit_rate, 0.0), 1.0)
    ops: List[SemanticOpCost] = []

    def charge(node: ast.Expr, rows: float, kind: Optional[str] = None) -> None:
        calls = rows * (1.0 - hit)
        ops.append(
            SemanticOpCost(
                kind=kind or _node_kind(node),
                label=str(node),
                calls=calls,
                ms=_batched_ms(calls),
            )
        )

    def walk_source(source: Optional[ast.TableRef]) -> Tuple[float, float, float]:
        """Returns (out_rows, scan_rows, join_rows) for a FROM tree."""
        if source is None:
            return 0.0, 0.0, 0.0
        if isinstance(source, (ast.TableName, ast.SubquerySource)):
            rows = _ref_rows(source, catalog)
            return rows, rows, 0.0
        assert isinstance(source, ast.Join)
        l_out, l_scan, l_join = walk_source(source.left)
        r_out, r_scan, r_join = walk_source(source.right)
        pair = l_out * r_out
        if source.kind == "SEMANTIC" and source.on is not None:
            # Relational ON conjuncts prune pairs before the LLM sees them.
            on_conjuncts = ast.conjuncts(source.on)
            relational = sum(
                1
                for c in on_conjuncts
                if not ast.contains_semantic(c) and _is_predicate_conjunct(c)
            )
            candidates = pair * (_SELECTIVITY ** relational)
            for conjunct in on_conjuncts:
                if ast.contains_semantic(conjunct):
                    for node in ast.semantic_nodes(conjunct):
                        charge(node, candidates, kind="join")
        return max(l_out, r_out), l_scan + r_scan, l_join + r_join + pair

    out_rows, scan_rows, join_rows = walk_source(select.source)

    # WHERE conjuncts in *written* order: a semantic conjunct's LLM call
    # count is the rows that reach it, so reordering relational conjuncts
    # ahead of it genuinely lowers the estimate.
    rows = out_rows
    if select.where is not None:
        for conjunct in ast.conjuncts(select.where):
            if ast.contains_semantic(conjunct):
                for node in ast.semantic_nodes(conjunct):
                    charge(node, rows)
                rows *= _SELECTIVITY
            elif _is_predicate_conjunct(conjunct):
                rows *= _SELECTIVITY
    out_rows = rows

    # LLM expressions past WHERE run once per output row.
    post_where: List[ast.Expr] = [
        i.expr for i in select.items if not isinstance(i.expr, ast.Star)
    ]
    post_where.extend(select.group_by)
    if select.having is not None:
        post_where.append(select.having)
    post_where.extend(o.expr for o in select.order_by)
    for expr in post_where:
        for node in ast.semantic_nodes(expr):
            charge(node, out_rows)

    sort_rows = out_rows if select.order_by else 0.0
    group_rows = out_rows if (select.group_by or select.having) else 0.0

    subquery_cost = 0.0
    for sub in _collect_subqueries(select):
        subquery_cost += _cost_detail(sub, catalog, hit)[0].total_ms

    semantic_calls = sum(op.calls for op in ops)
    semantic_ms = sum(op.ms for op in ops)
    total = (
        _BASE_MS
        + scan_rows * _SCAN_MS
        + join_rows * _JOIN_MS
        + sort_rows * _SORT_MS
        + group_rows * _GROUP_MS
        + subquery_cost
        + semantic_ms
    )
    cost = EstimatedCost(
        scan_rows=scan_rows,
        join_rows=join_rows,
        sort_rows=sort_rows,
        group_rows=group_rows,
        subquery_cost=subquery_cost,
        total_ms=round(total, 6),
        semantic_calls=round(semantic_calls, 6),
        semantic_ms=round(semantic_ms, 6),
    )
    return cost, ops


def estimate_cost(
    query: Union[str, ast.Select],
    catalog: Catalog,
    semantic_hit_rate: float = 0.0,
) -> EstimatedCost:
    """Estimate the execution cost of ``query`` against ``catalog``.

    Selectivity model: each conjunct predicate keeps 40% of rows; joins are
    assumed key/foreign-key (output = max input side); GROUP BY reduces to
    the product of distinct counts capped by input size. Semantic operators
    charge one batched LLM dispatch sized by the rows that reach them,
    discounted by ``semantic_hit_rate`` (the expected semantic-cache hit
    rate).
    """
    return _cost_detail(_as_select(query), catalog, semantic_hit_rate)[0]


# ----------------------------------------------------- semantic plan rewrite


def select_contains_semantic(select: ast.Select) -> bool:
    """True if any part of the statement needs the LLM."""
    for expr in _select_exprs(select):
        if ast.contains_semantic(expr):
            return True
        for node in ast.walk_expr(expr):
            if isinstance(node, (ast.InSelect, ast.Exists, ast.ScalarSubquery)):
                if select_contains_semantic(node.select):
                    return True
    stack: List[ast.TableRef] = [select.source] if select.source is not None else []
    while stack:
        ref = stack.pop()
        if isinstance(ref, ast.Join):
            if ref.kind == "SEMANTIC":
                return True
            if ref.on is not None and ast.contains_semantic(ref.on):
                return True
            stack.extend((ref.left, ref.right))
        elif isinstance(ref, ast.SubquerySource):
            if select_contains_semantic(ref.select):
                return True
    return any(select_contains_semantic(s.select) for s in select.set_ops)


def _select_exprs(select: ast.Select) -> List[ast.Expr]:
    exprs = [i.expr for i in select.items if not isinstance(i.expr, ast.Star)]
    if select.where is not None:
        exprs.append(select.where)
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(select.group_by)
    exprs.extend(o.expr for o in select.order_by)
    return exprs


def _pushable_bindings(source: Optional[ast.TableRef]) -> Dict[str, ast.TableName]:
    """Base-table bindings a single-table predicate may be pushed into:
    reachable through INNER/CROSS/SEMANTIC joins, or the *left* side of a
    LEFT join (filtering the null-padded right side would change results).
    """
    out: Dict[str, ast.TableName] = {}

    def walk(ref: Optional[ast.TableRef], pushable: bool) -> None:
        if isinstance(ref, ast.Join):
            walk(ref.left, pushable)
            walk(ref.right, pushable and ref.kind != "LEFT")
        elif isinstance(ref, ast.TableName) and pushable:
            out[ref.binding.lower()] = ref

    walk(source, True)
    return out


def _column_owners(
    source: Optional[ast.TableRef], catalog: Catalog
) -> Tuple[Dict[str, Optional[str]], bool]:
    """Map unqualified column name -> owning binding (None if ambiguous).
    The second value is True when some FROM item's columns are unknown
    (subquery or uncataloged table) — unqualified references are then
    unresolvable and nothing unqualified may be pushed."""
    owners: Dict[str, Optional[str]] = {}
    opaque = False
    for leaf in _flat_refs(source):
        if isinstance(leaf, ast.TableName) and catalog.has(leaf.name):
            binding = leaf.binding.lower()
            for col in catalog.get(leaf.name).schema.column_names:
                key = col.lower()
                if key in owners and owners[key] != binding:
                    owners[key] = None
                else:
                    owners.setdefault(key, binding)
        else:
            opaque = True
    return owners, opaque


def _conjunct_binding(
    conjunct: ast.Expr,
    owners: Dict[str, Optional[str]],
    opaque: bool,
) -> Optional[str]:
    """The single binding this conjunct reads, or None when it reads zero
    or several bindings, contains a subquery, or cannot be resolved."""
    refs: List[ast.ColumnRef] = []
    for node in ast.walk_expr(conjunct):
        if isinstance(node, (ast.InSelect, ast.Exists, ast.ScalarSubquery)):
            return None  # correlated evaluation must stay above the join
        if isinstance(node, ast.ColumnRef):
            refs.append(node)
    if not refs:
        return None
    bindings = set()
    for ref in refs:
        if ref.table is not None:
            bindings.add(ref.table.lower())
        elif not opaque and owners.get(ref.name.lower()) is not None:
            bindings.add(owners[ref.name.lower()])
        else:
            return None
    return bindings.pop() if len(bindings) == 1 else None


def _push_into_source(
    source: ast.TableRef, pushed: Dict[str, List[ast.Expr]]
) -> ast.TableRef:
    def walk(ref: ast.TableRef, pushable: bool) -> ast.TableRef:
        if isinstance(ref, ast.Join):
            return replace(
                ref,
                left=walk(ref.left, pushable),
                right=walk(ref.right, pushable and ref.kind != "LEFT"),
            )
        if isinstance(ref, ast.TableName) and pushable:
            predicates = pushed.get(ref.binding.lower())
            if predicates:
                inner = ast.Select(
                    items=[ast.SelectItem(expr=ast.Star())],
                    source=ast.TableName(name=ref.name, alias=ref.alias),
                    where=ast.conjoin(list(predicates)),
                )
                return ast.SubquerySource(select=inner, alias=ref.binding)
        return ref

    return walk(source, True)


def optimize_semantic(select: ast.Select, catalog: Catalog) -> ast.Select:
    """Rewrite a semantic SELECT so relational work runs before LLM work.

    Two result-preserving transformations:

    1. **Conjunct reordering** — the top-level AND chain of WHERE is
       stably reordered with relational conjuncts first. WHERE accepts a
       row iff every conjunct is truthy, so order cannot change the row
       set; it only changes how many rows survive to each LLM predicate.
    2. **Predicate pushdown** — a relational conjunct reading exactly one
       base table is pushed below the joins into that table's scan
       (wrapping it in a filtered FROM-subquery), shrinking the pair sets
       a SEMANTIC_JOIN offers to the LLM. Pushing through INNER/CROSS/
       SEMANTIC joins and the left side of LEFT joins is sound; the right
       side of a LEFT join is left alone.

    Statements without semantic operators (and compound set-operation
    statements) are returned unchanged. The input is never mutated.
    """
    if select.set_ops or not select_contains_semantic(select):
        return select
    new_where = select.where
    new_source = select.source
    if select.where is not None:
        relational: List[ast.Expr] = []
        semantic: List[ast.Expr] = []
        for conjunct in ast.conjuncts(select.where):
            (semantic if ast.contains_semantic(conjunct) else relational).append(conjunct)
        if new_source is not None and relational:
            eligible = _pushable_bindings(new_source)
            owners, opaque = _column_owners(new_source, catalog)
            pushed: Dict[str, List[ast.Expr]] = {}
            kept: List[ast.Expr] = []
            for conjunct in relational:
                binding = _conjunct_binding(conjunct, owners, opaque)
                if binding is not None and binding in eligible:
                    pushed.setdefault(binding, []).append(conjunct)
                else:
                    kept.append(conjunct)
            if pushed:
                new_source = _push_into_source(new_source, pushed)
                relational = kept
        new_where = ast.conjoin(relational + semantic)
    return replace(select, where=new_where, source=new_source)


# ----------------------------------------------------------------- features


def query_features(query: Union[str, ast.Select], catalog: Optional[Catalog] = None) -> Dict[str, float]:
    """Extract numeric features of a SELECT for learned cost models.

    These are the features the paper's ⟨query, execution_time⟩ generation
    scenario (Fig 3) exposes to the LLM via the prompt.
    """
    select = _as_select(query)
    tables = _source_tables(select.source)
    subqueries = _collect_subqueries(select)
    semantic_ops = sum(len(ast.semantic_nodes(e)) for e in _select_exprs(select))
    if select.source is not None:
        stack: List[ast.TableRef] = [select.source]
        while stack:
            ref = stack.pop()
            if isinstance(ref, ast.Join):
                if ref.on is not None:
                    semantic_ops += len(ast.semantic_nodes(ref.on))
                stack.extend((ref.left, ref.right))
    features: Dict[str, float] = {
        "num_tables": float(len(tables)),
        "num_joins": float(max(len(tables) - 1, 0)),
        "num_predicates": float(_predicate_count(select)),
        "num_subqueries": float(len(subqueries)),
        "has_group_by": 1.0 if select.group_by else 0.0,
        "has_order_by": 1.0 if select.order_by else 0.0,
        "has_distinct": 1.0 if select.distinct else 0.0,
        "num_output_columns": float(len(select.items)),
        "has_limit": 1.0 if select.limit is not None else 0.0,
        "num_aggregates": float(
            sum(1 for i in select.items if ast.contains_aggregate(i.expr))
        ),
        "num_semantic_ops": float(semantic_ops),
    }
    if catalog is not None:
        total = sum(len(catalog.get(t.name)) for t in tables if catalog.has(t.name))
        features["total_input_rows"] = float(total)
    return features


# ------------------------------------------------------------------ explain


def explain(
    query: Union[str, ast.Select],
    catalog: Catalog,
    semantic_hit_rate: float = 0.0,
    optimize: bool = True,
) -> str:
    """Render a simple textual plan with cost annotations.

    Semantic statements are first passed through :func:`optimize_semantic`
    (unless ``optimize=False``), so the rendered plan is the one the
    engine actually runs; each semantic operator gets a line with its
    estimated LLM call count and latency under the assumed cache hit rate.
    """
    select = _as_select(query)
    if optimize and select_contains_semantic(select):
        select = optimize_semantic(select, catalog)
    cost, ops = _cost_detail(select, catalog, semantic_hit_rate)
    lines: List[str] = [f"SELECT (est {cost.total_ms:.3f} ms)"]
    if ops:
        lines.append(
            f"  LLM COST {cost.semantic_calls:.1f} calls, {cost.semantic_ms:.1f} ms "
            f"(assuming {semantic_hit_rate:.0%} cache hits)"
        )

    def render_source(source: Optional[ast.TableRef], depth: int) -> None:
        pad = "  " * depth
        if source is None:
            lines.append(f"{pad}NO TABLE")
            return
        if isinstance(source, ast.TableName):
            rows = len(catalog.get(source.name)) if catalog.has(source.name) else -1
            lines.append(f"{pad}SCAN {source.name} ({rows} rows)")
        elif isinstance(source, ast.SubquerySource):
            lines.append(f"{pad}SUBQUERY AS {source.alias}")
            render_source(source.select.source, depth + 1)
            if source.select.where is not None:
                lines.append(f"{pad}  FILTER {source.select.where}")
        elif isinstance(source, ast.Join):
            lines.append(f"{pad}{source.kind} JOIN")
            render_source(source.left, depth + 1)
            render_source(source.right, depth + 1)

    render_source(select.source, 1)
    if select.where is not None:
        lines.append(f"  FILTER {select.where}")
    if select.group_by:
        lines.append("  GROUP BY " + ", ".join(str(e) for e in select.group_by))
    if select.order_by:
        lines.append("  ORDER BY " + ", ".join(str(o) for o in select.order_by))
    if select.limit is not None:
        lines.append(f"  LIMIT {select.limit}")
    for op in ops:
        lines.append(
            f"  SEMANTIC {op.kind.upper()} {op.label} "
            f"(est {op.calls:.1f} LLM calls, {op.ms:.1f} ms)"
        )
    return "\n".join(lines)
