"""SQL value types and coercion rules for the relational engine.

Values are represented with plain Python objects: ``int``, ``float``, ``str``,
``bool`` and ``None`` (SQL NULL). This module centralizes the typing rules so
that the parser, evaluator and catalog agree on them.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import SQLTypeError


class SQLType(enum.Enum):
    """Column types supported by :mod:`repro.sqldb`."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "SQLType":
        """Resolve a type name as written in SQL (case-insensitive, with
        common synonyms such as ``INT``, ``FLOAT``, ``VARCHAR``, ``BOOL``)."""
        upper = name.strip().upper()
        synonyms = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        # Strip a parenthesized length, e.g. VARCHAR(255).
        if "(" in upper:
            upper = upper.split("(", 1)[0].strip()
        if upper not in synonyms:
            raise SQLTypeError(f"unknown column type: {name!r}")
        return synonyms[upper]


def coerce(value: object, sql_type: SQLType) -> Optional[object]:
    """Coerce a Python value to the storage representation of ``sql_type``.

    NULL (None) passes through unchanged. Raises :class:`SQLTypeError` when
    the value cannot be represented losslessly enough for the engine's needs.
    """
    if value is None:
        return None
    try:
        if sql_type is SQLType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
        elif sql_type is SQLType.REAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value)
        elif sql_type is SQLType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, bool):
                return "TRUE" if value else "FALSE"
            if isinstance(value, (int, float)):
                return str(value)
        elif sql_type is SQLType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
    except (TypeError, ValueError) as exc:
        raise SQLTypeError(f"cannot coerce {value!r} to {sql_type.value}") from exc
    raise SQLTypeError(f"cannot coerce {value!r} to {sql_type.value}")


def infer_type(value: object) -> SQLType:
    """Infer the SQL type of a Python literal (bool before int: bool is int)."""
    if isinstance(value, bool):
        return SQLType.BOOLEAN
    if isinstance(value, int):
        return SQLType.INTEGER
    if isinstance(value, float):
        return SQLType.REAL
    if isinstance(value, str):
        return SQLType.TEXT
    raise SQLTypeError(f"unsupported literal type: {type(value).__name__}")


def sort_key(value: object) -> tuple:
    """Total-order sort key across heterogeneous SQL values.

    NULLs sort first, then booleans, numbers, and text — a fixed convention
    so that ORDER BY is deterministic even on mixed columns.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, str(value))
