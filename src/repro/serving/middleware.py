"""The middleware layers of the serving stack.

Each middleware both consumes and implements
:class:`~repro.llm.provider.CompletionProvider`, so layers compose in any
order over any terminal provider (normally a raw
:class:`~repro.llm.client.LLMClient`). Layers adapt the Section III
optimizations that previously each wrapped the client ad hoc:

* :class:`SemanticCacheMiddleware` — the semantic cache (III-C) in front of
  everything: *reuse* hits short-circuit the rest of the stack, *augment*
  hits enrich the prompt with the cached pair as an extra example.
* :class:`CascadeMiddleware` — the cheap→expensive model cascade (III-B1);
  requests that name an explicit model bypass routing.
* :class:`RetryMiddleware` — output validation feedback (III-E):
  low-confidence or validator-rejected completions are re-drawn
  deterministically through a seed-shifted sibling provider.
* :class:`BudgetMiddleware` — a dollar ceiling across the whole stack
  (III-B's cost control at the serving seam rather than per client).
* :class:`MetricsMiddleware` — the terminal observer recording every
  request that actually reaches the LLM service.

All layers write their counters into one shared
:class:`~repro.serving.stats.ServiceStats`, holding its lock around each
update so a stack can be driven from many threads at once (see
:mod:`repro.serving.scheduler`). Layer-local mutable state (the cache
middleware's replay store, the budget ledger) carries its own lock; the
hot structures underneath — :class:`~repro.core.cache.SemanticCache`, the
admission predictor, the embedding memo, the usage meter — are locked
where they live.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.cache import SemanticCache
from repro.core.cascade import DEFAULT_CHAIN, CascadeClient
from repro.errors import BudgetExceededError
from repro.llm.client import Completion, Usage
from repro.llm.provider import CompletionProvider
from repro.serving.stats import ServiceStats


def last_question_key(prompt: str) -> str:
    """Cache key extractor for the templated prompts of
    :mod:`repro.core.prompts.templates`: the trailing ``Question: ...``
    line, i.e. the bare question without context passages or examples.
    Falls back to the whole prompt when no marker is present."""
    marker = "\nQuestion: "
    if marker in prompt:
        return prompt.rsplit(marker, 1)[-1]
    if prompt.startswith("Question: "):
        return prompt[len("Question: "):]
    return prompt


class Middleware:
    """Base layer: delegates the full provider surface to ``inner``."""

    def __init__(self, inner: CompletionProvider, stats: Optional[ServiceStats] = None) -> None:
        self.inner = inner
        self.stats = stats if stats is not None else ServiceStats()

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        return self.inner.complete(prompt, model=model)

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        return self.inner.complete_batch(shared_prefix, items, model=model)

    def embed(self, text: str) -> np.ndarray:
        return self.inner.embed(text)

    def begin_batch(self, prompts: Sequence[str], model: Optional[str] = None) -> None:
        """Amortization hook: a scheduler announces the prompts of a batch
        it is about to complete one by one. Layers may precompute shared
        work (batched embeddings, cache probes) for the *calling thread*;
        the per-request ``complete`` results must be unchanged. Forwarded
        down the stack; pure optimization, never required."""
        begin = getattr(self.inner, "begin_batch", None)
        if begin is not None:
            begin(prompts, model)

    def end_batch(self) -> None:
        """Release any per-thread state installed by :meth:`begin_batch`."""
        end = getattr(self.inner, "end_batch", None)
        if end is not None:
            end()

    def reseeded(self, offset: int) -> "Middleware":
        """A sibling layer over the seed-shifted inner provider. Mutable
        layer state (cache entries, counters) is shared, not copied."""
        clone = copy.copy(self)
        if hasattr(self.inner, "reseeded"):
            clone.inner = self.inner.reseeded(offset)
        return clone


class SemanticCacheMiddleware(Middleware):
    """The semantic cache as a stack layer (adapts ``core/cache.py``).

    A *reuse* hit returns the cached completion with zero cost and latency,
    never touching the layers below. An *augment* hit prepends the cached
    (query, response) pair to the prompt as an extra example — the paper's
    case (2) — and forwards. ``key_fn`` maps the full prompt to the cache
    key (e.g. :func:`last_question_key` to make matching robust to prompt
    framing); it defaults to the identity.

    Batched completions bypass the cache: a shared-prefix batch is already
    a cost optimization and its items are new by construction.
    """

    def __init__(
        self,
        inner: CompletionProvider,
        cache: Optional[SemanticCache] = None,
        key_fn: Optional[Callable[[str], str]] = None,
        cache_kind: str = "original",
        stats: Optional[ServiceStats] = None,
    ) -> None:
        super().__init__(inner, stats)
        self.cache = cache if cache is not None else SemanticCache()
        self.key_fn = key_fn
        self.cache_kind = cache_kind
        # Original completions by cache key, so reuse hits can replay the
        # full Completion (model, confidence, engine) at zero cost. Guarded
        # by its own lock: pruning rebuilds the dict.
        self._completions: Dict[str, Completion] = {}
        self._replay_lock = threading.Lock()

    def begin_batch(self, prompts: Sequence[str], model: Optional[str] = None) -> None:
        """Precompute this batch's cache probes in one matrix pass.

        All batch keys are embedded with a single ``embed_batch`` sweep and
        scored against the cache index with one matrix-matrix product; the
        per-request ``complete`` calls on this thread then reuse the
        precomputed winners (merged exactly with any concurrent inserts —
        see :meth:`SemanticCache.batch_probe`). The admission predictor's
        embedder memo is warmed the same way, so its later per-key embeds
        are memo hits. Results are bit-identical to unbatched serving."""
        keys = [
            self.key_fn(p) if self.key_fn is not None else p for p in prompts
        ]
        self.cache.batch_probe(keys)
        if self.cache.admission is not None:
            self.cache.admission.embedder.embed_batch(list(dict.fromkeys(keys)))
        super().begin_batch(prompts, model)

    def end_batch(self) -> None:
        self.cache.end_probe()
        super().end_batch()

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        key = self.key_fn(prompt) if self.key_fn is not None else prompt
        probe_start = time.perf_counter()
        lookup = self.cache.lookup(key)
        probe_ms = (time.perf_counter() - probe_start) * 1000.0
        with self.stats.lock:
            self.stats.cache_lookups += 1
            self.stats.cache_lookup_ms += probe_ms
            if lookup.tier == "reuse" and lookup.entry is not None:
                self.stats.cache_reuse_hits += 1
                self.stats.cache_cost_saved += lookup.entry.cost_of_miss
            elif lookup.tier == "augment" and lookup.entry is not None:
                self.stats.cache_augment_hits += 1
            else:
                self.stats.cache_misses += 1
        if lookup.tier == "reuse" and lookup.entry is not None:
            return self._replay(lookup.entry.key, lookup.entry.response, lookup.similarity)
        effective_prompt = prompt
        if lookup.tier == "augment" and lookup.entry is not None:
            effective_prompt = (
                f"Example: Question: {lookup.entry.key} Answer: {lookup.entry.response}\n"
                + prompt
            )
        completion = self.inner.complete(effective_prompt, model=model)
        put_start = time.perf_counter()
        admitted = self.cache.put(key, completion.text, kind=self.cache_kind, cost=completion.cost)
        put_ms = (time.perf_counter() - put_start) * 1000.0
        with self.stats.lock:
            self.stats.cache_put_ms += put_ms
        if admitted:
            with self._replay_lock:
                self._completions[key] = completion
                self._prune_replay_store()
        return completion

    def _replay(self, key: str, response: str, similarity: float) -> Completion:
        marker = {"tier": "reuse", "similarity": round(similarity, 6)}
        original = self._completions.get(key)
        if original is not None:
            metadata = dict(original.metadata)
            metadata["serving.cache"] = marker
            return original.with_usage(
                Usage(prompt_tokens=0, completion_tokens=0),
                0.0,
                latency_ms=0.0,
                metadata=metadata,
            )
        # The source completion was evicted from the replay store (or the
        # entry predates this layer): synthesize a minimal completion.
        return Completion(
            text=response,
            model="cache",
            usage=Usage(prompt_tokens=0, completion_tokens=0),
            cost=0.0,
            latency_ms=0.0,
            confidence=1.0,
            engine="cache",
            metadata={"serving.cache": marker},
        )

    def _prune_replay_store(self) -> None:
        # Keep the replay store aligned with the cache after evictions.
        # Callers hold _replay_lock; the rebuilt dict is swapped in whole so
        # lock-free readers (_replay) always see a consistent mapping.
        if len(self._completions) > 2 * self.cache.capacity:
            self._completions = {
                key: completion
                for key, completion in self._completions.items()
                if key in self.cache.entries
            }


class CascadeMiddleware(Middleware):
    """The LLM cascade as a stack layer (adapts ``core/cascade.py``).

    Default-model requests route through the cheap→expensive chain exactly
    like :class:`~repro.core.cascade.CascadeClient`; the returned completion
    is the accepted one with usage, cost and latency summed over every
    attempted stage, so outer layers (budget, cache) account the cascade's
    true price. Requests naming an explicit model bypass routing.
    """

    def __init__(
        self,
        inner: CompletionProvider,
        chain: Sequence[str] = DEFAULT_CHAIN,
        decision_models: Optional[Sequence[object]] = None,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        super().__init__(inner, stats)
        self._cascade = CascadeClient(inner, chain=chain, decision_models=decision_models)

    @property
    def chain(self) -> List[str]:
        return self._cascade.chain

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        if model is not None:
            return self.inner.complete(prompt, model=model)
        result = self._cascade.complete(prompt)
        with self.stats.lock:
            self.stats.cascade_requests += 1
            self.stats.escalations += result.escalations
            self.stats.answered_by[result.model] = (
                self.stats.answered_by.get(result.model, 0) + 1
            )
        final = result.final
        metadata = dict(final.metadata)
        metadata["serving.cascade"] = {
            "escalations": result.escalations,
            "attempts": [attempt.model for attempt in result.attempts],
        }
        return final.with_usage(
            Usage(
                prompt_tokens=sum(a.usage.prompt_tokens for a in result.attempts),
                completion_tokens=sum(a.usage.completion_tokens for a in result.attempts),
            ),
            result.cost,
            latency_ms=result.latency_ms,
            metadata=metadata,
        )

    def reseeded(self, offset: int) -> "CascadeMiddleware":
        clone = super().reseeded(offset)
        clone._cascade = CascadeClient(
            clone.inner, chain=list(self._cascade.chain), decision_models=self._cascade.decision_models
        )
        return clone


class RetryMiddleware(Middleware):
    """Deterministic re-draw of rejected completions (III-E feedback).

    A completion is rejected when its confidence is below
    ``min_confidence`` or the ``validator`` (a predicate over the
    :class:`Completion`) returns False. Rejected completions are re-drawn
    up to ``max_retries`` times through a seed-shifted sibling of the inner
    provider (``inner.reseeded(attempt * seed_step)``), so retries are as
    deterministic as everything else. The best completion by confidence is
    returned if no redraw is accepted; inner providers that cannot reseed
    are retried once at most (an identical redraw proves nothing).

    Like the cascade, the returned completion's usage, cost and latency are
    summed over *every* attempt, so outer layers (the budget ceiling, the
    cache's ``cost_of_miss``) account the true price of the redraws rather
    than just the winning draw's.
    """

    def __init__(
        self,
        inner: CompletionProvider,
        max_retries: int = 2,
        min_confidence: Optional[float] = None,
        validator: Optional[Callable[[Completion], bool]] = None,
        seed_step: int = 1,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        super().__init__(inner, stats)
        self.max_retries = max_retries
        self.min_confidence = min_confidence
        self.validator = validator
        self.seed_step = seed_step

    def _acceptable(self, completion: Completion) -> bool:
        if self.min_confidence is not None and completion.confidence < self.min_confidence:
            return False
        if self.validator is not None and not self.validator(completion):
            return False
        return True

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        with self.stats.lock:
            self.stats.retry_requests += 1
        completion = self.inner.complete(prompt, model=model)
        if self._acceptable(completion):
            return completion
        best = completion
        attempts = [completion]
        retries = 0
        for attempt in range(1, self.max_retries + 1):
            reseedable = hasattr(self.inner, "reseeded")
            provider = self.inner.reseeded(attempt * self.seed_step) if reseedable else self.inner
            redraw = provider.complete(prompt, model=model)
            attempts.append(redraw)
            retries += 1
            with self.stats.lock:
                self.stats.retries += 1
            if redraw.confidence > best.confidence:
                best = redraw
            if self._acceptable(redraw):
                best = redraw
                with self.stats.lock:
                    self.stats.retry_rescues += 1
                break
            if not reseedable:
                break
        metadata = dict(best.metadata)
        metadata["serving.retries"] = retries
        return best.with_usage(
            Usage(
                prompt_tokens=sum(a.usage.prompt_tokens for a in attempts),
                completion_tokens=sum(a.usage.completion_tokens for a in attempts),
            ),
            sum(a.cost for a in attempts),
            latency_ms=sum(a.latency_ms for a in attempts),
            metadata=metadata,
        )

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        """Pass batches through **without validation or redraws**: a
        shared-prefix batch is one combined request, so re-drawing a single
        rejected item would re-pay the whole prefix and skew the batch's
        net-cost accounting. Callers that need per-item validation should
        complete items individually."""
        return self.inner.complete_batch(shared_prefix, items, model=model)


class BudgetMiddleware(Middleware):
    """A dollar ceiling over everything below this layer.

    The stack cannot know a call's price before running it (that is the
    terminal client's own pre-call check), so the ceiling is enforced
    *between* calls: once the observed spend reaches ``budget_usd``,
    further requests raise :class:`~repro.errors.BudgetExceededError`. At
    most one call per in-flight thread can overshoot, by at most its own
    cost (the ledger is locked, but the check cannot cover a call whose
    price is unknown until it returns).

    The ledger lives in a holder shared by every ``reseeded`` sibling, so
    redraws through a seed-shifted clone (validation retries, resilience
    recoveries) charge the *same* ledger — and it survives
    :meth:`~repro.serving.stats.ServiceStats.reset`, which re-publishes
    the live spend instead of reporting zero until the next charge.
    """

    def __init__(
        self,
        inner: CompletionProvider,
        budget_usd: float,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        if budget_usd < 0:
            raise ValueError("budget_usd must be non-negative")
        super().__init__(inner, stats)
        self.budget_usd = budget_usd
        # One-slot holder rather than a bare float: Middleware.reseeded
        # shallow-copies the layer, and clones must share the ledger.
        self._ledger = {"spent": 0.0}
        self._ledger_lock = threading.Lock()
        self.stats.budget_limit_usd = budget_usd
        self.stats.register_reset_hook(self._republish)

    @property
    def spent_usd(self) -> float:
        return self._ledger["spent"]

    def remaining(self) -> float:
        with self._ledger_lock:
            return max(0.0, self.budget_usd - self._ledger["spent"])

    def _republish(self) -> None:
        """Re-sync the stats view of the ledger (runs after stats.reset)."""
        with self._ledger_lock:
            spent = self._ledger["spent"]
        with self.stats.lock:
            self.stats.budget_limit_usd = self.budget_usd
            self.stats.budget_spent_usd = spent

    def _check(self) -> None:
        with self._ledger_lock:
            spent = self._ledger["spent"]
            if spent >= self.budget_usd:
                with self.stats.lock:
                    self.stats.budget_rejections += 1
                raise BudgetExceededError(
                    f"serving budget ${self.budget_usd:.4f} exhausted "
                    f"(spent ${spent:.4f})"
                )

    def _charge(self, cost: float) -> None:
        with self._ledger_lock:
            self._ledger["spent"] += cost
            with self.stats.lock:
                self.stats.budget_spent_usd = self._ledger["spent"]

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        self._check()
        completion = self.inner.complete(prompt, model=model)
        self._charge(completion.cost)
        return completion

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        self._check()
        completions = self.inner.complete_batch(shared_prefix, items, model=model)
        self._charge(sum(completion.cost for completion in completions))
        return completions


class MetricsMiddleware(Middleware):
    """The terminal observer: records every request that reaches the LLM.

    Sits directly above the terminal client, below every optimization, so
    its counters measure what the service actually billed — cache hits and
    budget rejections never show up here, cascade attempts all do.
    """

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        completion = self.inner.complete(prompt, model=model)
        self.stats.record_llm_call(
            completion.model, completion.usage, completion.cost, completion.latency_ms
        )
        return completion

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        completions = self.inner.complete_batch(shared_prefix, items, model=model)
        for completion in completions:
            self.stats.record_llm_call(
                completion.model, completion.usage, completion.cost, completion.latency_ms
            )
        return completions
