"""Failure handling for the serving stack: retries, breakers, degradation.

The optimizations in :mod:`repro.serving.middleware` all presume the layers
below them answer; a real LLM backend is sometimes rate-limited, slow, or
down. :class:`ResilienceMiddleware` is the layer that absorbs those
failures (modelled as :class:`~repro.errors.TransientLLMError`, normally
injected by :class:`~repro.llm.faults.FaultInjectingProvider`):

* **Capped exponential backoff** — a failed attempt is retried through a
  seed-shifted sibling provider (``inner.reseeded(attempt * seed_step)``),
  so a retry draws a fresh fault uniform exactly like a real re-request
  hits a new scheduler tick. Backoff delays are *simulated*: they are
  added to the returned completion's ``latency_ms`` (together with the
  time each doomed attempt burned) and never sleep the calling thread —
  chaos benchmarks stay deterministic and fast.
* **Retry budget** — at most ``max_attempts`` tries at the requested model
  per request; after that the request degrades rather than loops.
* **Per-model circuit breaker** — ``breaker_threshold`` *consecutive*
  exhausted requests open the breaker for that model; while open, the next
  ``breaker_cooldown`` requests short-circuit straight to the fallback
  chain (shedding load from a struggling backend), after which a single
  half-open probe is let through: success closes the breaker, failure
  re-opens it. Cooldown is counted in requests, not wall-clock, keeping
  state transitions replayable. Each model's state sits under its own
  lock, so breakers never serialize traffic across models.
* **Graceful degradation** — when the retry budget is exhausted or the
  breaker short-circuits, the request falls back to (1) the configured
  cheaper ``fallback_models`` in order, one attempt each; (2) a
  semantic-cache answer via the read-only
  :meth:`~repro.core.cache.SemanticCache.peek` (either hit tier —
  a near-duplicate answer beats no answer); (3) a typed
  :class:`~repro.errors.ResilienceExhaustedError`.

A request whose first attempt succeeds is returned **untouched** — with
zero injected faults this layer is bit-identical to not having it, which
``repro.bench.perf.run_chaos`` verifies. Every recovery decorates the
completion's metadata under ``"serving.resilience"`` and increments the
shared :class:`~repro.serving.stats.ServiceStats` counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.cache import SemanticCache
from repro.errors import ResilienceExhaustedError, TransientLLMError
from repro.llm.client import Completion, Usage
from repro.llm.faults import resolve_model_name
from repro.llm.provider import CompletionProvider
from repro.serving.middleware import Middleware
from repro.serving.stats import ServiceStats


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for :class:`ResilienceMiddleware` (defaults suit the chaos
    bench: 4 attempts ride out 15% fault rates with ~0.05% residual)."""

    max_attempts: int = 4  # total tries at the requested model
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 1000.0
    seed_step: int = 1  # reseed offset per retry attempt
    breaker_threshold: int = 5  # consecutive exhausted requests to open
    breaker_cooldown: int = 8  # short-circuited requests before a probe
    fallback_models: Sequence[str] = ("babbage-002",)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")

    def backoff_ms(self, attempt: int) -> float:
        """Simulated delay before retry ``attempt`` (1-based), capped."""
        return min(
            self.backoff_cap_ms, self.backoff_base_ms * self.backoff_factor ** (attempt - 1)
        )


class _Breaker:
    """Circuit-breaker state for one model, under its own lock.

    States: ``closed`` (normal traffic), ``open`` (shedding: requests
    short-circuit while the cooldown counts down, then one probe is let
    through), back to ``closed`` on probe success. ``admit()`` decides and
    mutates in one critical section so concurrent callers see a consistent
    transition order.
    """

    def __init__(self, threshold: int, cooldown: int) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive_failures = 0
        self.cooldown_remaining = 0
        self.probe_in_flight = False
        self.lock = threading.Lock()

    def admit(self) -> str:
        """Gate one request: ``"allow"`` (normal), ``"probe"`` (half-open
        trial), or ``"shed"`` (short-circuit to the fallback chain)."""
        with self.lock:
            if self.state == "closed":
                return "allow"
            if self.probe_in_flight:
                return "shed"
            if self.cooldown_remaining > 0:
                self.cooldown_remaining -= 1
                return "shed"
            self.probe_in_flight = True
            return "probe"

    def record_success(self) -> bool:
        """Note a request that got an answer; returns True on a
        half-open probe success (the open→closed transition)."""
        with self.lock:
            self.consecutive_failures = 0
            if self.state == "open":
                self.state = "closed"
                self.probe_in_flight = False
                return True
            return False

    def record_failure(self) -> bool:
        """Note an exhausted request; returns True when this failure
        opens (or re-opens) the breaker."""
        with self.lock:
            self.consecutive_failures += 1
            if self.state == "open":  # failed half-open probe: re-open
                self.probe_in_flight = False
                self.cooldown_remaining = self.cooldown
                return True
            if self.consecutive_failures >= self.threshold:
                self.state = "open"
                self.cooldown_remaining = self.cooldown
                return True
            return False


class ResilienceMiddleware(Middleware):
    """Catch transient errors from the layers below and recover.

    Sits between the retry/validation layer and the budget layer (see
    :func:`~repro.serving.stack.build_stack`): close enough to the
    terminal client that each recovery attempt is individually budgeted
    and metered, high enough that the cascade's per-stage requests each
    get their own retry budget and breaker accounting.
    """

    def __init__(
        self,
        inner: CompletionProvider,
        config: Optional[ResilienceConfig] = None,
        fallback_cache: Optional[SemanticCache] = None,
        cache_key_fn: Optional[Callable[[str], str]] = None,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        super().__init__(inner, stats)
        self.config = config if config is not None else ResilienceConfig()
        self.fallback_cache = fallback_cache
        self.cache_key_fn = cache_key_fn
        self._breakers: dict = {}
        self._breakers_lock = threading.Lock()

    # ------------------------------------------------------------ breakers

    def breaker_for(self, model: str) -> _Breaker:
        with self._breakers_lock:
            breaker = self._breakers.get(model)
            if breaker is None:
                breaker = _Breaker(
                    self.config.breaker_threshold, self.config.breaker_cooldown
                )
                self._breakers[model] = breaker
            return breaker

    def breaker_state(self, model: str) -> str:
        """The breaker state for ``model`` (``closed``/``open``)."""
        return self.breaker_for(model).state

    # ------------------------------------------------------------ accounting

    def _count_error(self, error: TransientLLMError) -> None:
        kind = type(error).__name__
        with self.stats.lock:
            self.stats.transient_errors += 1
            self.stats.transient_errors_by_kind[kind] = (
                self.stats.transient_errors_by_kind.get(kind, 0) + 1
            )

    # ------------------------------------------------------------ completion

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        model_name = resolve_model_name(self.inner, model)
        breaker = self.breaker_for(model_name)
        admission = breaker.admit()
        if admission == "shed":
            with self.stats.lock:
                self.stats.breaker_short_circuits += 1
            return self._degrade(prompt, model_name, 0.0, None)
        if admission == "probe":
            with self.stats.lock:
                self.stats.breaker_probes += 1
        # A probe gets a single attempt: one request must not re-hammer a
        # backend the breaker just finished shedding load from.
        attempts = 1 if admission == "probe" else self.config.max_attempts
        added_ms = 0.0
        last_error: Optional[TransientLLMError] = None
        for attempt in range(attempts):
            provider = self.inner
            if attempt > 0 and hasattr(self.inner, "reseeded"):
                provider = self.inner.reseeded(attempt * self.config.seed_step)
            try:
                completion = provider.complete(prompt, model=model)
            except TransientLLMError as error:
                self._count_error(error)
                added_ms += error.latency_ms
                last_error = error
                if attempt + 1 < attempts:
                    backoff = self.config.backoff_ms(attempt + 1)
                    added_ms += backoff
                    with self.stats.lock:
                        self.stats.resilience_retries += 1
                        self.stats.backoff_ms += error.latency_ms + backoff
                else:
                    with self.stats.lock:
                        self.stats.backoff_ms += error.latency_ms
                if attempt > 0 and not hasattr(self.inner, "reseeded"):
                    break  # an identical re-request can only fail again
                continue
            if breaker.record_success():
                with self.stats.lock:
                    self.stats.breaker_closes += 1
            if attempt == 0:
                return completion  # fault-free fast path: untouched
            with self.stats.lock:
                self.stats.resilience_recoveries += 1
            metadata = dict(completion.metadata)
            metadata["serving.resilience"] = {
                "retries": attempt,
                "added_ms": round(added_ms, 4),
            }
            return completion.with_usage(
                completion.usage,
                completion.cost,
                latency_ms=completion.latency_ms + added_ms,
                metadata=metadata,
            )
        if breaker.record_failure():
            with self.stats.lock:
                self.stats.breaker_opens += 1
        return self._degrade(prompt, model_name, added_ms, last_error)

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        """Retry a combined batch with the same backoff schedule; if the
        budget runs dry, degrade to per-item :meth:`complete` calls so
        each item gets the full fallback chain (losing the shared-prefix
        refund — the price of answering at all)."""
        model_name = resolve_model_name(self.inner, model)
        breaker = self.breaker_for(model_name)
        added_ms = 0.0
        if breaker.admit() != "shed":
            for attempt in range(self.config.max_attempts):
                provider = self.inner
                if attempt > 0 and hasattr(self.inner, "reseeded"):
                    provider = self.inner.reseeded(attempt * self.config.seed_step)
                try:
                    completions = provider.complete_batch(
                        shared_prefix, items, model=model
                    )
                except TransientLLMError as error:
                    self._count_error(error)
                    backoff = (
                        self.config.backoff_ms(attempt + 1)
                        if attempt + 1 < self.config.max_attempts
                        else 0.0
                    )
                    added_ms += error.latency_ms + backoff
                    with self.stats.lock:
                        self.stats.backoff_ms += error.latency_ms + backoff
                        if backoff:
                            self.stats.resilience_retries += 1
                    if attempt > 0 and not hasattr(self.inner, "reseeded"):
                        break
                    continue
                if breaker.record_success():
                    with self.stats.lock:
                        self.stats.breaker_closes += 1
                if attempt == 0:
                    return completions
                with self.stats.lock:
                    self.stats.resilience_recoveries += 1
                share = added_ms / max(len(completions), 1)
                decorated = []
                for completion in completions:
                    metadata = dict(completion.metadata)
                    metadata["serving.resilience"] = {
                        "retries": attempt,
                        "added_ms": round(share, 4),
                    }
                    decorated.append(
                        completion.with_usage(
                            completion.usage,
                            completion.cost,
                            latency_ms=completion.latency_ms + share,
                            metadata=metadata,
                        )
                    )
                return decorated
            if breaker.record_failure():
                with self.stats.lock:
                    self.stats.breaker_opens += 1
        else:
            with self.stats.lock:
                self.stats.breaker_short_circuits += 1
        return [self.complete(shared_prefix + item, model=model) for item in items]

    # ------------------------------------------------------------ degradation

    def degrade(self, prompt: str, model: Optional[str] = None) -> Completion:
        """Serve a degraded answer without touching the primary model.

        Public entry into the fallback chain — cheaper fallback models,
        then a read-only cache peek, then a typed
        :class:`~repro.errors.ResilienceExhaustedError`. The async gateway
        calls this for requests whose deadline expired while they sat in
        an admission queue: a cheap partial answer now instead of a full
        answer that would arrive too late (or a bare timeout).
        """
        model_name = resolve_model_name(self.inner, model)
        return self._degrade(prompt, model_name, 0.0, None)

    def _degrade(
        self,
        prompt: str,
        model_name: str,
        added_ms: float,
        last_error: Optional[TransientLLMError],
    ) -> Completion:
        """The fallback chain: cheaper models, cached answer, typed error."""
        for fallback in self.config.fallback_models:
            if fallback == model_name:
                continue
            try:
                completion = self.inner.complete(prompt, model=fallback)
            except TransientLLMError as error:
                self._count_error(error)
                added_ms += error.latency_ms
                with self.stats.lock:
                    self.stats.backoff_ms += error.latency_ms
                last_error = error
                continue
            with self.stats.lock:
                self.stats.fallback_model_answers += 1
            metadata = dict(completion.metadata)
            metadata["serving.resilience"] = {
                "fallback": "model",
                "degraded_from": model_name,
                "added_ms": round(added_ms, 4),
            }
            return completion.with_usage(
                completion.usage,
                completion.cost,
                latency_ms=completion.latency_ms + added_ms,
                metadata=metadata,
            )
        if self.fallback_cache is not None:
            key = self.cache_key_fn(prompt) if self.cache_key_fn is not None else prompt
            hit = self.fallback_cache.peek(key)
            if hit.entry is not None:
                with self.stats.lock:
                    self.stats.fallback_cache_answers += 1
                return Completion(
                    text=hit.entry.response,
                    model="cache",
                    usage=Usage(prompt_tokens=0, completion_tokens=0),
                    cost=0.0,
                    latency_ms=added_ms,
                    confidence=round(hit.similarity, 6),
                    engine="fallback",
                    metadata={
                        "serving.resilience": {
                            "fallback": "cache",
                            "tier": hit.tier,
                            "degraded_from": model_name,
                            "added_ms": round(added_ms, 4),
                        }
                    },
                )
        with self.stats.lock:
            self.stats.resilience_exhausted += 1
        raise ResilienceExhaustedError(
            f"model {model_name}: retries, fallback models and the cache all "
            f"failed to produce an answer"
        ) from last_error
