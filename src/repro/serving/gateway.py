"""Async gateway: SLO-aware admission control in front of the serving tier.

The thread-based :class:`~repro.serving.scheduler.BatchingScheduler` is
closed-loop: a caller blocks until its future resolves, and overload shows
up as unbounded queue wait rather than shed load. :class:`AsyncGateway` is
the open-loop front door — an asyncio layer that decides, per request,
whether to *serve*, *wait*, *degrade* or *shed*:

* **Priority classes** — requests name a class (default
  ``interactive > standard > batch``); the dispatch pump always drains the
  highest non-empty class first (strict priority), and within a class
  picks the earliest absolute deadline (EDF), breaking ties by submission
  order. With one class and no deadlines this degenerates to FIFO, which
  is what keeps the deterministic core intact (see below).
* **Admission control** — each class has a bounded queue
  (``max_queue_per_class``); a submit against a full queue parks on an
  asyncio future until the pump drains a slot (backpressure) instead of
  growing the queue without bound.
* **Load shedding** — a request whose ``deadline_ms`` is already ``<= 0``
  at submit is *never* dispatched: it fails immediately with a typed
  :class:`~repro.errors.DeadlineExceededError`. A request whose deadline
  lapses while it waits in queue is not forwarded to the primary model
  either — serving it would burn capacity on an answer nobody can use.
* **Graceful degradation** — instead of a bare timeout, an
  expired-in-queue request is routed through the existing
  :meth:`~repro.serving.resilience.ResilienceMiddleware.degrade` fallback
  chain (cheaper models → read-only cache peek → typed error), so the
  caller gets a cheap partial answer *now* rather than a full answer too
  late. With no resilience layer in the stack the request is shed.

Determinism contract: the pump forwards requests to the backend in a
total order that is a pure function of (class priority, deadline,
submission sequence). With ``workers=1`` and no deadlines, the forward
order *is* the submission order, so the gateway is bit-identical to a
serial ``ServingStack.complete`` loop over the same request stream —
every stateful layer (cache, budget, meter) mutates in exactly the same
sequence. The latency-under-load benchmark
(:mod:`repro.bench.gateway`) re-proves this equivalence on every run.

The backend can be anything with a future-returning ``submit``
(:class:`~repro.serving.scheduler.BatchingScheduler`,
:class:`~repro.serving.concurrent.ConcurrentStack`,
:class:`~repro.serving.cluster.ServingCluster`) or any plain
:class:`~repro.llm.provider.CompletionProvider`, which the gateway wraps
in its own single-worker scheduler.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    AsyncIterator,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import DeadlineExceededError, SchedulerClosedError
from repro.llm.client import Completion
from repro.serving.cluster import DEFAULT_TENANT, ServingCluster
from repro.serving.resilience import ResilienceMiddleware
from repro.serving.scheduler import BatchingScheduler
from repro.serving.stats import ServiceStats

DEFAULT_CLASSES = ("interactive", "standard", "batch")


@dataclass(frozen=True)
class GatewayRequest:
    """One request as the gateway sees it.

    ``deadline_ms`` is relative to submission time (simulated SLO):
    ``None`` means "no deadline — never shed, never degraded".
    ``priority`` must name one of the gateway's classes; ``None`` uses
    the gateway's default class. ``tenant`` is forwarded when the
    backend is a :class:`~repro.serving.cluster.ServingCluster`.
    """

    prompt: str
    model: Optional[str] = None
    priority: Optional[str] = None
    deadline_ms: Optional[float] = None
    tenant: Optional[str] = None


@dataclass
class GatewayTicket:
    """Handle for one admitted (or immediately shed) request.

    ``future`` is an asyncio future resolving to the :class:`Completion`
    (full or degraded) or raising the terminal error. ``status`` moves
    ``queued -> ok | degraded | shed | error``; ``late`` marks a full
    answer that resolved after its deadline (delivered, but it counts
    against goodput)."""

    seq: int
    request: GatewayRequest
    priority: str
    enqueued_at: float
    abs_deadline: Optional[float]
    future: "asyncio.Future[Completion]"
    status: str = "queued"
    queue_ms: float = 0.0
    late: bool = False


@dataclass
class GatewayResult:
    """One element of a :meth:`AsyncGateway.complete_many` stream."""

    index: int
    request: GatewayRequest
    status: str  # ok | degraded | shed | error
    completion: Optional[Completion] = None
    error: Optional[BaseException] = None
    queue_ms: float = 0.0
    late: bool = False

    @property
    def ok(self) -> bool:
        return self.completion is not None


def _find_resilience(root: object) -> Optional[ResilienceMiddleware]:
    """Walk a stack's provider/inner chain for the resilience layer."""
    seen = set()
    node = root
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, ResilienceMiddleware):
            return node
        node = getattr(node, "provider", None) or getattr(node, "inner", None)
    return None


class AsyncGateway:
    """Asyncio front door with priority classes, deadlines and shedding.

    Parameters
    ----------
    backend:
        A future-returning scheduler-like object (``submit`` →
        ``concurrent.futures.Future``), a :class:`ServingCluster`, or a
        plain completion provider (wrapped in an internally owned
        ``BatchingScheduler`` that the gateway closes with itself).
    classes:
        Priority classes, highest priority first.
    default_class:
        Class used when a request names none; defaults to ``"standard"``
        when present, else the first class.
    max_queue_per_class:
        Bound on each class's admission queue; submits beyond it park on
        backpressure until the pump frees a slot.
    max_inflight:
        Requests forwarded to the backend but not yet resolved. Clamped
        to the backend's own queue bound when known, so forwarding never
        blocks the event loop.
    shed_expired:
        When False the gateway never sheds or degrades — expired requests
        are forwarded anyway (the "no admission control" baseline in the
        benchmark).
    degrader:
        ``"auto"`` (find :class:`ResilienceMiddleware` in the backend's
        layer chain), ``None`` (shed instead of degrading), a
        ``ResilienceMiddleware``, or any ``(prompt, model) ->
        Completion`` callable.
    clock:
        Monotonic-seconds callable; injectable for deterministic tests.
    workers, max_batch_size, max_wait_ms, combine, max_queue, seed_stride:
        Passed to the internally owned scheduler when ``backend`` is a
        plain provider; ignored otherwise.
    """

    def __init__(
        self,
        backend: object,
        *,
        classes: Sequence[str] = DEFAULT_CLASSES,
        default_class: Optional[str] = None,
        max_queue_per_class: int = 256,
        max_inflight: Optional[int] = None,
        shed_expired: bool = True,
        degrader: Union[str, None, ResilienceMiddleware, Callable] = "auto",
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[ServiceStats] = None,
        workers: int = 1,
        max_batch_size: int = 8,
        max_wait_ms: float = 0.0,
        combine: bool = False,
        max_queue: int = 1024,
        seed_stride: int = 0,
    ) -> None:
        if not classes:
            raise ValueError("at least one priority class is required")
        if len(set(classes)) != len(classes):
            raise ValueError("priority classes must be unique")
        if max_queue_per_class < 1:
            raise ValueError("max_queue_per_class must be >= 1")
        self.classes: Tuple[str, ...] = tuple(classes)
        if default_class is None:
            default_class = "standard" if "standard" in self.classes else self.classes[0]
        if default_class not in self.classes:
            raise ValueError(f"default_class {default_class!r} not in classes")
        self.default_class = default_class
        self.max_queue_per_class = max_queue_per_class
        self.shed_expired = shed_expired
        self._clock = clock

        # ---- backend wiring -------------------------------------------
        self._owns_backend = False
        backend_queue_bound: Optional[int] = None
        if isinstance(backend, ServingCluster):
            self._backend = backend

            def forward(req: GatewayRequest):
                return backend.submit(
                    req.prompt, tenant=req.tenant or DEFAULT_TENANT, model=req.model
                )

        elif hasattr(backend, "submit"):
            self._backend = backend
            scheduler = getattr(backend, "scheduler", backend)
            backend_queue_bound = getattr(scheduler, "max_queue", None)

            def forward(req: GatewayRequest):
                return backend.submit(req.prompt, model=req.model)

        else:  # plain provider: own a single-worker scheduler
            owned = BatchingScheduler(
                backend,
                max_batch_size=max_batch_size,
                max_wait_ms=max_wait_ms,
                workers=workers,
                max_queue=max_queue,
                combine=combine,
                seed_stride=seed_stride,
                stats=stats or getattr(backend, "stats", None),
            )
            self._backend = owned
            self._owns_backend = True
            backend_queue_bound = owned.max_queue

            def forward(req: GatewayRequest):
                return owned.submit(req.prompt, model=req.model)

        self._forward = forward
        if max_inflight is None:
            max_inflight = 64
        if backend_queue_bound is not None:
            max_inflight = min(max_inflight, backend_queue_bound)
        self.max_inflight = max(1, max_inflight)

        # ---- degradation wiring ---------------------------------------
        self._degrade_fn: Optional[Callable[[str, Optional[str]], Completion]] = None
        if degrader == "auto":
            root = getattr(self._backend, "provider", None) or getattr(
                self._backend, "stack", None
            )
            if root is None and not isinstance(backend, ServingCluster):
                root = backend
            layer = _find_resilience(root) if root is not None else None
            if layer is not None:
                self._degrade_fn = layer.degrade
        elif isinstance(degrader, ResilienceMiddleware):
            self._degrade_fn = degrader.degrade
        elif callable(degrader):
            self._degrade_fn = degrader  # type: ignore[assignment]
        elif degrader is not None:
            raise ValueError(f"unsupported degrader: {degrader!r}")

        self.stats = stats or getattr(self._backend, "stats", None) or ServiceStats()

        # ---- queueing state (event-loop thread only) ------------------
        # Per class: min-heap of (abs_deadline | +inf, seq, ticket) — EDF
        # within class, submission order as the tie-break.
        self._queues: Dict[str, List[Tuple[float, int, GatewayTicket]]] = {
            cls: [] for cls in self.classes
        }
        self._waiters: Dict[str, Deque["asyncio.Future[None]"]] = {
            cls: deque() for cls in self.classes
        }
        self._seq = 0
        self._inflight = 0
        self._started = False
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._pump_task: Optional["asyncio.Task[None]"] = None

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> "AsyncGateway":
        """Bind to the running loop and start the dispatch pump."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._pump_task = self._loop.create_task(self._pump())
        self._started = True
        return self

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop accepting; drain queued + inflight work; close an owned
        backend. Submits parked on backpressure raise
        :class:`SchedulerClosedError` immediately."""
        if not self._started:
            if self._owns_backend:
                self._backend.close()
            return
        self._closing = True
        for dq in self._waiters.values():
            while dq:
                waiter = dq.popleft()
                if not waiter.done():
                    waiter.set_exception(SchedulerClosedError("gateway is closed"))
        assert self._wake is not None and self._pump_task is not None
        self._wake.set()
        await self._pump_task
        if self._owns_backend:
            # close() joins scheduler threads — do it off the loop.
            assert self._loop is not None
            await self._loop.run_in_executor(None, self._backend.close)

    # ---------------------------------------------------------- submission

    def _coerce(self, request: Union[str, GatewayRequest]) -> GatewayRequest:
        if isinstance(request, GatewayRequest):
            return request
        return GatewayRequest(prompt=request)

    async def enqueue(
        self,
        request: Union[str, GatewayRequest],
        *,
        model: Optional[str] = None,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> GatewayTicket:
        """Admit one request; returns its ticket (future may already have
        failed for an expired-at-submit shed). Parks on backpressure while
        the class queue is full. Keyword overrides beat the request's own
        fields when both are given."""
        req = self._coerce(request)
        if model or priority or deadline_ms is not None or tenant:
            req = GatewayRequest(
                prompt=req.prompt,
                model=model or req.model,
                priority=priority or req.priority,
                deadline_ms=deadline_ms if deadline_ms is not None else req.deadline_ms,
                tenant=tenant or req.tenant,
            )
        cls = req.priority or self.default_class
        if cls not in self._queues:
            raise ValueError(f"unknown priority class {cls!r}")
        if not self._started:
            await self.start()
        if self._closing:
            raise SchedulerClosedError("gateway is closed")
        assert self._loop is not None and self._wake is not None

        self.stats.record_gateway_submit(cls)
        now = self._clock()
        abs_deadline = None
        if req.deadline_ms is not None:
            abs_deadline = now + req.deadline_ms / 1000.0

        ticket = GatewayTicket(
            seq=-1,
            request=req,
            priority=cls,
            enqueued_at=now,
            abs_deadline=abs_deadline,
            future=self._loop.create_future(),
        )
        # Shed on arrival: an already-expired request never takes a queue
        # slot and is never dispatched.
        if self.shed_expired and req.deadline_ms is not None and req.deadline_ms <= 0:
            self._resolve_shed(ticket, "shed_at_submit", waited_ms=0.0)
            return ticket

        # Backpressure: park until the pump frees a slot in this class.
        while len(self._queues[cls]) >= self.max_queue_per_class:
            if self._closing:
                raise SchedulerClosedError("gateway closed while submit waited")
            waiter: "asyncio.Future[None]" = self._loop.create_future()
            self._waiters[cls].append(waiter)
            self.stats.record_gateway_backpressure()
            try:
                await waiter
            finally:
                if not waiter.done():
                    waiter.cancel()
                try:
                    self._waiters[cls].remove(waiter)
                except ValueError:
                    pass
        if self._closing:
            raise SchedulerClosedError("gateway closed while submit waited")

        # The deadline aged while we waited for admission; shed now rather
        # than occupy a slot with a hopeless request.
        if self.shed_expired and abs_deadline is not None and self._clock() >= abs_deadline:
            waited = (self._clock() - now) * 1000.0
            self._resolve_shed(ticket, "shed_at_submit", waited_ms=waited)
            return ticket

        ticket.seq = self._seq
        self._seq += 1
        key = abs_deadline if abs_deadline is not None else math.inf
        heapq.heappush(self._queues[cls], (key, ticket.seq, ticket))
        self._wake.set()
        return ticket

    async def submit(
        self,
        request: Union[str, GatewayRequest],
        *,
        model: Optional[str] = None,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> Completion:
        """Admit one request and await its completion (full or degraded).

        Raises :class:`~repro.errors.DeadlineExceededError` if the request
        was shed, or whatever terminal error the backend raised."""
        ticket = await self.enqueue(
            request,
            model=model,
            priority=priority,
            deadline_ms=deadline_ms,
            tenant=tenant,
        )
        return await ticket.future

    async def complete_many(
        self,
        requests: Sequence[Union[str, GatewayRequest]],
        *,
        as_completed: bool = False,
    ) -> AsyncIterator[GatewayResult]:
        """Stream results for a batch of requests as they become available.

        Partial results: each request yields a :class:`GatewayResult`
        whether it produced a full answer, a degraded answer, or was shed
        — the stream never aborts on a per-request failure. Default order
        is submission order (each result yielded as soon as it and all its
        predecessors are done); ``as_completed=True`` yields in completion
        order instead."""
        reqs = [self._coerce(r) for r in requests]
        if not self._started:
            await self.start()
        done_q: "asyncio.Queue[Tuple[int, GatewayTicket]]" = asyncio.Queue()
        tickets: List[Optional[GatewayTicket]] = [None] * len(reqs)
        failures: List[Tuple[int, BaseException]] = []

        async def produce() -> None:
            for i, req in enumerate(reqs):
                try:
                    ticket = await self.enqueue(req)
                except Exception as exc:  # gateway closed mid-stream
                    failures.append((i, exc))
                    done_q.put_nowait((i, self._failed_ticket(req, exc)))
                    continue
                tickets[i] = ticket
                ticket.future.add_done_callback(
                    lambda _f, i=i, t=ticket: done_q.put_nowait((i, t))
                )

        producer = asyncio.ensure_future(produce())
        try:
            if as_completed:
                for _ in range(len(reqs)):
                    index, ticket = await done_q.get()
                    yield self._result_of(index, ticket)
            else:
                await producer
                for index, maybe in enumerate(tickets):
                    if maybe is None:
                        exc = next(e for i, e in failures if i == index)
                        yield self._result_of(
                            index, self._failed_ticket(reqs[index], exc)
                        )
                        continue
                    try:
                        await maybe.future
                    except Exception:
                        pass
                    yield self._result_of(index, maybe)
        finally:
            if not producer.done():
                producer.cancel()
            await asyncio.gather(producer, return_exceptions=True)

    async def complete_all(
        self, requests: Sequence[Union[str, GatewayRequest]]
    ) -> List[Completion]:
        """Completions for every request, in submission order; raises on
        the first shed/error (the strict path used by determinism checks)."""
        out: List[Completion] = []
        async for result in self.complete_many(requests):
            if result.error is not None:
                raise result.error
            assert result.completion is not None
            out.append(result.completion)
        return out

    def _failed_ticket(self, req: GatewayRequest, exc: BaseException) -> GatewayTicket:
        assert self._loop is not None
        future: "asyncio.Future[Completion]" = self._loop.create_future()
        future.set_exception(exc)
        future.exception()  # consumed; silence "never retrieved"
        return GatewayTicket(
            seq=-1,
            request=req,
            priority=req.priority or self.default_class,
            enqueued_at=self._clock(),
            abs_deadline=None,
            future=future,
            status="error",
        )

    # ------------------------------------------------------------- pumping

    def queue_depths(self) -> Dict[str, int]:
        """Current per-class admission queue depths."""
        return {cls: len(heap) for cls, heap in self._queues.items()}

    async def _pump(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._advance()
            if (
                self._closing
                and self._inflight == 0
                and not any(self._queues.values())
            ):
                return

    def _advance(self) -> None:
        """Forward queued requests while inflight slots are free: strict
        class priority, EDF within class, shed/degrade expired work."""
        while self._inflight < self.max_inflight:
            ticket = self._pop_next()
            if ticket is None:
                return
            now = self._clock()
            if (
                self.shed_expired
                and ticket.abs_deadline is not None
                and now >= ticket.abs_deadline
            ):
                self._expire(ticket, now)
                continue
            self._dispatch(ticket, now)

    def _pop_next(self) -> Optional[GatewayTicket]:
        for cls in self.classes:
            heap = self._queues[cls]
            if heap:
                _, _, ticket = heapq.heappop(heap)
                self._release_slot(cls)
                return ticket
        return None

    def _release_slot(self, cls: str) -> None:
        waiters = self._waiters[cls]
        while waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    def _dispatch(self, ticket: GatewayTicket, now: float) -> None:
        self._inflight += 1
        ticket.queue_ms = (now - ticket.enqueued_at) * 1000.0
        try:
            backend_future = self._forward(ticket.request)
        except Exception as exc:
            self._inflight -= 1
            ticket.status = "error"
            self.stats.record_gateway_outcome(
                ticket.priority, "error", queue_wait_ms=ticket.queue_ms
            )
            if not ticket.future.done():
                ticket.future.set_exception(exc)
            return
        assert self._loop is not None
        backend_future.add_done_callback(
            lambda f: self._loop.call_soon_threadsafe(self._on_backend_done, ticket, f)
        )

    def _on_backend_done(self, ticket: GatewayTicket, backend_future) -> None:
        self._inflight -= 1
        exc = backend_future.exception()
        if exc is not None:
            ticket.status = "error"
            self.stats.record_gateway_outcome(
                ticket.priority, "error", queue_wait_ms=ticket.queue_ms
            )
            if not ticket.future.done():
                ticket.future.set_exception(exc)
        else:
            completion = backend_future.result()
            if ticket.abs_deadline is not None and self._clock() > ticket.abs_deadline:
                # Delivered, but after the deadline: mark it so callers
                # (and goodput accounting) can tell. No-deadline requests
                # are returned untouched — that is the determinism path.
                ticket.late = True
                metadata = dict(completion.metadata)
                metadata["serving.gateway"] = {
                    "late": True,
                    "deadline_ms": ticket.request.deadline_ms,
                    "queue_ms": round(ticket.queue_ms, 4),
                }
                completion = completion.with_usage(
                    completion.usage, completion.cost, metadata=metadata
                )
            ticket.status = "ok"
            self.stats.record_gateway_outcome(
                ticket.priority, "ok", queue_wait_ms=ticket.queue_ms, late=ticket.late
            )
            if not ticket.future.done():
                ticket.future.set_result(completion)
        assert self._wake is not None
        self._wake.set()

    # ------------------------------------------------------ shed / degrade

    def _resolve_shed(
        self, ticket: GatewayTicket, status: str, waited_ms: float
    ) -> None:
        ticket.status = "shed"
        ticket.queue_ms = waited_ms
        self.stats.record_gateway_outcome(
            ticket.priority, status, queue_wait_ms=waited_ms
        )
        error = DeadlineExceededError(
            f"request shed: deadline of {ticket.request.deadline_ms}ms expired "
            f"after waiting {waited_ms:.1f}ms in class {ticket.priority!r}",
            deadline_ms=ticket.request.deadline_ms or 0.0,
            waited_ms=waited_ms,
        )
        if not ticket.future.done():
            ticket.future.set_exception(error)

    def _expire(self, ticket: GatewayTicket, now: float) -> None:
        """Deadline lapsed in queue: degrade through the resilience chain
        when one is wired, otherwise shed."""
        waited_ms = (now - ticket.enqueued_at) * 1000.0
        if self._degrade_fn is None:
            self._resolve_shed(ticket, "shed", waited_ms)
            return
        self._inflight += 1  # degradation occupies an inflight slot too
        ticket.queue_ms = waited_ms
        assert self._loop is not None
        degrade_future = self._loop.run_in_executor(
            None, self._degrade_fn, ticket.request.prompt, ticket.request.model
        )
        degrade_future.add_done_callback(
            lambda f: self._on_degrade_done(ticket, waited_ms, f)
        )

    def _on_degrade_done(
        self, ticket: GatewayTicket, waited_ms: float, degrade_future
    ) -> None:
        self._inflight -= 1
        exc = degrade_future.exception()
        if exc is not None:
            # The fallback chain came up empty too: shed, chaining the
            # exhaustion error as the cause.
            ticket.status = "shed"
            self.stats.record_gateway_outcome(
                ticket.priority, "shed", queue_wait_ms=waited_ms
            )
            error = DeadlineExceededError(
                f"request shed: deadline expired in queue and degradation "
                f"failed ({type(exc).__name__})",
                deadline_ms=ticket.request.deadline_ms or 0.0,
                waited_ms=waited_ms,
            )
            error.__cause__ = exc
            if not ticket.future.done():
                ticket.future.set_exception(error)
        else:
            completion = degrade_future.result()
            metadata = dict(completion.metadata)
            metadata["serving.gateway"] = {
                "degraded": True,
                "reason": "deadline expired in queue",
                "deadline_ms": ticket.request.deadline_ms,
                "queue_ms": round(waited_ms, 4),
            }
            completion = completion.with_usage(
                completion.usage, completion.cost, metadata=metadata
            )
            ticket.status = "degraded"
            self.stats.record_gateway_outcome(
                ticket.priority, "degraded", queue_wait_ms=waited_ms
            )
            if not ticket.future.done():
                ticket.future.set_result(completion)
        assert self._wake is not None
        self._wake.set()

    def _result_of(self, index: int, ticket: GatewayTicket) -> GatewayResult:
        future = ticket.future
        error: Optional[BaseException] = None
        completion: Optional[Completion] = None
        if future.done():
            error = future.exception()
            if error is None:
                completion = future.result()
        return GatewayResult(
            index=index,
            request=ticket.request,
            status=ticket.status,
            completion=completion,
            error=error,
            queue_ms=ticket.queue_ms,
            late=ticket.late,
        )
