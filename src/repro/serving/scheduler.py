"""Micro-batching scheduler: coalesce many callers into few provider calls.

The serving stack answers one request per call; under heavy traffic the
per-call overhead (network round-trip, shared-prefix tokens, dispatch) is
the throughput ceiling. :class:`BatchingScheduler` puts a bounded queue in
front of any :class:`~repro.llm.provider.CompletionProvider` and runs the
classic continuous-batching loop:

1. **submit** — client threads enqueue ``(prompt, model)`` and get back a
   :class:`concurrent.futures.Future`. Every request carries a *submission
   index* (auto-assigned, or supplied explicitly when callers partition one
   logical workload across threads).
2. **coalesce** — a collector thread assembles requests into batches in
   strict submission-index order, flushing when a batch reaches
   ``max_batch_size`` or its oldest request has waited ``max_wait_ms``.
3. **dispatch** — batches go to ``workers`` dispatcher threads. With
   ``combine=True`` a batch becomes one ``complete_batch`` call whose
   shared prefix is the common string prefix of its prompts, so the
   terminal client's shared-prefix token refund and the budget layer's
   batch netting are exercised under load; otherwise items are completed
   one by one, traversing every middleware layer (cache included).
4. **resolve** — futures resolve strictly in submission order, whatever
   order batches finish in.

Determinism: completions are pure functions of ``(seed, model, prompt)``,
and with ``workers=1`` all stateful layers (semantic cache, budget, usage
meter) are mutated in exactly the submission order — a concurrent run is
bit-identical to the serial loop regardless of how client threads
interleave their submissions. ``seed_stride > 0`` instead derives each
request's RNG stream from its submission index via ``reseeded(index *
seed_stride)``, decoupling results from worker assignment when callers
*want* independent streams per request; the default stride of 0 shares the
serial stream.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulerClosedError
from repro.serving.stats import ServiceStats

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.llm.client import Completion
    from repro.llm.provider import CompletionProvider

_SHUTDOWN = object()

# Provider living inside each worker process of a dispatch="process" pool,
# built once per process by _process_pool_init. Live providers hold locks
# and thread state and cannot be pickled, so each worker constructs its own
# from a module-level factory; determinism holds because completions are
# pure functions of (seed, model, prompt) and the factory pins the seed.
_PROCESS_PROVIDER: Optional["CompletionProvider"] = None


def _process_pool_init(factory: Callable[..., "CompletionProvider"], kwargs: Dict) -> None:
    global _PROCESS_PROVIDER
    _PROCESS_PROVIDER = factory(**kwargs)


def _process_run_batch(
    items: List[Tuple[int, str, Optional[str]]], seed_stride: int
) -> List[Tuple[str, object]]:
    """Run one batch inside a worker process; mirrors the thread-mode
    per-item loop (same reseeding rule, same per-item error isolation)."""
    provider = _PROCESS_PROVIDER
    assert provider is not None, "process pool initializer did not run"
    reseedable = seed_stride and hasattr(provider, "reseeded")
    outcomes: List[Tuple[str, object]] = []
    for index, prompt, model in items:
        try:
            item_provider = provider.reseeded(index * seed_stride) if reseedable else provider
            outcomes.append(("ok", item_provider.complete(prompt, model=model)))
        except Exception as exc:  # per-item isolation, shipped back pickled
            outcomes.append(("err", exc))
    return outcomes


def shared_prefix(prompts: List[str]) -> str:
    """Longest common string prefix of ``prompts`` (the coalesced batch's
    shareable context — template preamble, schema, few-shot examples)."""
    if not prompts:
        return ""
    lo, hi = min(prompts), max(prompts)
    i = 0
    while i < len(lo) and lo[i] == hi[i]:
        i += 1
    return lo[:i]


@dataclass
class _Request:
    """One queued request."""

    index: int
    prompt: str
    model: Optional[str]
    future: "Future[Completion]" = field(default_factory=Future)
    # Stamped at submission: the max_wait_ms flush deadline counts from
    # here, not from when the collector drains the request into a batch —
    # a request that sat behind an explicit-index gap has already waited.
    enqueued_at: float = field(default_factory=time.monotonic)


class BatchingScheduler:
    """Bounded request queue + coalescing collector + dispatcher pool.

    Parameters
    ----------
    provider:
        Any completion provider — normally a composed
        :class:`~repro.serving.stack.ServingStack`.
    max_batch_size:
        Flush a batch as soon as it holds this many requests.
    max_wait_ms:
        Flush a partial batch once its oldest request has waited this long
        since *submission* — time spent parked behind an explicit-index
        gap counts toward the deadline, not just time in the batch.
    workers:
        Dispatcher threads. ``1`` (default) executes batches strictly in
        submission order — the deterministic mode; larger values overlap
        batch execution for throughput (the shared hot state below the
        stack is lock-protected, so this is safe but interleaves stateful
        layers nondeterministically).
    max_queue:
        Backpressure bound: auto-indexed ``submit`` blocks while this many
        requests are waiting uncoalesced. Explicitly indexed submissions
        are exempt (blocking one could withhold the very index the
        collector is waiting on).
    combine:
        Dispatch multi-request batches through ``complete_batch`` with the
        common prompt prefix shared (cache/cascade layers pass batches
        through untouched, by design). Single-request batches and batches
        mixing models fall back to per-item ``complete``.
    seed_stride:
        When > 0 and the provider is reseedable, request ``i`` is answered
        by ``provider.reseeded(i * seed_stride)``. Ignored for combined
        batches (one call answers many indexes).
    stats:
        Shared :class:`ServiceStats`; batch sizes and queue depths are
        recorded here.
    dispatch:
        ``"thread"`` (default) runs batches on the dispatcher threads —
        right for I/O-bound providers, and the only mode that can share
        stateful stack layers (cache, budget) across requests.
        ``"process"`` ships each batch to a spawn-based process pool for
        CPU-heavy engines the GIL would serialize. Requires
        ``provider_factory`` (a picklable module-level callable invoked
        with ``factory_kwargs`` inside each worker process to build its
        provider); results flow through the same in-order resolution
        gate, and ``seed_stride`` reseeding applies identically, so a
        process run is bit-identical to the serial loop whenever the
        provider is a pure function of ``(seed, model, prompt)``.
        Incompatible with ``combine=True``.
    processes:
        Worker-process count for ``dispatch="process"`` (defaults to
        ``workers``).
    """

    def __init__(
        self,
        provider: "CompletionProvider",
        *,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        workers: int = 1,
        max_queue: int = 1024,
        combine: bool = False,
        seed_stride: int = 0,
        stats: Optional[ServiceStats] = None,
        dispatch: str = "thread",
        provider_factory: Optional[Callable[..., "CompletionProvider"]] = None,
        factory_kwargs: Optional[Dict] = None,
        processes: Optional[int] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if dispatch not in ("thread", "process"):
            raise ValueError("dispatch must be 'thread' or 'process'")
        if dispatch == "process":
            if provider_factory is None:
                raise ValueError(
                    "dispatch='process' needs a picklable module-level "
                    "provider_factory (worker processes each build their own "
                    "provider; live providers hold locks and cannot cross)"
                )
            if combine:
                raise ValueError("dispatch='process' does not support combine=True")
        self.provider = provider
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.workers = workers
        self.max_queue = max_queue
        self.combine = combine
        self.seed_stride = seed_stride
        self.stats = stats if stats is not None else ServiceStats()
        self.dispatch = dispatch
        self._pool: Optional[ProcessPoolExecutor] = None
        if dispatch == "process":
            # spawn (not fork): worker state must come only from the
            # factory, never from accidentally inherited parent memory.
            self._pool = ProcessPoolExecutor(
                max_workers=processes if processes is not None else workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_process_pool_init,
                initargs=(provider_factory, dict(factory_kwargs or {})),
            )

        self._lock = threading.Lock()
        self._new_request = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._pending: Dict[int, _Request] = {}  # reorder buffer, by index
        self._next_auto = 0  # next auto-assigned submission index
        self._next_dispatch = 0  # next index the collector will coalesce
        self._closed = False

        # Resolution gate: futures resolve in submission-index order.
        self._resolve_lock = threading.Lock()
        self._outstanding: List[int] = []  # min-heap of unresolved indexes
        self._ready: Dict[int, Tuple[_Request, Tuple[str, object]]] = {}

        self._batches: "queue.Queue[object]" = queue.Queue(maxsize=2 * workers)
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-sched-collector", daemon=True
        )
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop, name=f"repro-sched-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        self._collector.start()
        for thread in self._dispatchers:
            thread.start()

    # ------------------------------------------------------------ client API

    def submit(
        self, prompt: str, model: Optional[str] = None, index: Optional[int] = None
    ) -> "Future[Completion]":
        """Enqueue one request; returns the future for its completion.

        ``index`` pins the submission index explicitly — callers that fan
        one ordered workload out over several submitter threads use this to
        keep the *logical* order independent of thread interleaving.
        Explicit indexes must eventually cover a contiguous range: the
        collector will not coalesce past a gap until it fills (or the
        scheduler closes).

        Raises :class:`~repro.errors.SchedulerClosedError` if the
        scheduler is closed — including when ``close()`` lands while this
        submitter is blocked on a full queue: close wakes every blocked
        submitter, and each raises instead of waiting forever.
        """
        with self._lock:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            if index is None:
                # Backpressure wait. _closed is re-checked on *every*
                # wakeup before going back to sleep: close() flips the
                # flag and notify_all()s this condition under the same
                # lock, so a submitter parked here can never miss the
                # close and wait on a condition nobody signals again.
                while len(self._pending) >= self.max_queue:
                    if self._closed:
                        raise SchedulerClosedError(
                            "scheduler closed while submit waited for queue space"
                        )
                    self._not_full.wait()
                if self._closed:
                    raise SchedulerClosedError(
                        "scheduler closed while submit waited for queue space"
                    )
                index = self._next_auto
                self._next_auto += 1
            else:
                if index < self._next_dispatch or index in self._pending:
                    raise ValueError(f"submission index {index} already used")
                if index >= self._next_auto:
                    self._next_auto = index + 1
            request = _Request(index=index, prompt=prompt, model=model)
            self._pending[index] = request
            with self._resolve_lock:
                heapq.heappush(self._outstanding, index)
            self._new_request.notify()
        self.stats.record_submit()
        return request.future

    def reserve(self, n: int) -> int:
        """Reserve ``n`` consecutive submission indexes; returns the first.

        The block is then filled with ``submit(..., index=base + i)`` calls,
        typically from several threads at once."""
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            base = self._next_auto
            self._next_auto += n
            return base

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain and join the worker threads.

        Wakes every submitter blocked on a full queue (each raises
        :class:`~repro.errors.SchedulerClosedError`); requests already
        accepted are still dispatched and their futures resolved."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._new_request.notify_all()
                self._not_full.notify_all()
        # Join strictly outside the lock: the collector needs it to drain
        # the remaining pending requests, and the dispatchers take it for
        # stats. Joining under the lock deadlocks a close(wait=True) that
        # follows a close(wait=False) while workers are still draining.
        if wait:
            self._join()

    def _join(self) -> None:
        self._collector.join()
        for thread in self._dispatchers:
            thread.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchingScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet coalesced into a batch."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------ collector

    def _collect_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                for _ in self._dispatchers:
                    self._batches.put(_SHUTDOWN)
                return
            self._batches.put(batch)

    def _next_batch(self) -> Optional[List[_Request]]:
        """Block until a batch is due (size, timeout, or shutdown drain)."""
        batch: List[_Request] = []
        deadline: Optional[float] = None
        with self._lock:
            while True:
                # Drain contiguously from the reorder buffer.
                while len(batch) < self.max_batch_size and self._next_dispatch in self._pending:
                    request = self._pending.pop(self._next_dispatch)
                    batch.append(request)
                    self._next_dispatch += 1
                    # Deadline counts from the oldest *submission* in the
                    # batch (not from drain time), as the flush contract
                    # promises; submission times need not be in index
                    # order, hence the min. With max_wait_ms=0 there is no
                    # deadline to track at all — see the flush below.
                    if self.max_wait_ms > 0:
                        candidate = request.enqueued_at + self.max_wait_ms / 1000.0
                        if deadline is None or candidate < deadline:
                            deadline = candidate
                    self._not_full.notify()
                if len(batch) >= self.max_batch_size:
                    return batch  # flush on size
                if batch and self.max_wait_ms == 0:
                    # max_wait_ms=0 means "flush immediately, never spin":
                    # whatever is contiguous right now goes out without
                    # consulting the clock. The old path computed a
                    # deadline of enqueued_at + 0 — already in the past —
                    # and re-derived `remaining <= 0` from the clock on
                    # every flush.
                    return batch
                if self._closed:
                    if batch:
                        return batch
                    if not self._pending:
                        return None  # empty-queue shutdown
                    # Submissions have stopped; gaps can never fill. Jump to
                    # the smallest remaining index and keep draining in order.
                    self._next_dispatch = min(self._pending)
                    continue
                if batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return batch  # flush on timeout
                    self._new_request.wait(timeout=remaining)
                else:
                    self._new_request.wait()

    # ------------------------------------------------------------ dispatchers

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._batches.get()
            if batch is _SHUTDOWN:
                return
            self._run_batch(batch)

    def _provider_for(self, request: _Request) -> "CompletionProvider":
        if self.seed_stride and hasattr(self.provider, "reseeded"):
            return self.provider.reseeded(request.index * self.seed_stride)
        return self.provider

    def _run_batch(self, batch: List[_Request]) -> None:
        self.stats.record_batch(len(batch), self.queue_depth)
        if self._pool is not None:
            # Process dispatch: ship the whole batch to one worker process
            # (batch granularity keeps IPC amortized); the dispatcher
            # thread blocks on the result and feeds the same in-order
            # resolution gate as thread dispatch.
            payload = [(r.index, r.prompt, r.model) for r in batch]
            try:
                outcomes = self._pool.submit(
                    _process_run_batch, payload, self.seed_stride
                ).result()
            except Exception as exc:  # pool broken: fail the whole batch
                outcomes = [("err", exc) for _ in batch]
            self._resolve(batch, outcomes)
            return
        outcomes: List[Tuple[str, object]] = []
        combinable = (
            self.combine
            and len(batch) > 1
            and all(request.model == batch[0].model for request in batch)
        )
        if combinable:
            prefix = shared_prefix([request.prompt for request in batch])
            try:
                completions = self.provider.complete_batch(
                    prefix,
                    [request.prompt[len(prefix):] for request in batch],
                    model=batch[0].model,
                )
                outcomes = [("ok", completion) for completion in completions]
            except Exception as exc:  # one combined call: the whole batch fails
                outcomes = [("err", exc) for _ in batch]
        else:
            # Announce the drained batch so stack layers can amortize
            # shared work (one embed_batch sweep + one cache-probe gemm per
            # batch instead of per request). Pure optimization: per-request
            # results are unchanged, and providers without the hook are
            # served identically.
            begin = getattr(self.provider, "begin_batch", None)
            if begin is not None and len(batch) > 1:
                model0 = batch[0].model
                begin(
                    [request.prompt for request in batch],
                    model0 if all(r.model == model0 for r in batch) else None,
                )
            try:
                for request in batch:
                    try:
                        completion = self._provider_for(request).complete(
                            request.prompt, model=request.model
                        )
                        outcomes.append(("ok", completion))
                    except Exception as exc:  # per-item isolation
                        outcomes.append(("err", exc))
            finally:
                end = getattr(self.provider, "end_batch", None)
                if end is not None and begin is not None and len(batch) > 1:
                    end()
        self._resolve(batch, outcomes)

    def _resolve(self, batch: List[_Request], outcomes: List[Tuple[str, object]]) -> None:
        """Publish outcomes; release futures strictly in index order."""
        releasable: List[Tuple[_Request, Tuple[str, object]]] = []
        with self._resolve_lock:
            for request, outcome in zip(batch, outcomes):
                self._ready[request.index] = (request, outcome)
            while self._outstanding and self._outstanding[0] in self._ready:
                releasable.append(self._ready.pop(heapq.heappop(self._outstanding)))
        # Resolve outside the gate lock: done-callbacks run in this thread.
        for request, (kind, value) in releasable:
            self.stats.record_completion()
            if kind == "ok":
                request.future.set_result(value)
            else:
                request.future.set_exception(value)
