"""Stack composition: one call site to assemble a serving pipeline.

:func:`build_stack` wires the standard layer order

    cache → cascade → retry → resilience → budget → metrics → client

installing only the layers asked for, and shares one
:class:`~repro.serving.stats.ServiceStats` across all of them. The result
is a :class:`ServingStack` — itself a
:class:`~repro.llm.provider.CompletionProvider`, so applications take it
anywhere they take a raw client. With no layers requested the stack is a
bare metrics observer over the client and behaves bit-identically to the
client itself.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.cache import SemanticCache
from repro.core.cascade import DEFAULT_CHAIN
from repro.llm.client import Completion
from repro.llm.provider import CompletionProvider
from repro.serving.middleware import (
    BudgetMiddleware,
    CascadeMiddleware,
    MetricsMiddleware,
    RetryMiddleware,
    SemanticCacheMiddleware,
)
from repro.serving.resilience import ResilienceConfig, ResilienceMiddleware
from repro.serving.stats import ServiceStats


class ServingStack:
    """A composed middleware pipeline, usable anywhere a provider is."""

    def __init__(
        self,
        provider: CompletionProvider,
        stats: ServiceStats,
        layers: Sequence[str],
    ) -> None:
        self.provider = provider
        self.stats = stats
        self.layers = list(layers)

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        return self.provider.complete(prompt, model=model)

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        return self.provider.complete_batch(shared_prefix, items, model=model)

    def embed(self, text: str) -> np.ndarray:
        return self.provider.embed(text)

    def reseeded(self, offset: int) -> "ServingStack":
        if hasattr(self.provider, "reseeded"):
            return ServingStack(self.provider.reseeded(offset), self.stats, self.layers)
        return self

    def concurrent(self, **kwargs: object) -> "ConcurrentStack":
        """Wrap this stack in a :class:`~repro.serving.concurrent.ConcurrentStack`.

        Keyword arguments are the scheduler knobs (``max_batch_size``,
        ``max_wait_ms``, ``workers``, ...); the returned facade shares this
        stack's :class:`ServiceStats`.
        """
        from repro.serving.concurrent import ConcurrentStack

        return ConcurrentStack(self, **kwargs)

    def describe(self) -> str:
        """The layer chain, outermost first (e.g. for example scripts)."""
        return " -> ".join(self.layers)

    def report(self) -> str:
        return self.stats.render()


def build_stack(
    client: CompletionProvider,
    *,
    cache: Union[SemanticCache, bool, None] = None,
    cache_key_fn: Optional[Callable[[str], str]] = None,
    cache_kind: str = "original",
    chain: Optional[Sequence[str]] = None,
    decision_models: Optional[Sequence[object]] = None,
    max_retries: int = 0,
    min_confidence: Optional[float] = None,
    validator: Optional[Callable[[Completion], bool]] = None,
    budget_usd: Optional[float] = None,
    resilience: Union[ResilienceConfig, bool, None] = None,
    stats: Optional[ServiceStats] = None,
) -> ServingStack:
    """Assemble a serving stack over ``client`` with the requested layers.

    Parameters mirror the middleware constructors: pass ``cache=True`` (or
    a configured :class:`SemanticCache`) for the cache layer, a model
    ``chain`` (and optional ``decision_models``) for the cascade,
    ``max_retries`` with ``min_confidence``/``validator`` for retries,
    ``budget_usd`` for the spend ceiling, and ``resilience=True`` (or a
    :class:`~repro.serving.resilience.ResilienceConfig`) for transient-
    failure handling — backoff retries, per-model circuit breakers and
    the graceful-degradation fallback chain. When both the cache and
    resilience layers are installed, the resilience layer's last-resort
    fallback reads (without mutating) the same semantic cache. The metrics
    layer is always installed so ``stats`` reflects the terminal traffic.
    """
    if max_retries > 0 and min_confidence is None and validator is None:
        raise ValueError(
            "max_retries > 0 needs min_confidence or validator — with no "
            "acceptance criterion no retry layer would be installed"
        )
    stats = stats if stats is not None else ServiceStats()
    cache_obj: Optional[SemanticCache] = None
    if isinstance(cache, SemanticCache):
        cache_obj = cache
    elif cache is not None and cache is not False:
        cache_obj = SemanticCache()
    layers: List[str] = [type(client).__name__, "metrics"]
    provider: CompletionProvider = MetricsMiddleware(client, stats=stats)
    if budget_usd is not None:
        provider = BudgetMiddleware(provider, budget_usd, stats=stats)
        layers.append("budget")
    if resilience:
        provider = ResilienceMiddleware(
            provider,
            config=resilience if isinstance(resilience, ResilienceConfig) else None,
            fallback_cache=cache_obj,
            cache_key_fn=cache_key_fn,
            stats=stats,
        )
        layers.append("resilience")
    if max_retries > 0:
        provider = RetryMiddleware(
            provider,
            max_retries=max_retries,
            min_confidence=min_confidence,
            validator=validator,
            stats=stats,
        )
        layers.append("retry")
    if chain is not None or decision_models is not None:
        provider = CascadeMiddleware(
            provider,
            chain=chain if chain is not None else DEFAULT_CHAIN,
            decision_models=decision_models,
            stats=stats,
        )
        layers.append("cascade")
    if cache_obj is not None:
        provider = SemanticCacheMiddleware(
            provider,
            cache=cache_obj,
            key_fn=cache_key_fn,
            cache_kind=cache_kind,
            stats=stats,
        )
        layers.append("cache")
    return ServingStack(provider, stats, list(reversed(layers)))
