"""Stack composition: one call site to assemble a serving pipeline.

:func:`build_stack` wires the standard layer order

    cache → cascade → retry → resilience → budget → metrics → client

installing only the layers asked for, and shares one
:class:`~repro.serving.stats.ServiceStats` across all of them. The result
is a :class:`ServingStack` — itself a
:class:`~repro.llm.provider.CompletionProvider`, so applications take it
anywhere they take a raw client. With no layers requested the stack is a
bare metrics observer over the client and behaves bit-identically to the
client itself.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.cache import SemanticCache
from repro.core.cascade import DEFAULT_CHAIN
from repro.llm.client import Completion
from repro.llm.provider import CompletionProvider
from repro.serving.middleware import (
    BudgetMiddleware,
    CascadeMiddleware,
    MetricsMiddleware,
    RetryMiddleware,
    SemanticCacheMiddleware,
)
from repro.serving.resilience import ResilienceConfig, ResilienceMiddleware
from repro.serving.stats import ServiceStats


class ServingStack:
    """A composed middleware pipeline, usable anywhere a provider is.

    With ``build_stack(durable_dir=...)`` the stack additionally carries a
    :class:`~repro.durability.StackDurability`: every acknowledged request
    is journaled, :meth:`checkpoint` snapshots the full stateful surface
    (cache, ledgers, meter, stats) atomically, and :meth:`recover` —
    called automatically at build time — restores the last checkpoint and
    replays the journal to the exact pre-crash state.
    """

    def __init__(
        self,
        provider: CompletionProvider,
        stats: ServiceStats,
        layers: Sequence[str],
    ) -> None:
        self.provider = provider
        self.stats = stats
        self.layers = list(layers)
        self.durability = None  # set by build_stack(durable_dir=...)

    def complete(self, prompt: str, model: Optional[str] = None) -> Completion:
        completion = self.provider.complete(prompt, model=model)
        if self.durability is not None:
            self.durability.record_complete(prompt, model)
        return completion

    def complete_batch(
        self,
        shared_prefix: str,
        items: List[str],
        model: Optional[str] = None,
    ) -> List[Completion]:
        completions = self.provider.complete_batch(shared_prefix, items, model=model)
        if self.durability is not None:
            self.durability.record_complete_batch(shared_prefix, items, model)
        return completions

    def embed(self, text: str) -> np.ndarray:
        return self.provider.embed(text)

    def begin_batch(self, prompts: Sequence[str], model: Optional[str] = None) -> None:
        """Forward a scheduler's batch announcement to the layers (see
        :meth:`repro.serving.middleware.Middleware.begin_batch`). Not
        journaled — it changes no state the replay path depends on."""
        begin = getattr(self.provider, "begin_batch", None)
        if begin is not None:
            begin(prompts, model)

    def end_batch(self) -> None:
        end = getattr(self.provider, "end_batch", None)
        if end is not None:
            end()

    def reseeded(self, offset: int) -> "ServingStack":
        # Durability deliberately does not follow the clone: two journaling
        # stacks over one journal would double-record every redraw.
        if hasattr(self.provider, "reseeded"):
            return ServingStack(self.provider.reseeded(offset), self.stats, self.layers)
        return self

    # ------------------------------------------------------------ durability

    def checkpoint(self) -> str:
        """Snapshot the stack's state to the durable directory (and absorb
        the journal). Requires ``build_stack(durable_dir=...)``."""
        if self.durability is None:
            raise ValueError("stack has no durable directory (build_stack(durable_dir=...))")
        return self.durability.checkpoint()

    def recover(self) -> int:
        """Restore the last checkpoint and replay the journal; returns the
        number of replayed requests. Runs automatically at build time —
        call it again only after externally replacing the durable files."""
        if self.durability is None:
            raise ValueError("stack has no durable directory (build_stack(durable_dir=...))")
        return self.durability.recover()

    def concurrent(self, **kwargs: object) -> "ConcurrentStack":
        """Wrap this stack in a :class:`~repro.serving.concurrent.ConcurrentStack`.

        Keyword arguments are the scheduler knobs (``max_batch_size``,
        ``max_wait_ms``, ``workers``, ...); the returned facade shares this
        stack's :class:`ServiceStats`.
        """
        from repro.serving.concurrent import ConcurrentStack

        return ConcurrentStack(self, **kwargs)

    def describe(self) -> str:
        """The layer chain, outermost first (e.g. for example scripts)."""
        return " -> ".join(self.layers)

    def report(self) -> str:
        return self.stats.render()


def build_stack(
    client: CompletionProvider,
    *,
    cache: Union[SemanticCache, bool, None] = None,
    cache_key_fn: Optional[Callable[[str], str]] = None,
    cache_kind: str = "original",
    chain: Optional[Sequence[str]] = None,
    decision_models: Optional[Sequence[object]] = None,
    max_retries: int = 0,
    min_confidence: Optional[float] = None,
    validator: Optional[Callable[[Completion], bool]] = None,
    budget_usd: Optional[float] = None,
    resilience: Union[ResilienceConfig, bool, None] = None,
    stats: Optional[ServiceStats] = None,
    durable_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    durable_sync: bool = False,
) -> ServingStack:
    """Assemble a serving stack over ``client`` with the requested layers.

    Parameters mirror the middleware constructors: pass ``cache=True`` (or
    a configured :class:`SemanticCache`) for the cache layer, a model
    ``chain`` (and optional ``decision_models``) for the cascade,
    ``max_retries`` with ``min_confidence``/``validator`` for retries,
    ``budget_usd`` for the spend ceiling, and ``resilience=True`` (or a
    :class:`~repro.serving.resilience.ResilienceConfig`) for transient-
    failure handling — backoff retries, per-model circuit breakers and
    the graceful-degradation fallback chain. When both the cache and
    resilience layers are installed, the resilience layer's last-resort
    fallback reads (without mutating) the same semantic cache. The metrics
    layer is always installed so ``stats`` reflects the terminal traffic.

    ``durable_dir`` makes the stack's state survive restarts: requests are
    journaled there, ``checkpoint_every=N`` auto-snapshots after every N
    requests (``stack.checkpoint()`` does it on demand), and if the
    directory already holds state from a previous run it is **recovered
    before the first request** — warm-starting the cache, ledgers and
    stats to the exact pre-crash values (see :mod:`repro.durability`).
    Recovery requires rebuilding with the same layer composition and
    component configuration as the run that wrote the state.
    ``durable_sync=True`` additionally fsyncs every journal append and
    snapshot (real-crash durability at a latency cost).
    """
    if max_retries > 0 and min_confidence is None and validator is None:
        raise ValueError(
            "max_retries > 0 needs min_confidence or validator — with no "
            "acceptance criterion no retry layer would be installed"
        )
    stats = stats if stats is not None else ServiceStats()
    cache_obj: Optional[SemanticCache] = None
    if isinstance(cache, SemanticCache):
        cache_obj = cache
    elif cache is not None and cache is not False:
        cache_obj = SemanticCache()
    layers: List[str] = [type(client).__name__, "metrics"]
    provider: CompletionProvider = MetricsMiddleware(client, stats=stats)
    if budget_usd is not None:
        provider = BudgetMiddleware(provider, budget_usd, stats=stats)
        layers.append("budget")
    if resilience:
        provider = ResilienceMiddleware(
            provider,
            config=resilience if isinstance(resilience, ResilienceConfig) else None,
            fallback_cache=cache_obj,
            cache_key_fn=cache_key_fn,
            stats=stats,
        )
        layers.append("resilience")
    if max_retries > 0:
        provider = RetryMiddleware(
            provider,
            max_retries=max_retries,
            min_confidence=min_confidence,
            validator=validator,
            stats=stats,
        )
        layers.append("retry")
    if chain is not None or decision_models is not None:
        provider = CascadeMiddleware(
            provider,
            chain=chain if chain is not None else DEFAULT_CHAIN,
            decision_models=decision_models,
            stats=stats,
        )
        layers.append("cascade")
    if cache_obj is not None:
        provider = SemanticCacheMiddleware(
            provider,
            cache=cache_obj,
            key_fn=cache_key_fn,
            cache_kind=cache_kind,
            stats=stats,
        )
        layers.append("cache")
    stack = ServingStack(provider, stats, list(reversed(layers)))
    if durable_dir is not None:
        # Imported here: repro.durability depends on serving submodules, so
        # a module-level import would be cyclic at package-init time.
        from repro.durability import StackDurability

        stack.durability = StackDurability(
            stack, durable_dir, checkpoint_every=checkpoint_every, sync=durable_sync
        )
        stack.recover()
    elif checkpoint_every is not None:
        raise ValueError("checkpoint_every requires durable_dir")
    return stack
