"""ConcurrentStack: a serving stack behind the micro-batching scheduler.

The facade applications use when traffic comes from many threads: wrap any
provider (normally a composed :class:`~repro.serving.stack.ServingStack`),
``submit()`` requests for futures or ``complete_many()`` a whole workload,
and read the same :class:`~repro.serving.stats.ServiceStats` the stack's
middleware writes — now including batch-size and queue-depth distributions
from the scheduler.

>>> from repro.llm import LLMClient
>>> from repro.serving import ConcurrentStack, build_stack
>>> with ConcurrentStack(build_stack(LLMClient(), cache=True)) as served:
...     future = served.submit("Question: Who directed The Silent Mirror?")
...     text = future.result().text

Determinism: with the default ``workers=1`` the scheduler executes requests
in submission-index order, so ``complete_many(prompts)`` is bit-identical
to the serial ``[stack.complete(p) for p in prompts]`` loop no matter how
many submitter threads feed it. ``workers > 1`` overlaps batch execution
for wall-clock throughput; the locked hot state stays consistent but
stateful layers (cache contents, budget order) then evolve in arrival
order rather than submission order.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.serving.scheduler import BatchingScheduler
from repro.serving.stats import ServiceStats

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    import numpy as np

    from repro.llm.client import Completion
    from repro.llm.provider import CompletionProvider


class ConcurrentStack:
    """Thread-safe ``submit()/complete_many()`` facade over a provider.

    Scheduler knobs (``max_batch_size``, ``max_wait_ms``, ``workers``,
    ``max_queue``, ``combine``, ``seed_stride``) are forwarded to
    :class:`~repro.serving.scheduler.BatchingScheduler`; ``stats`` defaults
    to the wrapped stack's own instance so scheduler and middleware
    counters land in one snapshot.
    """

    def __init__(
        self,
        stack: "CompletionProvider",
        *,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        workers: int = 1,
        max_queue: int = 1024,
        combine: bool = False,
        seed_stride: int = 0,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        self.stack = stack
        if stats is None:
            stats = getattr(stack, "stats", None) or ServiceStats()
        self.stats = stats
        self.scheduler = BatchingScheduler(
            stack,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            workers=workers,
            max_queue=max_queue,
            combine=combine,
            seed_stride=seed_stride,
            stats=stats,
        )

    # ------------------------------------------------------------ requests

    def submit(self, prompt: str, model: Optional[str] = None) -> "Future[Completion]":
        """Enqueue one request; the future resolves in submission order."""
        return self.scheduler.submit(prompt, model=model)

    def complete(self, prompt: str, model: Optional[str] = None) -> "Completion":
        """Synchronous single request through the scheduler."""
        return self.submit(prompt, model=model).result()

    def complete_many(
        self,
        prompts: Sequence[str],
        model: Optional[str] = None,
        submitters: int = 1,
    ) -> List["Completion"]:
        """Answer a whole workload; results come back in ``prompts`` order.

        ``submitters`` client threads split the workload round-robin, each
        submitting with an explicit submission index so the scheduler
        coalesces in *logical* order however the threads interleave — with
        ``workers=1`` the result is bit-identical to the serial loop.
        The first failed request re-raises its exception.
        """
        if not prompts:
            return []
        submitters = max(1, min(submitters, len(prompts)))
        base = self.scheduler.reserve(len(prompts))
        futures: List[Optional[Future]] = [None] * len(prompts)

        def feed(offset: int) -> None:
            for i in range(offset, len(prompts), submitters):
                futures[i] = self.scheduler.submit(prompts[i], model=model, index=base + i)

        if submitters == 1:
            feed(0)
        else:
            threads = [
                threading.Thread(target=feed, args=(offset,), daemon=True)
                for offset in range(submitters)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return [future.result() for future in futures]

    def embed(self, text: str) -> "np.ndarray":
        return self.stack.embed(text)

    # ------------------------------------------------------------ lifecycle

    def close(self, wait: bool = True) -> None:
        """Drain the queue and stop the scheduler threads."""
        self.scheduler.close(wait=wait)

    def __enter__(self) -> "ConcurrentStack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ reporting

    def describe(self) -> str:
        """The pipeline with the scheduler stage prepended."""
        inner = self.stack.describe() if hasattr(self.stack, "describe") else type(self.stack).__name__
        scheduler = self.scheduler
        return (
            f"scheduler(batch={scheduler.max_batch_size}, "
            f"workers={scheduler.workers}) -> {inner}"
        )

    def report(self) -> str:
        return self.stats.render()
