"""Per-layer counters for a serving stack.

One :class:`ServiceStats` instance is shared by every middleware in a
stack; each layer writes only its own counters, so a snapshot reads like a
cross-section of the pipeline: how much traffic the cache absorbed, how far
the cascade escalated, how many rejected completions were re-drawn, and
what the terminal client actually billed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.llm.client import Usage


@dataclass
class ServiceStats:
    """Counters recorded by the middleware layers of one serving stack."""

    # Terminal layer (MetricsMiddleware): what reached the LLM service.
    llm_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    latency_ms: float = 0.0
    per_model: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # Cache layer.
    cache_lookups: int = 0
    cache_reuse_hits: int = 0
    cache_augment_hits: int = 0
    cache_misses: int = 0
    cache_cost_saved: float = 0.0
    # Wall-clock spent inside the cache layer itself (vector-index probes
    # and admission-gated inserts) — the serving-side view of the hot path
    # that benchmarks/bench_perf_hotpaths.py measures in isolation.
    cache_lookup_ms: float = 0.0
    cache_put_ms: float = 0.0

    # Cascade layer.
    cascade_requests: int = 0
    escalations: int = 0
    answered_by: Dict[str, int] = field(default_factory=dict)

    # Retry layer.
    retry_requests: int = 0
    retries: int = 0
    retry_rescues: int = 0

    # Budget layer.
    budget_limit_usd: Optional[float] = None
    budget_spent_usd: float = 0.0
    budget_rejections: int = 0

    # ------------------------------------------------------------ recording

    def record_llm_call(
        self, model: str, usage: Usage, cost: float, latency_ms: float
    ) -> None:
        """Accumulate one request that actually hit the terminal client."""
        self.llm_calls += 1
        self.prompt_tokens += usage.prompt_tokens
        self.completion_tokens += usage.completion_tokens
        self.cost_usd += cost
        self.latency_ms += latency_ms
        entry = self.per_model.setdefault(
            model, {"calls": 0, "prompt_tokens": 0, "completion_tokens": 0, "cost": 0.0}
        )
        entry["calls"] += 1
        entry["prompt_tokens"] += usage.prompt_tokens
        entry["completion_tokens"] += usage.completion_tokens
        entry["cost"] += cost

    # ------------------------------------------------------------ reading

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return (self.cache_reuse_hits + self.cache_augment_hits) / self.cache_lookups

    @property
    def cache_mean_lookup_ms(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_lookup_ms / self.cache_lookups

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot, layer by layer (stable keys for reports)."""
        return {
            "llm": {
                "calls": self.llm_calls,
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.completion_tokens,
                "cost_usd": round(self.cost_usd, 6),
                "latency_ms": round(self.latency_ms, 2),
                "per_model": {m: dict(e) for m, e in sorted(self.per_model.items())},
            },
            "cache": {
                "lookups": self.cache_lookups,
                "reuse_hits": self.cache_reuse_hits,
                "augment_hits": self.cache_augment_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
                "cost_saved_usd": round(self.cache_cost_saved, 6),
                "lookup_ms": round(self.cache_lookup_ms, 3),
                "mean_lookup_ms": round(self.cache_mean_lookup_ms, 4),
                "put_ms": round(self.cache_put_ms, 3),
            },
            "cascade": {
                "requests": self.cascade_requests,
                "escalations": self.escalations,
                "answered_by": dict(sorted(self.answered_by.items())),
            },
            "retry": {
                "requests": self.retry_requests,
                "retries": self.retries,
                "rescues": self.retry_rescues,
            },
            "budget": {
                "limit_usd": self.budget_limit_usd,
                "spent_usd": round(self.budget_spent_usd, 6),
                "rejections": self.budget_rejections,
            },
        }

    def reset(self) -> None:
        """Zero every counter (budget limit included)."""
        fresh = ServiceStats()
        for name in fresh.__dataclass_fields__:
            setattr(self, name, getattr(fresh, name))

    def render(self) -> str:
        """Human-readable per-layer report (rendered by the bench layer)."""
        from repro.bench.reporting import render_service_stats

        return render_service_stats(self)
