"""Per-layer counters for a serving stack.

One :class:`ServiceStats` instance is shared by every middleware in a
stack; each layer writes only its own counters, so a snapshot reads like a
cross-section of the pipeline: how much traffic the cache absorbed, how far
the cascade escalated, how many rejected completions were re-drawn, and
what the terminal client actually billed.

Stacks may be driven from many threads at once (see
:mod:`repro.serving.scheduler`), so the instance carries one re-entrant
``lock`` that every writer takes around its counter updates. Latency is
additionally tracked as a :class:`LatencyHistogram` of the *simulated*
per-completion latencies — fixed log-spaced buckets, so p50/p95/p99 are
deterministic functions of the recorded values with no wall-clock
nondeterminism — and the batching scheduler records its batch-size and
queue-depth distributions here as well.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.llm.client import Usage


class LatencyHistogram:
    """Fixed-bucket latency reservoir with deterministic percentiles.

    Buckets are log-spaced (``start_ms * growth**i``), chosen once at
    construction, so the histogram of a given multiset of samples — and
    therefore every percentile read — is identical no matter the order or
    thread the samples arrived in. Percentiles are reported as the upper
    edge of the first bucket covering the requested rank (a conservative,
    reproducible estimate; no interpolation, no wall clock).
    """

    def __init__(self, start_ms: float = 0.01, growth: float = 1.5, n_buckets: int = 56) -> None:
        if start_ms <= 0 or growth <= 1.0 or n_buckets <= 0:
            raise ValueError("need start_ms > 0, growth > 1, n_buckets > 0")
        self.edges: List[float] = [start_ms * growth**i for i in range(n_buckets)]
        self.counts: List[int] = [0] * (n_buckets + 1)  # final bucket: overflow
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def record(self, latency_ms: float) -> None:
        """Add one sample (not thread-safe by itself — callers hold the
        owning :class:`ServiceStats` lock)."""
        value = max(0.0, float(latency_ms))
        lo, hi = 0, len(self.edges)
        while lo < hi:  # first bucket whose upper edge covers the value
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.total += 1
        self.sum_ms += value
        if value > self.max_ms:
            self.max_ms = value

    def percentile(self, p: float) -> float:
        """The upper bucket edge covering the ``p``-th percentile rank,
        clamped to the observed maximum (both are order-independent, so the
        estimate stays deterministic and never undershoots the true value)."""
        if self.total == 0:
            return 0.0
        rank = max(1, int(-(-(p / 100.0) * self.total // 1)))  # ceil, no floats in rank
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                edge = self.edges[i] if i < len(self.edges) else self.max_ms
                return min(edge, self.max_ms)
        return self.max_ms

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.total if self.total else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.total,
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.percentile(50), 4),
            "p95_ms": round(self.percentile(95), 4),
            "p99_ms": round(self.percentile(99), 4),
            "max_ms": round(self.max_ms, 4),
        }


@dataclass
class ServiceStats:
    """Counters recorded by the middleware layers of one serving stack."""

    # Terminal layer (MetricsMiddleware): what reached the LLM service.
    llm_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    latency_ms: float = 0.0
    per_model: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Distribution of simulated per-completion latencies (deterministic).
    latency_hist: LatencyHistogram = field(default_factory=LatencyHistogram, compare=False)

    # Cache layer.
    cache_lookups: int = 0
    cache_reuse_hits: int = 0
    cache_augment_hits: int = 0
    cache_misses: int = 0
    cache_cost_saved: float = 0.0
    # Wall-clock spent inside the cache layer itself (vector-index probes
    # and admission-gated inserts) — the serving-side view of the hot path
    # that benchmarks/bench_perf_hotpaths.py measures in isolation.
    cache_lookup_ms: float = 0.0
    cache_put_ms: float = 0.0

    # Cascade layer.
    cascade_requests: int = 0
    escalations: int = 0
    answered_by: Dict[str, int] = field(default_factory=dict)

    # Retry layer.
    retry_requests: int = 0
    retries: int = 0
    retry_rescues: int = 0

    # Budget layer.
    budget_limit_usd: Optional[float] = None
    budget_spent_usd: float = 0.0
    budget_rejections: int = 0

    # Resilience layer (repro.serving.resilience): failure handling.
    transient_errors: int = 0
    transient_errors_by_kind: Dict[str, int] = field(default_factory=dict)
    resilience_retries: int = 0
    resilience_recoveries: int = 0  # requests saved by a backoff retry
    backoff_ms: float = 0.0  # simulated backoff + wasted-attempt time
    breaker_opens: int = 0
    breaker_probes: int = 0  # half-open trial requests let through
    breaker_closes: int = 0
    breaker_short_circuits: int = 0  # requests fast-failed to fallback
    fallback_model_answers: int = 0
    fallback_cache_answers: int = 0
    resilience_exhausted: int = 0  # typed error: every recovery failed

    # Scheduler (repro.serving.scheduler): coalescing behavior under load.
    scheduler_submitted: int = 0
    scheduler_completed: int = 0
    scheduler_batches: int = 0
    scheduler_batch_sizes: Dict[int, int] = field(default_factory=dict)
    scheduler_queue_depths: Dict[int, int] = field(default_factory=dict)

    # Gateway (repro.serving.gateway): admission control under overload.
    gateway_submitted: int = 0
    gateway_completed: int = 0
    gateway_shed: int = 0  # expired requests dropped (includes shed_at_submit)
    gateway_shed_at_submit: int = 0  # arrived already expired, never queued
    gateway_degraded: int = 0  # expired in queue, answered via resilience chain
    gateway_late: int = 0  # full answer delivered after its deadline
    gateway_backpressure_waits: int = 0  # submits parked on a full class queue
    # Per-priority-class breakdown: class -> counter dict.
    gateway_by_class: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Queue-wait distribution (enqueue -> dispatch/shed), wall-clock ms.
    gateway_queue_wait_hist: LatencyHistogram = field(
        default_factory=LatencyHistogram, compare=False
    )

    # One lock shared by every layer of the stack; `reset()` deliberately
    # keeps it (replacing a held lock would break mutual exclusion).
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    # Layers holding authoritative state outside this object (the budget
    # ledger) register a hook here; `reset()` calls the hooks after zeroing
    # so published counters re-sync with enforcement instead of silently
    # desyncing until the next update.
    _reset_hooks: List[Callable[[], None]] = field(
        default_factory=list, repr=False, compare=False
    )
    # Per-tenant namespaces (see :meth:`tenant`): child ServiceStats keyed
    # by tenant name, registered lazily by the multi-tenant cluster. Like
    # the lock and the hooks, the registry itself survives `reset()` — but
    # every child is reset *with* the parent, so a cluster-level reset can
    # never leak stale tenant counters (namespaces registered after
    # construction included; see the reset() loop).
    _tenants: Dict[str, "ServiceStats"] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------ locking

    @property
    def lock(self) -> threading.RLock:
        """The stats lock; middleware holds it around counter updates."""
        return self._lock

    def tenant(self, name: str) -> "ServiceStats":
        """The per-tenant namespace for ``name`` (created on first use).

        Namespaces are plain child :class:`ServiceStats` instances: the
        serving cluster records a tenant's cache traffic, LLM calls and
        budget state into its namespace with the same record methods the
        middleware uses, and :meth:`snapshot`/:meth:`render` thread a
        ``tenant=`` dimension through the report. Children reset with the
        parent (see :meth:`reset`)."""
        with self._lock:
            child = self._tenants.get(name)
            if child is None:
                child = ServiceStats()
                self._tenants[name] = child
            return child

    def tenant_names(self) -> List[str]:
        """Registered tenant namespaces, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def register_reset_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every :meth:`reset` (outside the stats lock),
        so a layer can re-publish externally held state — e.g. the budget
        middleware re-publishes its ledger, keeping reports in sync with
        enforcement across resets."""
        with self._lock:
            self._reset_hooks.append(hook)

    # ------------------------------------------------------------ recording

    def record_llm_call(
        self, model: str, usage: Usage, cost: float, latency_ms: float
    ) -> None:
        """Accumulate one request that actually hit the terminal client."""
        with self._lock:
            self.llm_calls += 1
            self.prompt_tokens += usage.prompt_tokens
            self.completion_tokens += usage.completion_tokens
            self.cost_usd += cost
            self.latency_ms += latency_ms
            self.latency_hist.record(latency_ms)
            entry = self.per_model.setdefault(
                model, {"calls": 0, "prompt_tokens": 0, "completion_tokens": 0, "cost": 0.0}
            )
            entry["calls"] += 1
            entry["prompt_tokens"] += usage.prompt_tokens
            entry["completion_tokens"] += usage.completion_tokens
            entry["cost"] += cost

    def record_submit(self) -> None:
        """One request accepted by the batching scheduler."""
        with self._lock:
            self.scheduler_submitted += 1

    def record_completion(self) -> None:
        """One scheduler-managed future resolved."""
        with self._lock:
            self.scheduler_completed += 1

    def record_batch(self, size: int, queue_depth: int) -> None:
        """One coalesced batch dispatched; sizes/depths feed ``report()``."""
        with self._lock:
            self.scheduler_batches += 1
            self.scheduler_batch_sizes[size] = self.scheduler_batch_sizes.get(size, 0) + 1
            self.scheduler_queue_depths[queue_depth] = (
                self.scheduler_queue_depths.get(queue_depth, 0) + 1
            )

    def _gateway_class(self, priority: str) -> Dict[str, int]:
        """Per-class counter bucket; caller holds the lock."""
        bucket = self.gateway_by_class.get(priority)
        if bucket is None:
            bucket = {"submitted": 0, "completed": 0, "shed": 0, "degraded": 0, "late": 0}
            self.gateway_by_class[priority] = bucket
        return bucket

    def record_gateway_submit(self, priority: str) -> None:
        """One request entered the gateway (counted before admission)."""
        with self._lock:
            self.gateway_submitted += 1
            self._gateway_class(priority)["submitted"] += 1

    def record_gateway_backpressure(self) -> None:
        """One submit parked on a full per-class admission queue."""
        with self._lock:
            self.gateway_backpressure_waits += 1

    def record_gateway_outcome(
        self,
        priority: str,
        status: str,
        queue_wait_ms: float = 0.0,
        late: bool = False,
    ) -> None:
        """Terminal gateway outcome for one request.

        ``status`` is one of ``ok`` (full answer), ``degraded`` (expired in
        queue, answered via the resilience fallback chain), ``shed``
        (expired in queue, dropped), ``shed_at_submit`` (arrived already
        expired) or ``error`` (backend raised)."""
        with self._lock:
            bucket = self._gateway_class(priority)
            self.gateway_queue_wait_hist.record(queue_wait_ms)
            if status == "ok":
                self.gateway_completed += 1
                bucket["completed"] += 1
            elif status == "degraded":
                self.gateway_degraded += 1
                bucket["degraded"] += 1
            elif status == "shed":
                self.gateway_shed += 1
                bucket["shed"] += 1
            elif status == "shed_at_submit":
                self.gateway_shed += 1
                self.gateway_shed_at_submit += 1
                bucket["shed"] += 1
            if late:
                self.gateway_late += 1
                bucket["late"] += 1

    # ------------------------------------------------------------ reading

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return (self.cache_reuse_hits + self.cache_augment_hits) / self.cache_lookups

    @property
    def cache_mean_lookup_ms(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_lookup_ms / self.cache_lookups

    @property
    def mean_batch_size(self) -> float:
        if self.scheduler_batches == 0:
            return 0.0
        total = sum(size * count for size, count in self.scheduler_batch_sizes.items())
        return total / self.scheduler_batches

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot, layer by layer (stable keys for reports).

        When per-tenant namespaces are registered (see :meth:`tenant`) the
        snapshot carries an additional ``"tenants"`` section mapping each
        tenant name to its own full snapshot."""
        with self._lock:
            tenants = dict(sorted(self._tenants.items()))
        tenant_section = {name: child.snapshot() for name, child in tenants.items()}
        with self._lock:
            out: Dict[str, object] = {
                "llm": {
                    "calls": self.llm_calls,
                    "prompt_tokens": self.prompt_tokens,
                    "completion_tokens": self.completion_tokens,
                    "cost_usd": round(self.cost_usd, 6),
                    "latency_ms": round(self.latency_ms, 2),
                    "per_model": {m: dict(e) for m, e in sorted(self.per_model.items())},
                },
                "latency": self.latency_hist.snapshot(),
                "cache": {
                    "lookups": self.cache_lookups,
                    "reuse_hits": self.cache_reuse_hits,
                    "augment_hits": self.cache_augment_hits,
                    "misses": self.cache_misses,
                    "hit_rate": round(self.cache_hit_rate, 4),
                    "cost_saved_usd": round(self.cache_cost_saved, 6),
                    "lookup_ms": round(self.cache_lookup_ms, 3),
                    "mean_lookup_ms": round(self.cache_mean_lookup_ms, 4),
                    "put_ms": round(self.cache_put_ms, 3),
                },
                "cascade": {
                    "requests": self.cascade_requests,
                    "escalations": self.escalations,
                    "answered_by": dict(sorted(self.answered_by.items())),
                },
                "retry": {
                    "requests": self.retry_requests,
                    "retries": self.retries,
                    "rescues": self.retry_rescues,
                },
                "budget": {
                    "limit_usd": self.budget_limit_usd,
                    "spent_usd": round(self.budget_spent_usd, 6),
                    "rejections": self.budget_rejections,
                },
                "resilience": {
                    "transient_errors": self.transient_errors,
                    "by_kind": dict(sorted(self.transient_errors_by_kind.items())),
                    "retries": self.resilience_retries,
                    "recoveries": self.resilience_recoveries,
                    "backoff_ms": round(self.backoff_ms, 3),
                    "breaker_opens": self.breaker_opens,
                    "breaker_probes": self.breaker_probes,
                    "breaker_closes": self.breaker_closes,
                    "breaker_short_circuits": self.breaker_short_circuits,
                    "fallback_model_answers": self.fallback_model_answers,
                    "fallback_cache_answers": self.fallback_cache_answers,
                    "exhausted": self.resilience_exhausted,
                },
                "scheduler": {
                    "submitted": self.scheduler_submitted,
                    "completed": self.scheduler_completed,
                    "batches": self.scheduler_batches,
                    "mean_batch_size": round(self.mean_batch_size, 4),
                    "batch_sizes": {
                        str(k): v for k, v in sorted(self.scheduler_batch_sizes.items())
                    },
                    "queue_depths": {
                        str(k): v for k, v in sorted(self.scheduler_queue_depths.items())
                    },
                },
                "gateway": {
                    "submitted": self.gateway_submitted,
                    "completed": self.gateway_completed,
                    "shed": self.gateway_shed,
                    "shed_at_submit": self.gateway_shed_at_submit,
                    "degraded": self.gateway_degraded,
                    "late": self.gateway_late,
                    "backpressure_waits": self.gateway_backpressure_waits,
                    "queue_wait": self.gateway_queue_wait_hist.snapshot(),
                    "by_class": {
                        cls: dict(counters)
                        for cls, counters in sorted(self.gateway_by_class.items())
                    },
                },
            }
        if tenant_section:
            out["tenants"] = tenant_section
        return out

    def reset(self) -> None:
        """Zero every counter; the lock, hooks and tenant registry survive.

        Layers holding authoritative state elsewhere (see
        :meth:`register_reset_hook`) then re-publish it, so e.g.
        ``budget_spent_usd`` reflects the live ledger — which resets do
        *not* clear — rather than reading zero until the next charge.

        Per-tenant namespaces (:meth:`tenant`) are reset recursively —
        including ones registered *after* this instance was constructed —
        so a cluster-level reset can never leave a tenant reporting stale
        counters while the parent reads zero. The registry itself (and each
        child object identity) is kept: layers holding a namespace
        reference keep writing to the same, now-zeroed, instance."""
        fresh = ServiceStats()
        with self._lock:
            for name in fresh.__dataclass_fields__:
                if name in ("_lock", "_reset_hooks", "_tenants"):
                    continue
                setattr(self, name, getattr(fresh, name))
            hooks = list(self._reset_hooks)
            tenants = list(self._tenants.values())
        # Outside the stats lock: hooks take their own layer locks, and the
        # charge path acquires (layer lock -> stats lock) — holding the
        # stats lock here would invert that order and risk deadlock. Tenant
        # children likewise reset under their own locks.
        for child in tenants:
            child.reset()
        for hook in hooks:
            hook()

    def render(self) -> str:
        """Human-readable per-layer report (rendered by the bench layer)."""
        from repro.bench.reporting import render_service_stats

        return render_service_stats(self)
