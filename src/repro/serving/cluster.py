"""Sharded multi-tenant serving cluster.

One :class:`~repro.serving.stack.ServingStack` serves one logical client;
this module is the scale-out tier the LLM×DATA framing asks for — serving
as a shared, multi-user database-style workload:

* :class:`ClusterRouter` — a deterministic consistent-hash ring with
  virtual nodes. Routing is a pure function of the shard set, so two
  routers built from the same shard list agree on every key, and adding
  or removing a shard moves only ~K/N keys (the classic ring property;
  the hypothesis suite pins it).
* :class:`ShardedSemanticCache` — the semantic cache partitioned across
  shards. Each shard owns its entries and its vector index (built
  partition-aware via :class:`~repro.vectordb.PartitionSpec`, so index
  kind is chosen at partition-local scale); the router key is
  ``tenant|prompt-key``. Tenants are hard-partitioned: a probe scatters
  over the *probing tenant's* partitions only, merges per-shard winners
  by (similarity, global insertion order) — provably the same winner an
  unsharded per-tenant cache would pick — and applies exactly one hit to
  the winning partition. Cross-tenant reads happen only through a
  :class:`~repro.core.privacy.CacheSharingGate`, read-only, and never
  mutate the owner's cache state.
* :class:`ServingCluster` — N stack replicas behind the router, one
  dispatch worker per shard (requests for one key always land on one
  shard, so per-key order is preserved while shards overlap), per-tenant
  budgets/quotas enforced at the front door, and per-tenant
  :class:`~repro.serving.stats.ServiceStats` namespaces threaded through
  ``snapshot()``/``report()``.

Determinism: completions are pure functions of (prompt, model, seed) and
every replica is built by the same factory, so a cluster at any shard
count serves byte-identical completions to the single-stack (1-shard)
reference on the same request stream — as long as the workload's semantic
matches stay within a key (exact repeats; the bench asserts diverged=0).

>>> from repro.serving.cluster import ServingCluster, TenantPolicy
>>> cluster = ServingCluster(n_shards=4, cache=True)
>>> cluster.set_policy("acme", TenantPolicy(budget_usd=1.0))
>>> completion = cluster.complete("Question: What is 2+2?", tenant="acme")
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cache import CacheEntry, CacheStats, EvictionPolicy, SemanticCache
from repro.core.privacy.sharing import CacheSharingGate
from repro.errors import BudgetExceededError, QuotaExceededError
from repro.llm.client import Completion, Usage
from repro.llm.embeddings import EmbeddingModel
from repro.llm.provider import CompletionProvider, make_client
from repro.serving.stack import ServingStack, build_stack
from repro.serving.stats import ServiceStats
from repro.vectordb.partition import PartitionSpec

DEFAULT_TENANT = "default"
_SEQ_INF = float("inf")


def _stable_hash(text: str) -> int:
    """64-bit stable hash (blake2b) — identical across processes/runs,
    unlike Python's salted ``hash()``."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ClusterRouter:
    """Consistent-hash request router with virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit ring; a key is
    owned by the first shard point clockwise of its hash. Because a
    shard's points depend only on its own name, adding or removing a
    shard leaves every other point fixed — only the keys that fall into
    the changed arcs move (expected K/N of them).
    """

    def __init__(self, shards: Sequence[str], vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        names = list(dict.fromkeys(shards))
        if not names:
            raise ValueError("need at least one shard")
        if len(names) != len(shards):
            raise ValueError("shard names must be unique")
        self.vnodes = vnodes
        self._shards: List[str] = []
        self._ring: List[Tuple[int, str]] = []  # (point, shard), sorted
        for name in names:
            self.add_shard(name)

    # ------------------------------------------------------------ topology

    @property
    def shards(self) -> List[str]:
        """Shard names in registration order (deterministic)."""
        return list(self._shards)

    def _points(self, shard: str) -> List[int]:
        return [_stable_hash(f"{shard}#vnode{i}") for i in range(self.vnodes)]

    def add_shard(self, shard: str) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already registered")
        self._shards.append(shard)
        for point in self._points(shard):
            bisect.insort(self._ring, (point, shard))

    def remove_shard(self, shard: str) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not registered")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard)
        self._ring = [(point, name) for point, name in self._ring if name != shard]

    # ------------------------------------------------------------- routing

    def route(self, key: str) -> str:
        """The shard owning ``key`` (first ring point clockwise)."""
        point = _stable_hash(key)
        index = bisect.bisect_right(self._ring, (point, "￿"))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def route_request(self, tenant: str, key: str) -> str:
        """Route a tenant-scoped request key (``tenant|key``)."""
        return self.route(f"{tenant}|{key}")

    def clone(self) -> "ClusterRouter":
        """An independent router with the identical ring (same routes)."""
        return ClusterRouter(self._shards, vnodes=self.vnodes)

    def describe(self) -> str:
        return f"ring({len(self._shards)} shards x {self.vnodes} vnodes)"


# ===========================================================================
# Sharded semantic cache
# ===========================================================================


@dataclass
class ClusterLookup:
    """Result of one sharded, tenant-scoped cache probe."""

    tier: str  # 'reuse' | 'augment' | 'miss'
    entry: Optional[CacheEntry] = None
    similarity: float = 0.0
    shard: Optional[str] = None
    owner_tenant: Optional[str] = None
    shared: bool = False  # served from another tenant's cache via the gate


class ShardedSemanticCache:
    """A :class:`~repro.core.cache.SemanticCache` partitioned over shards.

    Entries are owned by ``router.route(tenant|key)``; each (shard,
    tenant) pair holds an independent :class:`SemanticCache` partition
    whose vector index is built partition-aware (sized to the shard's
    share of ``tenant_capacity`` via :class:`~repro.vectordb.PartitionSpec`).
    All partitions share one embedder, so a key is feature-hashed once
    cluster-wide.

    A probe scatters read-only (:meth:`SemanticCache.peek`) over the
    probing tenant's partitions and merges the per-shard winners by
    ``(similarity desc, global insertion seq asc)``. Within a shard,
    ``search_top1`` already returns the first-inserted of any equal-top
    group, and global order restricted to a shard preserves relative
    order — so the merged winner is exactly the entry a single
    per-tenant cache holding all the shards' entries would have matched.
    The winning partition then gets exactly one :meth:`touch_hit`.

    Isolation: a tenant's probe never reads another tenant's partitions
    unless a :class:`~repro.core.privacy.CacheSharingGate` explicitly
    allows the pair — and even then the read is via ``peek``, never
    mutating the owner's entries, clocks or stats.
    """

    def __init__(
        self,
        router: ClusterRouter,
        *,
        tenant_capacity: int = 4096,
        reuse_threshold: float = 0.95,
        augment_threshold: float = 0.75,
        policy: EvictionPolicy = EvictionPolicy.WEIGHTED,
        embedding_dim: int = 64,
        lrfu_lambda: float = 0.1,
        sharing: Optional[CacheSharingGate] = None,
    ) -> None:
        self.router = router
        self.reuse_threshold = reuse_threshold
        self.augment_threshold = augment_threshold
        self.policy = policy
        self.lrfu_lambda = lrfu_lambda
        self.sharing = sharing
        self.spec = PartitionSpec(
            dim=embedding_dim,
            total_capacity=tenant_capacity,
            n_partitions=len(router.shards),
        )
        self.embedder = EmbeddingModel(dim=embedding_dim)
        # shard -> tenant -> partition cache (partitions created on first put)
        self._partitions: Dict[str, Dict[str, SemanticCache]] = {
            shard: {} for shard in router.shards
        }
        # Global per-tenant insertion sequence, for cross-shard tie-breaks.
        self._seq: Dict[str, Dict[str, int]] = {}
        self._next_seq: Dict[str, int] = {}
        self.tenant_stats: Dict[str, CacheStats] = {}
        self.shared_hits: Dict[str, int] = {}
        self.shared_cost_saved: Dict[str, float] = {}
        # One lock over partition/seq/stats maps *and* each full probe or
        # put: scatter-merge plus the single touch_hit must be atomic so a
        # concurrent eviction can't invalidate the merged winner.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return sum(
                len(cache)
                for tenants in self._partitions.values()
                for cache in tenants.values()
            )

    # --------------------------------------------------------- partitions

    def _partition(
        self, shard: str, tenant: str, create: bool = False
    ) -> Optional[SemanticCache]:
        tenants = self._partitions[shard]
        cache = tenants.get(tenant)
        if cache is None and create:
            cache = SemanticCache(
                capacity=self.spec.partition_capacity,
                reuse_threshold=self.reuse_threshold,
                augment_threshold=self.augment_threshold,
                policy=self.policy,
                embedding_dim=self.spec.dim,
                lrfu_lambda=self.lrfu_lambda,
                index=self.spec.build_partition_index(),
            )
            cache.embedder = self.embedder  # one feature-hash memo cluster-wide
            tenants[tenant] = cache
        return cache

    def partitions_of(self, tenant: str) -> List[Tuple[str, SemanticCache]]:
        """The tenant's live partitions in shard registration order."""
        with self._lock:
            return [
                (shard, self._partitions[shard][tenant])
                for shard in self.router.shards
                if tenant in self._partitions[shard]
            ]

    def stats_for(self, tenant: str) -> CacheStats:
        with self._lock:
            return self.tenant_stats.setdefault(tenant, CacheStats())

    def entries_of(self, tenant: str) -> Dict[str, CacheEntry]:
        """All live entries of one tenant, keyed by cache key."""
        out: Dict[str, CacheEntry] = {}
        for _shard, cache in self.partitions_of(tenant):
            out.update(cache.entries)
        return out

    # ------------------------------------------------------------- probes

    def _scatter_best(
        self, tenant: str, key: str
    ) -> Optional[Tuple[float, str, SemanticCache, CacheEntry]]:
        """Best (similarity, shard, partition, entry) across the tenant's
        partitions, merged with the single-cache tie-break rule. Callers
        hold the sharded-cache lock."""
        seq_map = self._seq.get(tenant, {})
        best: Optional[Tuple[float, float, str, SemanticCache, CacheEntry]] = None
        for shard, cache in (
            (shard, self._partitions[shard][tenant])
            for shard in self.router.shards
            if tenant in self._partitions[shard]
        ):
            found = cache.peek(key)
            if found.entry is None:
                continue
            seq = seq_map.get(found.entry.key, _SEQ_INF)
            if (
                best is None
                or found.similarity > best[0]
                or (found.similarity == best[0] and seq < best[1])
            ):
                best = (found.similarity, seq, shard, cache, found.entry)
        if best is None:
            return None
        similarity, _seq, shard, cache, entry = best
        return similarity, shard, cache, entry

    def lookup(self, tenant: str, key: str) -> ClusterLookup:
        """Tenant-scoped probe; applies hit bookkeeping to the winner."""
        with self._lock:
            stats = self.tenant_stats.setdefault(tenant, CacheStats())
            stats.lookups += 1
            # Exact requery: the single-cache rule returns the key's own
            # entry before any similarity scan. A key normally lives on one
            # shard only; after a reshard it may sit on its old owner, so
            # scan all of the tenant's partitions (dict hits, O(shards)).
            for shard in self.router.shards:
                cache = self._partitions[shard].get(tenant)
                if cache is not None and key in cache:
                    entry = cache.touch_hit(key, "reuse")
                    stats.reuse_hits += 1
                    stats.cost_saved += entry.cost_of_miss
                    return ClusterLookup("reuse", entry, 1.0, shard, tenant)
            best = self._scatter_best(tenant, key)
            if best is not None:
                similarity, shard, cache, entry = best
                tier = "reuse" if similarity >= self.reuse_threshold else "augment"
                entry = cache.touch_hit(entry.key, tier)
                if tier == "reuse":
                    stats.reuse_hits += 1
                    stats.cost_saved += entry.cost_of_miss
                else:
                    stats.augment_hits += 1
                return ClusterLookup(tier, entry, similarity, shard, tenant)
            stats.misses += 1
            return self._shared_lookup(tenant, key)

    def _shared_lookup(self, tenant: str, key: str) -> ClusterLookup:
        """Cross-tenant fallback after an own-cache miss (lock held).

        Only *reuse*-tier matches are served across tenants — an augment
        hit would splice the owner's (query, answer) pair into the
        consumer's prompt, a much broader disclosure than replaying one
        vetted answer. The owner's cache is read via ``peek`` only."""
        gate = self.sharing
        if gate is None:
            return ClusterLookup("miss")
        for owner in gate.peers(tenant):
            if not gate.allows(tenant, owner):
                continue
            best = self._scatter_best(owner, key)
            if best is None:
                continue
            similarity, shard, _cache, entry = best
            if similarity < self.reuse_threshold:
                continue
            gate.record_share(tenant, owner)
            self.shared_hits[tenant] = self.shared_hits.get(tenant, 0) + 1
            self.shared_cost_saved[tenant] = (
                self.shared_cost_saved.get(tenant, 0.0) + entry.cost_of_miss
            )
            return ClusterLookup(
                "reuse", entry, similarity, shard, owner_tenant=owner, shared=True
            )
        return ClusterLookup("miss")

    # ------------------------------------------------------------- updates

    def put(
        self, tenant: str, key: str, response: str, kind: str = "original", cost: float = 0.0
    ) -> Optional[CacheEntry]:
        """Insert (or refresh) an entry in the owning shard's partition."""
        with self._lock:
            for shard in self.router.shards:
                cache = self._partitions[shard].get(tenant)
                if cache is not None and key in cache:
                    return cache.put(key, response, kind=kind, cost=cost)
            shard = self.router.route_request(tenant, key)
            cache = self._partition(shard, tenant, create=True)
            seq_map = self._seq.setdefault(tenant, {})
            seq_map[key] = self._next_seq.get(tenant, 0)
            self._next_seq[tenant] = seq_map[key] + 1
            # The seq map outlives evicted entries (ties only consult live
            # keys); prune it once it clearly outgrows the live set.
            if len(seq_map) > 4 * self.spec.total_capacity:
                live = set()
                for other in self.router.shards:
                    partition = self._partitions[other].get(tenant)
                    if partition is not None:
                        live.update(partition.entries)
                self._seq[tenant] = {k: v for k, v in seq_map.items() if k in live}
            return cache.put(key, response, kind=kind, cost=cost)

    def describe(self) -> str:
        return (
            f"sharded-cache[{self.router.describe()}, "
            f"{self.spec.describe()}, "
            f"{self.sharing.describe() if self.sharing else 'sharing: closed'}]"
        )


# ===========================================================================
# Tenant policies
# ===========================================================================


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant governance: a dollar budget and a request quota.

    ``budget_usd`` caps the tenant's *LLM spend* (cache hits are free and
    keep flowing after exhaustion, like
    :class:`~repro.serving.middleware.BudgetMiddleware` below the cache);
    ``max_requests`` caps total requests accepted, hits included."""

    budget_usd: Optional[float] = None
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.budget_usd is not None and self.budget_usd < 0:
            raise ValueError("budget_usd must be non-negative")
        if self.max_requests is not None and self.max_requests < 0:
            raise ValueError("max_requests must be non-negative")


@dataclass
class _TenantLedger:
    """Authoritative per-tenant accounting (survives stats resets)."""

    spent_usd: float = 0.0
    requests: int = 0
    rejections: int = 0
    llm_calls: int = 0
    cache_hits: int = 0


# ===========================================================================
# The cluster
# ===========================================================================


class _ShardWorker(threading.Thread):
    """One dispatch thread per shard: drains the shard's FIFO queue.

    Per-key order is preserved cluster-wide because the router sends every
    request for a key to the same shard, and this worker serves its queue
    in submission order."""

    def __init__(self, cluster: "ServingCluster", shard: str) -> None:
        super().__init__(daemon=True, name=f"shard-{shard}")
        self.cluster = cluster
        self.shard = shard
        self.requests: "queue.Queue[Optional[Tuple[str, str, Optional[str], Future]]]" = (
            queue.Queue()
        )

    def run(self) -> None:
        while True:
            item = self.requests.get()
            if item is None:
                return
            prompt, tenant, model, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(self.cluster._serve(prompt, tenant, model))
            except BaseException as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)


class ServingCluster:
    """N serving-stack replicas behind a consistent-hash router.

    ``provider_factory(shard_name)`` builds each replica's terminal
    provider; every factory call must construct an identically-seeded
    provider for the cluster to stay byte-equivalent to its single-shard
    reference. The semantic cache is cluster-level and sharded
    (:class:`ShardedSemanticCache`) — replicas themselves are built
    *without* a cache layer so hit accounting lives in exactly one place.

    Multi-tenancy: every request names a tenant. The front door enforces
    the tenant's :class:`TenantPolicy` (quota on accept, budget before
    dispatch), charges its ledger, and mirrors its traffic into a
    per-tenant :class:`ServiceStats` namespace (``stats.tenant(name)``),
    so ``snapshot()["tenants"]`` reads like one report per tenant.
    """

    def __init__(
        self,
        provider_factory: Optional[Callable[[str], CompletionProvider]] = None,
        *,
        n_shards: int = 2,
        shard_names: Optional[Sequence[str]] = None,
        vnodes: int = 64,
        cache: object = True,
        key_fn: Optional[Callable[[str], str]] = None,
        cache_kind: str = "original",
        tenant_capacity: int = 4096,
        reuse_threshold: float = 0.95,
        augment_threshold: float = 0.75,
        eviction_policy: EvictionPolicy = EvictionPolicy.WEIGHTED,
        sharing: Optional[CacheSharingGate] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        if shard_names is None:
            if n_shards <= 0:
                raise ValueError("n_shards must be positive")
            shard_names = [f"shard-{i}" for i in range(n_shards)]
        self.router = ClusterRouter(shard_names, vnodes=vnodes)
        self.stats = stats if stats is not None else ServiceStats()
        self.provider_factory = (
            provider_factory if provider_factory is not None else (lambda shard: make_client())
        )
        self.stacks: Dict[str, ServingStack] = {
            shard: build_stack(self.provider_factory(shard), stats=self.stats)
            for shard in self.router.shards
        }
        if isinstance(cache, ShardedSemanticCache):
            self.cache: Optional[ShardedSemanticCache] = cache
        elif cache:
            self.cache = ShardedSemanticCache(
                self.router,
                tenant_capacity=tenant_capacity,
                reuse_threshold=reuse_threshold,
                augment_threshold=augment_threshold,
                policy=eviction_policy,
                sharing=sharing,
            )
        else:
            self.cache = None
        self.key_fn = key_fn
        self.cache_kind = cache_kind
        self.default_policy = TenantPolicy()
        self._policies: Dict[str, TenantPolicy] = dict(policies or {})
        self._ledgers: Dict[str, _TenantLedger] = {}
        self._completions: Dict[Tuple[str, str], Completion] = {}
        self.requests_by_shard: Dict[str, int] = {shard: 0 for shard in self.router.shards}
        self._lock = threading.RLock()
        self._workers: Optional[Dict[str, _ShardWorker]] = None
        self._closed = False
        # Ledgers are authoritative; re-publish them into the (freshly
        # zeroed) tenant namespaces after every stats.reset() — the same
        # pattern BudgetMiddleware uses for its single-stack ledger.
        self.stats.register_reset_hook(self._republish_ledgers)

    # ----------------------------------------------------------- tenancy

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        with self._lock:
            self._policies[tenant] = policy
            ledger = self._ledgers.get(tenant)
        tstats = self.stats.tenant(tenant)
        with tstats.lock:
            tstats.budget_limit_usd = policy.budget_usd
            if ledger is not None:
                tstats.budget_spent_usd = ledger.spent_usd

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self.default_policy)

    def ledger_for(self, tenant: str) -> _TenantLedger:
        with self._lock:
            return self._ledgers.setdefault(tenant, _TenantLedger())

    def spent_usd(self, tenant: str) -> float:
        return self.ledger_for(tenant).spent_usd

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._ledgers)

    def _republish_ledgers(self) -> None:
        with self._lock:
            ledgers = dict(self._ledgers)
        for tenant, ledger in ledgers.items():
            tstats = self.stats.tenant(tenant)
            with tstats.lock:
                tstats.budget_limit_usd = self.policy_for(tenant).budget_usd
                tstats.budget_spent_usd = ledger.spent_usd
                tstats.budget_rejections = ledger.rejections

    # ----------------------------------------------------------- serving

    def _admit(self, tenant: str) -> _TenantLedger:
        """Quota check + request accounting (the front door)."""
        policy = self.policy_for(tenant)
        with self._lock:
            ledger = self._ledgers.setdefault(tenant, _TenantLedger())
            if policy.max_requests is not None and ledger.requests >= policy.max_requests:
                ledger.rejections += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} quota of {policy.max_requests} requests exhausted"
                )
            ledger.requests += 1
        return ledger

    def _replay(self, owner: str, entry: CacheEntry, similarity: float, shared: bool) -> Completion:
        marker: Dict[str, object] = {
            "tier": "reuse",
            "similarity": round(similarity, 6),
        }
        if shared:
            marker["shared_from"] = owner
        original = self._completions.get((owner, entry.key))
        if original is not None:
            metadata = dict(original.metadata)
            metadata["serving.cache"] = marker
            return original.with_usage(
                Usage(prompt_tokens=0, completion_tokens=0),
                0.0,
                latency_ms=0.0,
                metadata=metadata,
            )
        return Completion(
            text=entry.response,
            model="cache",
            usage=Usage(prompt_tokens=0, completion_tokens=0),
            cost=0.0,
            latency_ms=0.0,
            confidence=1.0,
            engine="cache",
            metadata={"serving.cache": marker},
        )

    def _serve(self, prompt: str, tenant: str, model: Optional[str]) -> Completion:
        ledger = self._admit(tenant)
        policy = self.policy_for(tenant)
        tstats = self.stats.tenant(tenant)
        key = self.key_fn(prompt) if self.key_fn is not None else prompt
        effective_prompt = prompt
        if self.cache is not None:
            probe_start = time.perf_counter()
            found = self.cache.lookup(tenant, key)
            probe_ms = (time.perf_counter() - probe_start) * 1000.0
            for section in (self.stats, tstats):
                with section.lock:
                    section.cache_lookups += 1
                    section.cache_lookup_ms += probe_ms
                    if found.tier == "reuse" and found.entry is not None:
                        section.cache_reuse_hits += 1
                        section.cache_cost_saved += found.entry.cost_of_miss
                    elif found.tier == "augment" and found.entry is not None:
                        section.cache_augment_hits += 1
                    else:
                        section.cache_misses += 1
            if found.tier == "reuse" and found.entry is not None:
                with self._lock:
                    ledger.cache_hits += 1
                return self._replay(
                    found.owner_tenant if found.owner_tenant is not None else tenant,
                    found.entry,
                    found.similarity,
                    found.shared,
                )
            if found.tier == "augment" and found.entry is not None:
                effective_prompt = (
                    f"Example: Question: {found.entry.key} "
                    f"Answer: {found.entry.response}\n" + prompt
                )
        if policy.budget_usd is not None:
            with self._lock:
                spent = ledger.spent_usd
                if spent >= policy.budget_usd:
                    ledger.rejections += 1
                    with tstats.lock:
                        tstats.budget_rejections += 1
                    raise BudgetExceededError(
                        f"tenant {tenant!r} budget ${policy.budget_usd:.4f} "
                        f"exhausted (spent ${spent:.4f})"
                    )
        shard = self.router.route_request(tenant, key)
        completion = self.stacks[shard].complete(effective_prompt, model=model)
        with self._lock:
            ledger.spent_usd += completion.cost
            ledger.llm_calls += 1
            self.requests_by_shard[shard] += 1
            spent = ledger.spent_usd
        with tstats.lock:
            tstats.budget_limit_usd = policy.budget_usd
            tstats.budget_spent_usd = spent
        tstats.record_llm_call(
            completion.model, completion.usage, completion.cost, completion.latency_ms
        )
        if self.cache is not None:
            put_start = time.perf_counter()
            admitted = self.cache.put(
                tenant, key, completion.text, kind=self.cache_kind, cost=completion.cost
            )
            put_ms = (time.perf_counter() - put_start) * 1000.0
            for section in (self.stats, tstats):
                with section.lock:
                    section.cache_put_ms += put_ms
            if admitted is not None:
                with self._lock:
                    self._completions[(tenant, key)] = completion
                    if len(self._completions) > 8 * self.cache.spec.total_capacity:
                        live = {
                            (t, k)
                            for t in list(self._ledgers)
                            for k in self.cache.entries_of(t)
                        }
                        self._completions = {
                            pair: c for pair, c in self._completions.items() if pair in live
                        }
        return completion

    def complete(
        self, prompt: str, tenant: str = DEFAULT_TENANT, model: Optional[str] = None
    ) -> Completion:
        """Serve one request inline on the calling thread (serial mode)."""
        return self._serve(prompt, tenant, model)

    # -------------------------------------------------------- concurrency

    def _ensure_workers(self) -> Dict[str, _ShardWorker]:
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            if self._workers is None:
                self._workers = {}
                for shard in self.router.shards:
                    worker = _ShardWorker(self, shard)
                    worker.start()
                    self._workers[shard] = worker
            return self._workers

    def submit(
        self, prompt: str, tenant: str = DEFAULT_TENANT, model: Optional[str] = None
    ) -> "Future[Completion]":
        """Enqueue one request on its shard's dispatch worker."""
        key = self.key_fn(prompt) if self.key_fn is not None else prompt
        shard = self.router.route_request(tenant, key)
        future: "Future[Completion]" = Future()
        self._ensure_workers()[shard].requests.put((prompt, tenant, model, future))
        return future

    def complete_many(
        self,
        requests: Sequence[Tuple[str, str]],
        model: Optional[str] = None,
    ) -> List[Completion]:
        """Serve ``(tenant, prompt)`` pairs across the shard workers;
        results come back in request order (first failure re-raises)."""
        futures = [self.submit(prompt, tenant=tenant, model=model) for tenant, prompt in requests]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Stop the shard workers (idempotent)."""
        with self._lock:
            workers, self._workers = self._workers, None
            self._closed = True
        if workers:
            for worker in workers.values():
                worker.requests.put(None)
            for worker in workers.values():
                worker.join()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------- reporting

    def describe(self) -> str:
        shard = self.router.shards[0]
        return (
            f"{self.router.describe()} -> {len(self.stacks)} x "
            f"[{self.stacks[shard].describe()}]"
            + (f" | {self.cache.describe()}" if self.cache is not None else "")
        )

    def report(self) -> str:
        return self.stats.render()

    def snapshot(self) -> Dict[str, object]:
        """Cluster snapshot: shared stack stats (with tenant namespaces)
        plus routing/tenancy dimensions the stacks can't see."""
        with self._lock:
            tenancy = {
                tenant: {
                    "requests": ledger.requests,
                    "llm_calls": ledger.llm_calls,
                    "cache_hits": ledger.cache_hits,
                    "spent_usd": round(ledger.spent_usd, 6),
                    "rejections": ledger.rejections,
                    "budget_usd": self.policy_for(tenant).budget_usd,
                    "quota": self.policy_for(tenant).max_requests,
                }
                for tenant, ledger in sorted(self._ledgers.items())
            }
            by_shard = dict(sorted(self.requests_by_shard.items()))
        out: Dict[str, object] = {
            "stats": self.stats.snapshot(),
            "tenancy": tenancy,
            "requests_by_shard": by_shard,
            "router": self.router.describe(),
        }
        if self.cache is not None and self.cache.sharing is not None:
            gate = self.cache.sharing
            out["sharing"] = {
                "ledger": gate.ledger(),
                "epsilon_spent": round(gate.epsilon_spent(), 6),
                "epsilon_budget": gate.epsilon_budget,
                "denied_budget": gate.denied_budget,
            }
        return out


__all__ = [
    "ClusterLookup",
    "ClusterRouter",
    "DEFAULT_TENANT",
    "ServingCluster",
    "ShardedSemanticCache",
    "TenantPolicy",
]
