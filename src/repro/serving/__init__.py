"""repro.serving — the composable LLM serving stack (Section III, unified).

The paper's Section III treats prompt/query/cache optimization and output
validation as layers a data-management system composes *around* an LLM
service. This package is that seam: a :class:`CompletionProvider` protocol
(the ``complete`` / ``complete_batch`` / ``embed`` surface of
:class:`~repro.llm.client.LLMClient`) plus middleware implementing each
optimization as a layer over any provider:

>>> from repro.llm import LLMClient
>>> from repro.serving import build_stack
>>> stack = build_stack(LLMClient(), cache=True, chain=("babbage-002", "gpt-4"))
>>> stack.describe()
'cache -> cascade -> metrics -> LLMClient'

Every application in :mod:`repro.apps` accepts any provider, so the same
workload runs against a bare client or a full cache→cascade→retry→budget
pipeline without code changes; :class:`ServiceStats` snapshots what each
layer did. A bare ``LLMClient`` *is* a valid provider and behaves
bit-identically with or without this package installed around it.

For traffic from many threads, :class:`ConcurrentStack` puts the
micro-batching :class:`BatchingScheduler` in front of any stack:
``submit()`` returns futures that resolve in submission order, and with
one dispatch worker a concurrent run is bit-identical to the serial loop.

Backends fail; :class:`ResilienceMiddleware` (``resilience=True`` in
:func:`build_stack`) absorbs :class:`~repro.errors.TransientLLMError`
failures with deterministic capped backoff, per-model circuit breakers
and a graceful-degradation fallback chain — see
:mod:`repro.serving.resilience` and the chaos benchmark in
:mod:`repro.bench.perf`.

One stack serves one client; :class:`ServingCluster`
(:mod:`repro.serving.cluster`) is the scale-out tier: N stack replicas
behind a consistent-hash :class:`ClusterRouter`, a sharded multi-tenant
semantic cache, and per-tenant budgets/quotas with ``tenant=``-namespaced
stats — byte-equivalent to the single stack at any shard count.
"""

from repro.llm.provider import CompletionProvider, ReseedableProvider, make_client
from repro.serving.cluster import (
    ClusterLookup,
    ClusterRouter,
    ServingCluster,
    ShardedSemanticCache,
    TenantPolicy,
)
from repro.serving.concurrent import ConcurrentStack
from repro.serving.gateway import (
    AsyncGateway,
    GatewayRequest,
    GatewayResult,
    GatewayTicket,
)
from repro.serving.middleware import (
    BudgetMiddleware,
    CascadeMiddleware,
    MetricsMiddleware,
    Middleware,
    RetryMiddleware,
    SemanticCacheMiddleware,
    last_question_key,
)
from repro.serving.resilience import ResilienceConfig, ResilienceMiddleware
from repro.serving.scheduler import BatchingScheduler, shared_prefix
from repro.serving.stack import ServingStack, build_stack
from repro.serving.stats import LatencyHistogram, ServiceStats

__all__ = [
    "AsyncGateway",
    "BatchingScheduler",
    "BudgetMiddleware",
    "CascadeMiddleware",
    "ClusterLookup",
    "ClusterRouter",
    "CompletionProvider",
    "ConcurrentStack",
    "GatewayRequest",
    "GatewayResult",
    "GatewayTicket",
    "LatencyHistogram",
    "MetricsMiddleware",
    "Middleware",
    "ReseedableProvider",
    "ResilienceConfig",
    "ResilienceMiddleware",
    "RetryMiddleware",
    "SemanticCacheMiddleware",
    "ServiceStats",
    "ServingCluster",
    "ServingStack",
    "ShardedSemanticCache",
    "TenantPolicy",
    "build_stack",
    "last_question_key",
    "make_client",
    "shared_prefix",
]
