"""Exception hierarchy shared across the :mod:`repro` library.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch a single base class at application boundaries while still being able to
distinguish failure modes programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLError(ReproError):
    """Base class for errors raised by the relational engine."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""


class SQLCatalogError(SQLError):
    """A referenced table or column does not exist (or already exists)."""


class SQLTypeError(SQLError):
    """An expression was applied to values of incompatible types."""


class SQLIntegrityError(SQLError):
    """A constraint (primary key, NOT NULL) would be violated."""


class SQLTransactionError(SQLError):
    """Invalid transaction state transition (e.g. COMMIT with no BEGIN)."""


class VectorDBError(ReproError):
    """Base class for vector database errors."""


class DimensionMismatchError(VectorDBError):
    """A vector's dimensionality does not match the collection's."""


class CollectionError(VectorDBError):
    """Invalid collection operation (duplicate id, unknown id, ...)."""


class LLMError(ReproError):
    """Base class for simulated-LLM errors."""


class UnknownModelError(LLMError):
    """The requested model name is not in the registry."""


class ContextLengthExceededError(LLMError):
    """The prompt exceeds the model's context window."""


class BudgetExceededError(LLMError):
    """A spending cap configured on the client would be exceeded."""


class ValidationError(ReproError):
    """An LLM output failed validation (Section III-E)."""


class TransformError(ReproError):
    """A data transformation (Section II-B) could not be applied."""


class PipelineError(ReproError):
    """Data-preparation pipeline search or execution failed."""
