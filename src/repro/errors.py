"""Exception hierarchy shared across the :mod:`repro` library.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch a single base class at application boundaries while still being able to
distinguish failure modes programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLError(ReproError):
    """Base class for errors raised by the relational engine."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""


class SQLCatalogError(SQLError):
    """A referenced table or column does not exist (or already exists)."""


class SQLTypeError(SQLError):
    """An expression was applied to values of incompatible types."""


class SQLIntegrityError(SQLError):
    """A constraint (primary key, NOT NULL) would be violated."""


class SQLTransactionError(SQLError):
    """Invalid transaction state transition (e.g. COMMIT with no BEGIN)."""


class VectorDBError(ReproError):
    """Base class for vector database errors."""


class DimensionMismatchError(VectorDBError):
    """A vector's dimensionality does not match the collection's."""


class CollectionError(VectorDBError):
    """Invalid collection operation (duplicate id, unknown id, ...)."""


class LLMError(ReproError):
    """Base class for simulated-LLM errors."""


class UnknownModelError(LLMError):
    """The requested model name is not in the registry."""


class ContextLengthExceededError(LLMError):
    """The prompt exceeds the model's context window."""


class BudgetExceededError(LLMError):
    """A spending cap configured on the client would be exceeded."""


class QuotaExceededError(LLMError):
    """A tenant's request quota (not its dollar budget) is exhausted.

    Raised by the multi-tenant serving cluster before a request is
    dispatched; distinct from :class:`BudgetExceededError` so callers can
    tell "too many requests" from "too many dollars"."""


class TransientLLMError(LLMError):
    """A service failure that a later retry may not reproduce.

    Carries the simulated time the failed attempt burned (``latency_ms``)
    and the model it targeted, so the resilience layer can account wasted
    attempts into end-to-end latency without touching the wall clock.
    """

    def __init__(self, message: str, model: str = "", latency_ms: float = 0.0) -> None:
        super().__init__(message)
        self.model = model
        self.latency_ms = latency_ms


class RateLimitError(TransientLLMError):
    """The service rejected the request for exceeding its rate limits."""


class ServiceTimeoutError(TransientLLMError):
    """The service did not answer within the request deadline."""


class ServiceUnavailableError(TransientLLMError):
    """The service is down or overloaded (HTTP 5xx analogue)."""


class ResilienceExhaustedError(LLMError):
    """Retries, fallback models and the cache all failed to produce an
    answer — the typed end of the graceful-degradation chain."""


class DeadlineExceededError(LLMError):
    """A request's deadline expired before a full answer could be produced.

    Raised by the async gateway when a request is shed: either it arrived
    already expired (``deadline_ms <= 0``), or its deadline lapsed while it
    sat in an admission queue and no degraded answer could be served.
    Carries the deadline and how long the request actually waited so
    callers can distinguish "hopeless on arrival" from "starved in queue".
    """

    def __init__(
        self, message: str, deadline_ms: float = 0.0, waited_ms: float = 0.0
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.waited_ms = waited_ms


class SchedulerClosedError(ReproError, RuntimeError):
    """The scheduler (or gateway) was closed while — or before — a submit
    was in flight.

    Subclasses :class:`RuntimeError` for backward compatibility with
    callers that guarded ``submit`` with ``except RuntimeError``; new code
    should catch this type. Notably raised by a submitter that was blocked
    on a full bounded queue when ``close()`` landed: close wakes every
    blocked submitter, and each raises this instead of waiting forever on
    a condition nobody will signal again.
    """


class SimulatedCrashError(LLMError):
    """The :class:`~repro.llm.faults.CrashPoint` fault fired: the simulated
    process died mid-request.

    Deliberately *not* a :class:`TransientLLMError` — a process crash is
    not something the in-process resilience layer can retry its way out
    of; it must propagate to the driver, which discards the stack and
    recovers from durable state (:mod:`repro.durability`).
    """


class ValidationError(ReproError):
    """An LLM output failed validation (Section III-E)."""


class TransformError(ReproError):
    """A data transformation (Section II-B) could not be applied."""


class PipelineError(ReproError):
    """Data-preparation pipeline search or execution failed."""
