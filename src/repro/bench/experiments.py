"""Experiment implementations for every table and figure in the paper.

Each ``run_*`` function is deterministic given its seed and returns a typed
result whose ``render()`` prints the same rows the paper reports. Absolute
dollar values depend on the simulated pricing but the *shape* — who wins,
by roughly what factor, where the crossovers fall — reproduces the paper
(see EXPERIMENTS.md for the side-by-side record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.reporting import format_table
from repro.core.cache import EvictionPolicy, SemanticCache
from repro.core.cascade import CascadeClient, ConfidenceDecisionModel
from repro.core.decompose import QueryOptimizer, answer_via_decomposition, shared_subquery_plan
from repro.core.prompts.templates import qa_prompt, sqlgen_prompt, table_extract_prompt
from repro.core.validation import SQLValidator
from repro.datasets.hotpot import QAExample, context_passages, generate_hotpot, paraphrase
from repro.datasets.spider import (
    build_concert_db,
    execution_match,
    generate_nl2sql,
    paper_queries,
)
from repro.datasets.workloads import build_analytics_db, generate_timing_workload
from repro.llm.client import LLMClient, default_world
from repro.serving import ConcurrentStack, ServiceStats, build_stack, last_question_key

TABLE1_MODELS = ("babbage-002", "gpt-3.5-turbo", "gpt-4")


def _served_texts(
    provider: object, prompts: Sequence[str], parallel: bool, workers: int
) -> List[str]:
    """Answer ``prompts`` in order, serially or through the scheduler.

    The parallel path feeds the batching scheduler from ``workers``
    submitter threads with explicit submission indexes and executes with a
    single dispatch worker, so completions — and every stateful layer the
    provider carries (cache, budget, meter) — are bit-identical to the
    serial loop. This is the determinism contract the Table I/III
    ``parallel=`` flags rely on; it trades execution overlap for exact
    reproducibility (use :func:`repro.bench.perf.run_serving` to measure
    the throughput side instead).
    """
    if not parallel:
        return [provider.complete(prompt).text for prompt in prompts]
    with ConcurrentStack(provider, workers=1) as served:
        completions = served.complete_many(prompts, submitters=max(1, workers))
    return [completion.text for completion in completions]


# ===========================================================================
# Table I — LLM cascade on the HotpotQA-like workload
# ===========================================================================


@dataclass
class Table1Result:
    """Rows: (system, accuracy, api_cost)."""

    rows: List[Tuple[str, float, float]]
    n_queries: int

    def render(self) -> str:
        return format_table(
            ["System", "Accuracy", "API Cost ($)"],
            [(name, acc, cost) for name, acc, cost in self.rows],
            title=f"Table I — LLM cascade ({self.n_queries} HotpotQA-like queries)",
        )

    def accuracy(self, system: str) -> float:
        return next(acc for name, acc, _cost in self.rows if name == system)

    def cost(self, system: str) -> float:
        return next(cost for name, _acc, cost in self.rows if name == system)


def run_table1(
    n_queries: int = 40,
    seed: int = 1,
    with_context: bool = True,
    thresholds: Tuple[float, float] = (0.55, 0.52),
    parallel: bool = False,
    workers: int = 4,
) -> Table1Result:
    """Reproduce Table I: per-model accuracy/cost plus the cascade row.

    ``parallel=True`` serves each workload through the batching scheduler
    with ``workers`` submitter threads; results are bit-identical to the
    serial run (see :func:`_served_texts`)."""
    world = default_world()
    examples = generate_hotpot(world, n=n_queries, seed=seed)

    def prompt_of(example: QAExample) -> str:
        context = (
            context_passages(world, example.question, n_distractors=6, seed=seed)
            if with_context
            else None
        )
        return qa_prompt(example.question, context=context)

    prompts = [prompt_of(ex) for ex in examples]
    answers = [ex.answer for ex in examples]
    rows: List[Tuple[str, float, float]] = []
    for model in TABLE1_MODELS:
        client = LLMClient(model=model)
        texts = _served_texts(client, prompts, parallel, workers)
        hits = sum(1 for text, answer in zip(texts, answers) if text == answer)
        rows.append((model, hits / len(examples), round(client.meter.cost, 4)))

    # The cascade row is served through the middleware stack — the same
    # decision models and chain as the ad-hoc CascadeClient, so the routed
    # calls (and therefore the meter) are identical.
    cascade_client = LLMClient()
    stack = build_stack(
        cascade_client,
        chain=TABLE1_MODELS,
        decision_models=[ConfidenceDecisionModel(t) for t in thresholds],
    )
    texts = _served_texts(stack, prompts, parallel, workers)
    hits = sum(1 for text, answer in zip(texts, answers) if text == answer)
    rows.append(("LLM cascade", hits / len(examples), round(cascade_client.meter.cost, 4)))
    return Table1Result(rows=rows, n_queries=len(examples))


# ===========================================================================
# Table II — NL2SQL query decomposition and combination
# ===========================================================================


@dataclass
class Table2Result:
    """Rows: (regime, execution_accuracy, api_cost)."""

    rows: List[Tuple[str, float, float]]
    n_queries: int

    def render(self) -> str:
        return format_table(
            ["Regime", "Accuracy", "API Cost ($)"],
            self.rows,
            title=f"Table II — query decomposition/combination ({self.n_queries} NL2SQL queries)",
        )

    def accuracy(self, regime: str) -> float:
        return next(acc for name, acc, _cost in self.rows if name == regime)

    def cost(self, regime: str) -> float:
        return next(cost for name, _acc, cost in self.rows if name == regime)


def run_table2(
    n_queries: int = 40,
    seed: int = 13,
    n_examples: int = 3,
    compound_fraction: float = 0.8,
) -> Table2Result:
    """Reproduce Table II: Origin vs Decomposition vs +Combination."""
    db = build_concert_db(seed=seed)
    workload = generate_nl2sql(n=n_queries, seed=seed, compound_fraction=compound_fraction)
    questions = [example.question for example in workload]
    example_pool = [
        (e.question, e.gold_sql)
        for e in generate_nl2sql(n=n_examples + 4, seed=seed + 1000, include_paper=False)
    ][:n_examples]
    schema = db.schema_text()

    def evaluate(predictions: Sequence[str]) -> float:
        hits = sum(
            1
            for prediction, example in zip(predictions, workload)
            if execution_match(db, prediction, example.gold_sql)
        )
        return hits / len(workload)

    rows: List[Tuple[str, float, float]] = []

    client = LLMClient(model="gpt-4")
    optimizer = QueryOptimizer(client, schema, examples=example_pool)
    rows.append(("Origin", evaluate(optimizer.translate_origin(questions)), round(client.meter.cost, 4)))

    client = LLMClient(model="gpt-4")
    optimizer = QueryOptimizer(client, schema, examples=example_pool)
    rows.append(
        ("Decomposition", evaluate(optimizer.translate_decomposed(questions)), round(client.meter.cost, 4))
    )

    client = LLMClient(model="gpt-4")
    optimizer = QueryOptimizer(client, schema, examples=example_pool)
    rows.append(
        (
            "Decomposition+Combination",
            evaluate(optimizer.translate_decomposed_combined(questions)),
            round(client.meter.cost, 4),
        )
    )
    return Table2Result(rows=rows, n_queries=len(workload))


# ===========================================================================
# Table III — LLM cache optimization
# ===========================================================================


@dataclass
class Table3Result:
    """Rows: (regime, accuracy, api_cost); plus cache diagnostics."""

    rows: List[Tuple[str, float, float]]
    diagnostics: Dict[str, Dict[str, float]]
    n_instances: int

    def render(self) -> str:
        return format_table(
            ["Regime", "Accuracy", "API Cost ($)"],
            self.rows,
            title=f"Table III — LLM cache ({self.n_instances} query instances)",
        )

    def accuracy(self, regime: str) -> float:
        return next(acc for name, acc, _cost in self.rows if name == regime)

    def cost(self, regime: str) -> float:
        return next(cost for name, _acc, cost in self.rows if name == regime)


def run_table3(
    n_queries: int = 10,
    seed: int = 17,
    model: str = "gpt-4",
    reuse_threshold: float = 0.90,
    parallel: bool = False,
    workers: int = 4,
) -> Table3Result:
    """Reproduce Table III: w/o Cache vs Cache(O) vs Cache(A).

    Ten queries are asked twice — the second time *re-phrased* — so the
    semantic (non-exact) matching the paper calls out is what decides hits.
    Cache(O) stores only original queries; Cache(A) answers through
    decomposition and additionally caches canonical sub-queries, which both
    raises accuracy (simpler sub-queries) and survives re-phrasing (the
    paraphrase decomposes into the same canonical sub-questions).

    ``parallel=True`` routes the w/o-Cache and Cache(O) rows through the
    batching scheduler (bit-identical results; see :func:`_served_texts`).
    The Cache(A) row always runs serially: each instance's decomposition
    consults and updates the cache *mid-request*, so its requests are
    inherently sequentially dependent."""
    world = default_world()
    examples = generate_hotpot(world, n=n_queries, seed=seed)
    # (example, phrasing) instances: round 1 canonical, round 2 paraphrased.
    instances: List[Tuple[QAExample, str]] = [(ex, ex.question) for ex in examples]
    instances += [(ex, paraphrase(ex.question)) for ex in examples]

    def full_prompt(question: str) -> str:
        return qa_prompt(
            question, context=context_passages(world, question, n_distractors=6, seed=seed)
        )

    def sub_prompt(question: str) -> str:
        return qa_prompt(
            question, context=context_passages(world, question, n_distractors=5, seed=seed)
        )

    rows: List[Tuple[str, float, float]] = []
    diagnostics: Dict[str, Dict[str, float]] = {}

    prompts = [full_prompt(question) for _ex, question in instances]
    answers = [ex.answer for ex, _question in instances]

    # --- w/o cache --------------------------------------------------------
    client = LLMClient(model=model)
    texts = _served_texts(client, prompts, parallel, workers)
    hits = sum(1 for text, answer in zip(texts, answers) if text == answer)
    rows.append(("w/o Cache", hits / len(instances), round(client.meter.cost, 4)))

    # --- Cache(O): original queries only ------------------------------------
    # Served through the middleware stack: the cache layer keys on the bare
    # question (the trailing "Question:" line of the templated prompt),
    # reproducing the ad-hoc loop's lookup/put sequence call for call.
    client = LLMClient(model=model)
    cache = SemanticCache(
        reuse_threshold=reuse_threshold,
        augment_threshold=reuse_threshold,
        policy=EvictionPolicy.WEIGHTED,
    )
    stack = build_stack(client, cache=cache, cache_key_fn=last_question_key, stats=ServiceStats())
    texts = _served_texts(stack, prompts, parallel, workers)
    hits = sum(1 for text, answer in zip(texts, answers) if text == answer)
    rows.append(("Cache(O)", hits / len(instances), round(client.meter.cost, 4)))
    diagnostics["Cache(O)"] = {
        "reuse_hits": cache.stats.reuse_hits,
        "misses": cache.stats.misses,
        "cost_saved": round(cache.stats.cost_saved, 4),
    }

    # --- Cache(A): original + sub-queries -----------------------------------
    client = LLMClient(model=model)
    cache = SemanticCache(
        reuse_threshold=reuse_threshold,
        augment_threshold=reuse_threshold,
        policy=EvictionPolicy.WEIGHTED,
    )
    hits = 0
    for ex, question in instances:
        lookup = cache.lookup(question)
        if lookup.tier == "reuse" and lookup.entry is not None:
            answer = lookup.entry.response
        else:

            def answer_sub(sub_question: str) -> str:
                sub_lookup = cache.lookup(sub_question)
                if sub_lookup.tier == "reuse" and sub_lookup.entry is not None:
                    return sub_lookup.entry.response
                sub_completion = client.complete(sub_prompt(sub_question))
                cache.put(
                    sub_question, sub_completion.text, kind="sub", cost=sub_completion.cost
                )
                return sub_completion.text

            answer = answer_via_decomposition(
                client, question, model=model, sub_answer_fn=answer_sub
            )
            cache.put(question, answer, kind="original", cost=0.0)
        hits += answer == ex.answer
    rows.append(("Cache(A)", hits / len(instances), round(client.meter.cost, 4)))
    diagnostics["Cache(A)"] = {
        "reuse_hits": cache.stats.reuse_hits,
        "misses": cache.stats.misses,
        "cost_saved": round(cache.stats.cost_saved, 4),
    }
    return Table3Result(rows=rows, diagnostics=diagnostics, n_instances=len(instances))


# ===========================================================================
# Fig 2 — SQL generation scenario
# ===========================================================================


@dataclass
class Fig2Result:
    """Rows: (kind, n_generated, validity_rate)."""

    rows: List[Tuple[str, int, float]]
    model: str

    def render(self) -> str:
        return format_table(
            ["Query kind", "Generated", "Valid rate"],
            self.rows,
            title=f"Fig 2 — constraint-aware SQL generation ({self.model})",
        )

    def validity(self, kind: str) -> float:
        return next(rate for name, _n, rate in self.rows if name == kind)


def run_fig2(count_per_kind: int = 8, seed: int = 0, model: str = "gpt-4") -> Fig2Result:
    """Generate each query kind of Fig 2 and validate against the DBMS."""
    db = build_analytics_db(seed=seed)
    validator = SQLValidator(db)
    client = LLMClient(model=model)
    rows: List[Tuple[str, int, float]] = []
    for kind in ("simple", "join", "subquery", "aggregate"):
        prompt = sqlgen_prompt(db.schema_text(), count_per_kind, [kind])
        completion = client.complete(prompt)
        queries = [q.strip() for q in completion.text.split(";") if q.strip()]
        valid = sum(1 for q in queries if validator.validate(q).valid)
        rows.append((kind, len(queries), valid / len(queries) if queries else 0.0))
    return Fig2Result(rows=rows, model=model)


# ===========================================================================
# Fig 3 — training data generation (execution-time prediction)
# ===========================================================================


@dataclass
class Fig3Result:
    """Rows: (model, n_examples, mean_relative_error)."""

    rows: List[Tuple[str, int, float]]

    def render(self) -> str:
        return format_table(
            ["Model", "Few-shot examples", "Mean relative error"],
            self.rows,
            title="Fig 3 — execution-time prediction from few-shot examples",
        )

    def error(self, model: str, n_examples: int) -> float:
        return next(
            err for m, n, err in self.rows if m == model and n == n_examples
        )


def run_fig3(
    pool_size: int = 32,
    test_size: int = 10,
    example_counts: Sequence[int] = (2, 4, 8, 16),
    models: Sequence[str] = ("gpt-3.5-turbo", "gpt-4"),
    seed: int = 8,
) -> Fig3Result:
    """Prediction error vs few-shot example count, per model."""
    from repro.apps.datagen.traindata import ExecutionTimePredictor

    db = build_analytics_db(seed=seed)
    workload = generate_timing_workload(db, n=pool_size + test_size, seed=seed)
    pool, test = workload[:pool_size], workload[pool_size:]
    rows: List[Tuple[str, int, float]] = []
    for model in models:
        for n_examples in example_counts:
            client = LLMClient(model=model)
            predictor = ExecutionTimePredictor(client, pool, n_examples=n_examples)
            metrics = predictor.evaluate(test)
            rows.append((model, n_examples, round(metrics["mean_relative_error"], 4)))
    return Fig3Result(rows=rows)


# ===========================================================================
# Fig 4 — transformation for tables
# ===========================================================================


@dataclass
class Fig4Result:
    """Rows: (source_format, model, cell_f1)."""

    rows: List[Tuple[str, str, float]]

    def render(self) -> str:
        return format_table(
            ["Source", "Model", "Cell F1"],
            self.rows,
            title="Fig 4 — semi-structured to relational transformation",
        )

    def f1(self, source: str, model: str) -> float:
        return next(v for s, m, v in self.rows if s == source and m == model)


def _fig4_documents(n_docs: int, seed: int) -> List[Tuple[str, str, "object"]]:
    """(format, document, gold Grid) triples: JSON, XML and spreadsheets."""
    from repro._util import rng_from
    from repro.apps.transform.tables import render_json_records, render_xml_records
    from repro.tablekit import Grid

    rng = rng_from(seed)
    docs: List[Tuple[str, str, object]] = []
    products = ["laptop", "monitor", "keyboard", "mouse", "dock", "webcam"]
    for i in range(n_docs):
        records = [
            {
                "item": products[int(rng.integers(0, len(products)))] + f"-{j}",
                "qty": int(rng.integers(1, 20)),
                "price": int(rng.integers(10, 900)),
            }
            for j in range(3 + i % 3)
        ]
        gold = Grid(
            [[r["item"], str(r["qty"]), str(r["price"])] for r in records],
            header=["item", "qty", "price"],
        )
        if i % 2 == 0:
            docs.append(("json", render_json_records(records), gold))
        else:
            docs.append(("xml", render_xml_records("orders", "order", records), gold))
    return docs


def run_fig4(
    n_docs: int = 8, seed: int = 4, models: Sequence[str] = ("gpt-3.5-turbo", "gpt-4")
) -> Fig4Result:
    """Cell-level F1 of direct LLM extraction, per source format and model."""
    from repro.tablekit.grid import cell_f1
    from repro.llm.engines.transform import parse_rendered_table
    from repro.tablekit import Grid

    docs = _fig4_documents(n_docs, seed)
    rows: List[Tuple[str, str, float]] = []
    for model in models:
        client = LLMClient(model=model)
        scores: Dict[str, List[float]] = {}
        for source, document, gold in docs:
            completion = client.complete(table_extract_prompt(document))
            columns, cells = parse_rendered_table(completion.text)
            predicted = Grid(cells, header=columns) if columns else Grid([])
            scores.setdefault(source, []).append(cell_f1(predicted, gold))
        for source in sorted(scores):
            values = scores[source]
            rows.append((source, model, round(sum(values) / len(values), 4)))
    return Fig4Result(rows=rows)


# ===========================================================================
# Fig 1 — the application pipeline, end to end
# ===========================================================================


@dataclass
class Fig1Result:
    """One row per pipeline stage: (stage, detail, ok)."""

    stages: List[Tuple[str, str, bool]]

    def render(self) -> str:
        rows = [(stage, "ok" if ok else "FAILED", detail) for stage, detail, ok in self.stages]
        return format_table(
            ["Pipeline stage", "Status", "Detail"],
            rows,
            title="Fig 1 — data management pipeline with LLMs",
        )

    @property
    def all_ok(self) -> bool:
        return all(ok for _stage, _detail, ok in self.stages)


def run_fig1(seed: int = 0) -> Fig1Result:
    """Run generation → transformation → integration → exploration once."""
    from repro.apps.datagen.sqlgen import SQLGenerator
    from repro.apps.explore.lake import MultiModalLake
    from repro.apps.integrate.entity_resolution import EntityResolver
    from repro.apps.transform.tables import json_to_grid, render_json_records

    client = LLMClient(model="gpt-4")
    stages: List[Tuple[str, str, bool]] = []

    db = build_concert_db(seed=seed)
    generated, total = SQLGenerator(client, db).generate_validated(count=3)
    stages.append(
        ("data generation", f"{len(generated)} valid SQL queries of {total} generated", len(generated) == 3)
    )

    feed = render_json_records(
        [{"name": "Apollo Arena", "city": "North District"},
         {"name": "Beacon Field", "city": "Harbor"}]
    )
    table = json_to_grid(client, feed)
    transform_ok = table.grid.header == ["name", "city"] and table.grid.n_rows == 2
    stages.append(("data transformation", f"JSON feed -> {table.grid.n_rows}x{table.grid.n_cols} table", transform_ok))

    resolver = EntityResolver(client)
    match = resolver.resolve("name: Apollo Arena", "name: Apollo Arena Stadium")
    stages.append(("data integration", f"entity match resolved: {match}", True))

    lake = MultiModalLake(client)
    lake.add_table_rows(
        "stadium", ["name", "city"], [[str(c) for c in row] for row in table.grid.cells]
    )
    hit = lake.query("Apollo Arena stadium", k=1)
    explore_ok = bool(hit.items) and "Apollo Arena" in hit.items[0].content
    stages.append(("data exploration", "lake retrieves the integrated record", explore_ok))
    return Fig1Result(stages=stages)


# ===========================================================================
# Fig 5 — challenges overview (module inventory)
# ===========================================================================


@dataclass
class Fig5Result:
    """The challenge → implementation mapping the figure sketches."""

    rows: List[Tuple[str, str, int]]  # (challenge, module, public symbols)

    def render(self) -> str:
        return format_table(
            ["Challenge (Section III)", "Module", "Public symbols"],
            self.rows,
            title="Fig 5 — challenges and where each is implemented",
        )


def run_fig5() -> Fig5Result:
    """Build the challenges inventory by introspecting the core modules."""
    import importlib

    mapping = [
        ("LLM prompt optimization (III-A)", "repro.core.prompts"),
        ("LLM query optimization (III-B)", "repro.core.cascade"),
        ("  - decomposition/combination", "repro.core.decompose"),
        ("  - multi-modal hybrid query", "repro.core.hybrid"),
        ("LLM cache optimization (III-C)", "repro.core.cache"),
        ("LLM security & privacy (III-D)", "repro.core.privacy"),
        ("LLM output validation (III-E)", "repro.core.validation"),
    ]
    rows: List[Tuple[str, str, int]] = []
    for challenge, module_name in mapping:
        module = importlib.import_module(module_name)
        public = getattr(module, "__all__", None)
        count = len(public) if public is not None else len(
            [n for n in dir(module) if not n.startswith("_")]
        )
        rows.append((challenge, module_name, count))
    return Fig5Result(rows=rows)


# ===========================================================================
# Fig 6 — cascade routing procedure
# ===========================================================================


@dataclass
class Fig6Result:
    """Routing distribution: how many queries each stage answered."""

    answered_by: Dict[str, int]
    accuracy: float
    cascade_cost: float
    gpt4_cost: float

    def render(self) -> str:
        rows = [(model, count) for model, count in self.answered_by.items()]
        table = format_table(
            ["Answered by", "Queries"],
            rows,
            title="Fig 6 — cascade routing distribution",
        )
        return (
            f"{table}\n"
            f"accuracy {self.accuracy:.3f}; cascade ${self.cascade_cost:.4f} "
            f"vs all-gpt-4 ${self.gpt4_cost:.4f}"
        )


def run_fig6(n_queries: int = 20, seed: int = 41) -> Fig6Result:
    """Trace the cascade's routing on a QA workload."""
    world = default_world()
    examples = generate_hotpot(world, n=n_queries, seed=seed)
    cascade_client = LLMClient()
    cascade = CascadeClient(
        cascade_client,
        decision_models=[ConfidenceDecisionModel(0.55), ConfidenceDecisionModel(0.52)],
    )
    baseline = LLMClient(model="gpt-4")
    answered_by: Dict[str, int] = {model: 0 for model in TABLE1_MODELS}
    hits = 0
    for example in examples:
        prompt = qa_prompt(example.question)
        result = cascade.complete(prompt)
        baseline.complete(prompt)
        answered_by[result.model] = answered_by.get(result.model, 0) + 1
        hits += result.text == example.answer
    return Fig6Result(
        answered_by=answered_by,
        accuracy=hits / len(examples),
        cascade_cost=round(cascade_client.meter.cost, 4),
        gpt4_cost=round(baseline.meter.cost, 4),
    )


# ===========================================================================
# Fig 7 — query decomposition sharing structure
# ===========================================================================


@dataclass
class Fig7Result:
    """The Q1-Q5 sharing structure the figure illustrates."""

    per_query: List[Tuple[str, int]]  # (question, n sub-queries)
    total_sub_references: int
    unique_sub_queries: int
    llm_calls_saved: int

    def render(self) -> str:
        lines = ["Fig 7 — sub-query sharing across the paper's Q1-Q5"]
        for question, n_subs in self.per_query:
            lines.append(f"  [{n_subs} sub-queries] {question}")
        lines.append(
            f"  total sub-query references: {self.total_sub_references}; "
            f"unique: {self.unique_sub_queries}; LLM calls saved: {self.llm_calls_saved}"
        )
        return "\n".join(lines)


def run_fig7() -> Fig7Result:
    """Compute the Fig 7 decomposition graph for the paper's Q1-Q5."""
    questions = [example.question for example in paper_queries()]
    plan = shared_subquery_plan(questions)
    per_query = [
        (decomposition.question, len(decomposition.sub_questions))
        for decomposition in plan.decompositions
    ]
    return Fig7Result(
        per_query=per_query,
        total_sub_references=plan.total_sub_references,
        unique_sub_queries=len(plan.unique_sub_questions),
        llm_calls_saved=plan.llm_calls_saved,
    )
