"""repro.bench — the experiment harness regenerating the paper's results.

One entry point per table/figure (see DESIGN.md §4):

>>> from repro.bench import run_table1
>>> result = run_table1(n_queries=10)   # doctest: +SKIP
"""

from repro.bench.experiments import (
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Table1Result,
    Table2Result,
    Table3Result,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
)
from repro.bench.cluster import ClusterReport, make_tenant_stream, run_cluster
from repro.bench.perf import (
    HotpathReport,
    LinearScanAdmission,
    LinearScanCache,
    run_equivalence,
    run_hotpaths,
)
from repro.bench.reporting import format_table
from repro.bench.semsql import SemanticSQLReport, run_semantic_sql

__all__ = [
    "ClusterReport",
    "HotpathReport",
    "LinearScanAdmission",
    "LinearScanCache",
    "SemanticSQLReport",
    "make_tenant_stream",
    "run_cluster",
    "run_equivalence",
    "run_hotpaths",
    "run_semantic_sql",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "format_table",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_table2",
    "run_table3",
]
