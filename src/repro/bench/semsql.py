"""Benchmark: semantic SQL operators — optimized plan vs per-row reference.

Builds two bit-identical databases from one SQL script and runs the same
semantic-operator workload against both:

* **naive** — :meth:`SemanticRuntime.naive`: no plan rewrite, one
  provider call per row/pair, no cache, no batching. This is the
  reference evaluator the bit-equivalence guarantee is stated against.
* **optimized** — the default pipeline: :func:`optimize_semantic`
  reorders WHERE conjuncts and pushes relational predicates below joins,
  and the executor evaluates each semantic operator set-at-a-time (one
  deduped ``complete_batch`` per operator, exact-reuse semantic cache).

The report records, per query: the rows (compared bit-exactly → the
``diverged`` count), provider calls/items, and the simulated latency of
each mode. ``benchmarks/bench_semantic_sql.py --smoke`` gates CI on
``diverged == 0`` and on the optimized plan actually winning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bench.reporting import format_table
from repro.sqldb.database import Database
from repro.sqldb.semantic import SemanticRuntime

SEMSQL_SCHEMA = "repro.bench.semsql/v1"
DEFAULT_SEMSQL_REPORT_PATH = "BENCH_semsql.json"

_NOUNS = [
    ("Laptop", "electronics"),
    ("Espresso Machine", "kitchen"),
    ("Headphones", "electronics"),
    ("Blender", "kitchen"),
    ("Camera", "electronics"),
    ("Toaster", "kitchen"),
    ("Monitor", "electronics"),
    ("Kettle", "kitchen"),
]
_ADJECTIVES = ["Ultra", "Pro", "Classic", "Compact"]

_REVIEW_BODIES = [
    "asked for a refund because the {noun} stopped working",
    "battery life is great and shipping was fast",
    "refund requested, the {noun} arrived damaged",
    "love this {noun}, five stars from me",
    "shipping took weeks but support was helpful",
]


def _product_name(i: int) -> str:
    noun, _cat = _NOUNS[i % len(_NOUNS)]
    return f"{_ADJECTIVES[i % len(_ADJECTIVES)]} {noun} {100 + i}"


def make_semantic_db_script(n_products: int, n_reviews: int) -> str:
    """A deterministic products/reviews fixture exercising every semantic
    operator: keyword-bearing review bodies for SEMANTIC_FILTER, titles
    echoing product names for MATCHES, and ``key: value`` product records
    for LLM_EXTRACT / LLM_CLASSIFY."""
    parts = [
        "CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT, descr TEXT);",
        "CREATE TABLE reviews (id INTEGER PRIMARY KEY, product_id INTEGER,"
        " title TEXT, body TEXT, stars INTEGER);",
    ]
    for i in range(n_products):
        name = _product_name(i)
        noun, category = _NOUNS[i % len(_NOUNS)]
        descr = (
            f"name: {name}; category: {category}; "
            f"year: {2015 + i % 8}; price: {50 + 30 * i}"
        )
        parts.append(f"INSERT INTO products VALUES ({i + 1}, '{name}', '{descr}');")
    for j in range(n_reviews):
        # Decorrelated from the title-echo cycle below so SEMANTIC_JOIN
        # has matching pairs at every fixture size.
        pid = (j + j // 3) % n_products + 1
        noun, _cat = _NOUNS[(pid - 1) % len(_NOUNS)]
        stars = (j * 3) % 5 + 1
        body = _REVIEW_BODIES[j % len(_REVIEW_BODIES)].format(noun=noun.lower())
        if j % 3 == 0:
            title = f"{_product_name(pid - 1).lower()} review"
        elif j % 3 == 1:
            title = f"my thoughts on a {noun.lower()}"
        else:
            title = f"unrelated musings {j}"
        parts.append(
            f"INSERT INTO reviews VALUES ({j + 1}, {pid}, '{title}', '{body}', {stars});"
        )
    return "\n".join(parts)


def semantic_workload(n_products: int) -> List[Tuple[str, str]]:
    """(name, sql) pairs; the semantic operator is deliberately written
    *first* in WHERE/ON so the naive evaluator pays for every row while
    the optimizer reorders relational conjuncts ahead of it."""
    half = max(n_products // 2, 1)
    return [
        (
            "filter_reorder",
            "SELECT id FROM reviews "
            "WHERE SEMANTIC_FILTER(body, 'mentions a refund') "
            "AND stars <= 2 AND product_id <= " + str(half) + " "
            "ORDER BY id",
        ),
        (
            "semantic_join",
            "SELECT p.name, r.title FROM products AS p "
            "SEMANTIC_JOIN reviews AS r "
            "ON MATCHES(p.name, r.title) AND r.stars >= 4 AND p.id <= " + str(half) + " "
            "ORDER BY p.name, r.title",
        ),
        (
            "classify_udf",
            "SELECT id, LLM_CLASSIFY(descr, 'electronics', 'kitchen') AS kind "
            "FROM products ORDER BY id",
        ),
        (
            "extract_udf",
            "SELECT id, LLM_EXTRACT(descr, 'year') AS year FROM products "
            "WHERE id <= " + str(half) + " ORDER BY id",
        ),
        (
            # Re-runs the first query: the optimized runtime answers it
            # entirely from the semantic cache; naive pays full price again.
            "filter_cached_rerun",
            "SELECT id FROM reviews "
            "WHERE SEMANTIC_FILTER(body, 'mentions a refund') "
            "AND stars <= 2 AND product_id <= " + str(half) + " "
            "ORDER BY id",
        ),
    ]


@dataclass
class SemanticSQLReport:
    """Optimized (reordered + batched + cached) vs naive per-row semantic SQL."""

    n_products: int
    n_reviews: int
    queries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)
    explains: Dict[str, str] = field(default_factory=dict)

    @property
    def diverged(self) -> int:
        return sum(int(cell["diverged"]) for cell in self.queries.values())

    @property
    def call_reduction(self) -> float:
        naive = float(self.totals.get("naive_items", 0.0))
        opt = float(self.totals.get("optimized_items", 0.0))
        return naive / max(opt, 1e-9)

    @property
    def latency_reduction(self) -> float:
        naive = float(self.totals.get("naive_ms", 0.0))
        opt = float(self.totals.get("optimized_ms", 0.0))
        return naive / max(opt, 1e-9)

    def payload(self) -> Dict[str, object]:
        return {
            "schema": SEMSQL_SCHEMA,
            "n_products": self.n_products,
            "n_reviews": self.n_reviews,
            "queries": self.queries,
            "totals": self.totals,
            "explains": self.explains,
            "diverged": self.diverged,
            "call_reduction": round(self.call_reduction, 2),
            "latency_reduction": round(self.latency_reduction, 2),
        }

    def write(self, path: str = DEFAULT_SEMSQL_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render(self) -> str:
        rows = []
        for name, cell in self.queries.items():
            rows.append(
                (
                    name,
                    cell["rows"],
                    cell["naive_items"],
                    cell["optimized_items"],
                    cell["cache_hits"],
                    round(float(cell["naive_ms"]), 1),
                    round(float(cell["optimized_ms"]), 1),
                    cell["diverged"],
                )
            )
        table = format_table(
            [
                "Query",
                "Rows",
                "Naive calls",
                "Opt calls",
                "Cache hits",
                "Naive ms",
                "Opt ms",
                "Diverged",
            ],
            rows,
            title=(
                f"Semantic SQL: optimized vs per-row reference "
                f"({self.n_products} products, {self.n_reviews} reviews)"
            ),
        )
        return table + (
            f"\nTotals: {self.call_reduction:.1f}x fewer provider items, "
            f"{self.latency_reduction:.1f}x lower simulated latency, "
            f"diverged={self.diverged} (0 = bit-identical)"
        )


def run_semantic_sql(
    n_products: int = 6,
    n_reviews: int = 30,
    seed: int = 0,
    model: str = "gpt-4",
) -> SemanticSQLReport:
    """Run the semantic workload under both evaluation modes and compare."""
    from repro.llm.provider import make_client

    script = make_semantic_db_script(n_products, n_reviews)
    optimized_rt = SemanticRuntime(make_client(model=model, seed=seed), model=model)
    naive_rt = SemanticRuntime.naive(make_client(model=model, seed=seed), model=model)
    db_opt = Database.from_script(script, semantic=optimized_rt)
    db_naive = Database.from_script(script, semantic=naive_rt)

    report = SemanticSQLReport(n_products=n_products, n_reviews=n_reviews)
    for name, sql in semantic_workload(n_products):
        before_opt = optimized_rt.snapshot()
        before_naive = naive_rt.snapshot()
        rows_opt = db_opt.query(sql)
        rows_naive = db_naive.query(sql)
        delta_opt = optimized_rt.delta(before_opt)
        delta_naive = naive_rt.delta(before_naive)
        report.queries[name] = {
            "sql": sql,
            "rows": len(rows_opt),
            "diverged": int(rows_opt != rows_naive),
            "naive_calls": delta_naive.provider_calls,
            "naive_items": delta_naive.provider_items,
            "naive_ms": round(delta_naive.simulated_ms, 3),
            "optimized_calls": delta_opt.provider_calls,
            "optimized_items": delta_opt.provider_items,
            "optimized_batches": delta_opt.batches,
            "optimized_ms": round(delta_opt.simulated_ms, 3),
            "cache_hits": delta_opt.cache_hits,
        }
        report.explains[name] = db_opt.explain(sql)

    report.totals = {
        "naive_calls": float(naive_rt.stats.provider_calls),
        "naive_items": float(naive_rt.stats.provider_items),
        "naive_ms": round(naive_rt.stats.simulated_ms, 3),
        "optimized_calls": float(optimized_rt.stats.provider_calls),
        "optimized_items": float(optimized_rt.stats.provider_items),
        "optimized_ms": round(optimized_rt.stats.simulated_ms, 3),
        "cache_hits": float(optimized_rt.stats.cache_hits),
        "cache_hit_rate": round(optimized_rt.hit_rate(), 4),
    }
    return report
