"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table (the harness's stdout format)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_service_stats(stats) -> str:
    """Render a :class:`repro.serving.ServiceStats` snapshot, layer by layer.

    Duck-typed on :meth:`snapshot` so this module needs no import of the
    serving layer (``serving`` depends on ``bench.reporting``, not the
    other way around)."""
    snapshot = stats.snapshot()
    rows = []
    llm = snapshot["llm"]
    cache = snapshot["cache"]
    cascade = snapshot["cascade"]
    retry = snapshot["retry"]
    budget = snapshot["budget"]
    rows.append(("cache", "reuse hits", cache["reuse_hits"]))
    rows.append(("cache", "augment hits", cache["augment_hits"]))
    rows.append(("cache", "misses", cache["misses"]))
    rows.append(("cache", "hit rate", cache["hit_rate"]))
    rows.append(("cache", "cost saved ($)", cache["cost_saved_usd"]))
    rows.append(("cache", "lookup time (ms)", cache["lookup_ms"]))
    rows.append(("cache", "mean lookup (ms)", cache["mean_lookup_ms"]))
    rows.append(("cache", "put time (ms)", cache["put_ms"]))
    rows.append(("cascade", "requests", cascade["requests"]))
    rows.append(("cascade", "escalations", cascade["escalations"]))
    for model, count in cascade["answered_by"].items():
        rows.append(("cascade", f"answered by {model}", count))
    rows.append(("retry", "retries", retry["retries"]))
    rows.append(("retry", "rescues", retry["rescues"]))
    if budget["limit_usd"] is not None:
        rows.append(("budget", "limit ($)", budget["limit_usd"]))
        rows.append(("budget", "spent ($)", budget["spent_usd"]))
        rows.append(("budget", "rejections", budget["rejections"]))
    resilience = snapshot.get("resilience", {})
    if resilience.get("transient_errors") or resilience.get("breaker_short_circuits"):
        rows.append(("resilience", "transient errors", resilience["transient_errors"]))
        for kind, count in resilience["by_kind"].items():
            rows.append(("resilience", f"  {kind}", count))
        rows.append(("resilience", "retries", resilience["retries"]))
        rows.append(("resilience", "recoveries", resilience["recoveries"]))
        rows.append(("resilience", "backoff (ms)", resilience["backoff_ms"]))
        rows.append(("resilience", "breaker opens", resilience["breaker_opens"]))
        rows.append(("resilience", "breaker probes", resilience["breaker_probes"]))
        rows.append(("resilience", "breaker closes", resilience["breaker_closes"]))
        rows.append(("resilience", "short circuits", resilience["breaker_short_circuits"]))
        rows.append(("resilience", "fallback model answers", resilience["fallback_model_answers"]))
        rows.append(("resilience", "fallback cache answers", resilience["fallback_cache_answers"]))
        rows.append(("resilience", "exhausted", resilience["exhausted"]))
    rows.append(("llm", "calls", llm["calls"]))
    rows.append(("llm", "prompt tokens", llm["prompt_tokens"]))
    rows.append(("llm", "completion tokens", llm["completion_tokens"]))
    rows.append(("llm", "cost ($)", llm["cost_usd"]))
    rows.append(("llm", "latency (ms)", llm["latency_ms"]))
    for model, entry in llm["per_model"].items():
        rows.append(("llm", f"{model} calls", int(entry["calls"])))
    latency = snapshot.get("latency", {})
    if latency.get("count"):
        rows.append(("latency", "p50 (ms)", latency["p50_ms"]))
        rows.append(("latency", "p95 (ms)", latency["p95_ms"]))
        rows.append(("latency", "p99 (ms)", latency["p99_ms"]))
        rows.append(("latency", "max (ms)", latency["max_ms"]))
    scheduler = snapshot.get("scheduler", {})
    if scheduler.get("batches"):
        rows.append(("scheduler", "submitted", scheduler["submitted"]))
        rows.append(("scheduler", "completed", scheduler["completed"]))
        rows.append(("scheduler", "batches", scheduler["batches"]))
        rows.append(("scheduler", "mean batch size", scheduler["mean_batch_size"]))
        for size, count in scheduler["batch_sizes"].items():
            rows.append(("scheduler", f"batches of {size}", count))
        depths = scheduler["queue_depths"]
        if depths:
            rows.append(("scheduler", "max queue depth", max(int(d) for d in depths)))
    # Per-tenant namespaces (multi-tenant cluster): one compact block per
    # tenant, keyed as a tenant= dimension on the layer column.
    for tenant, child in snapshot.get("tenants", {}).items():
        layer = f"tenant={tenant}"
        rows.append((layer, "cache lookups", child["cache"]["lookups"]))
        rows.append((layer, "cache hit rate", child["cache"]["hit_rate"]))
        rows.append((layer, "llm calls", child["llm"]["calls"]))
        rows.append((layer, "cost ($)", child["llm"]["cost_usd"]))
        if child["budget"]["limit_usd"] is not None:
            rows.append((layer, "budget limit ($)", child["budget"]["limit_usd"]))
            rows.append((layer, "budget spent ($)", child["budget"]["spent_usd"]))
            rows.append((layer, "budget rejections", child["budget"]["rejections"]))
    return format_table(["Layer", "Counter", "Value"], rows, title="Serving stack stats")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) < 0.01 and cell != 0:
            return f"{cell:.5f}"
        return f"{cell:.3f}"
    return str(cell)
