"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table (the harness's stdout format)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) < 0.01 and cell != 0:
            return f"{cell:.5f}"
        return f"{cell:.3f}"
    return str(cell)
