"""CLI: ``python -m repro.bench [table1|table2|table3|fig1..fig7|all]``."""

from __future__ import annotations

import sys

from repro.bench.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
)

_RUNNERS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
}


def main(argv: list) -> int:
    """Run the requested experiment targets; returns an exit code."""
    targets = argv or ["all"]
    if targets == ["all"]:
        targets = list(_RUNNERS)
    unknown = [t for t in targets if t not in _RUNNERS]
    if unknown:
        print(f"unknown target(s): {', '.join(unknown)}; choose from {', '.join(_RUNNERS)} or 'all'")
        return 2
    for target in targets:
        result = _RUNNERS[target]()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
